#include "rsf/client.hpp"

#include <algorithm>

#include "util/sha256.hpp"

namespace anchor::rsf {

namespace {

// Map a structural verification failure onto the transport-error taxonomy.
TransportErrorKind classify(Feed::RunFault fault) {
  switch (fault) {
    case Feed::RunFault::kSequenceGap:
    case Feed::RunFault::kChainBroken:
      return TransportErrorKind::kTruncatedRun;
    case Feed::RunFault::kPayloadHash:
      return TransportErrorKind::kCorruptPayload;
    case Feed::RunFault::kBadSignature:
      return TransportErrorKind::kBadSignature;
    case Feed::RunFault::kNone:
      break;
  }
  return TransportErrorKind::kCorruptPayload;
}

}  // namespace

const char* to_string(ClientHealth health) {
  switch (health) {
    case ClientHealth::kHealthy:
      return "healthy";
    case ClientHealth::kDegraded:
      return "degraded";
    case ClientHealth::kStale:
      return "stale";
  }
  return "unknown";
}

std::string FeedStatus::to_text() const {
  std::string out;
  out += "health=";
  out += to_string(health);
  out += " sequence=" + std::to_string(last_applied_sequence);
  out += " last_update=" + std::to_string(last_update_time);
  out += " next_poll=" + std::to_string(next_poll_time);
  out += " seconds_stale=" + std::to_string(seconds_stale);
  out += " polls=" + std::to_string(polls);
  out += " updates=" + std::to_string(updates_applied);
  out += " verify_failures=" + std::to_string(verify_failures);
  out += " quarantined=" + std::to_string(quarantine_size);
  return out;
}

FeedStatus RsfClient::feed_status() const {
  FeedStatus status;
  status.health = health_;
  status.last_applied_sequence = last_sequence_;
  status.last_update_time = last_update_time_;
  status.next_poll_time = next_poll_;
  status.seconds_stale = stats_.seconds_stale;
  status.polls = stats_.polls;
  status.updates_applied = stats_.updates_applied;
  status.verify_failures = stats_.verify_failures;
  status.quarantine_size = quarantine_.size();
  return status;
}

RsfClient::RsfClient(const Feed& feed, std::int64_t poll_interval,
                     MergePolicy policy, Transport transport,
                     RetryPolicy retry)
    : owned_transport_(std::make_unique<DirectTransport>(feed)),
      transport_(owned_transport_.get()),
      poll_interval_(poll_interval),
      policy_(policy),
      retry_(retry),
      jitter_rng_(retry.jitter_seed),
      mode_(transport) {
  // The feed key is known out of band (certified by the coordinating body).
  verifier_registry_.register_key(
      SimSig::keygen("rsf-feed-" + transport_->name()));
  bind_metrics(metrics::Registry::global(), transport_->name());
}

RsfClient::RsfClient(FeedTransport& transport, std::int64_t poll_interval,
                     MergePolicy policy, Transport mode, RetryPolicy retry)
    : transport_(&transport),
      poll_interval_(poll_interval),
      policy_(policy),
      retry_(retry),
      jitter_rng_(retry.jitter_seed),
      mode_(mode) {
  verifier_registry_.register_key(
      SimSig::keygen("rsf-feed-" + transport_->name()));
  bind_metrics(metrics::Registry::global(), transport_->name());
}

void RsfClient::set_local_store(rootstore::RootStore local) {
  local_ = std::move(local);
}

void RsfClient::bind_metrics(metrics::Registry& registry,
                             const std::string& instance) {
  const metrics::Labels feed{{"feed", instance}};
  auto outcome = [&](const char* kind) {
    metrics::Labels labels = feed;
    labels.emplace_back("outcome", kind);
    return &registry.counter("anchor_rsf_polls_total", labels);
  };
  m_.poll_success = outcome("success");
  m_.poll_failure = outcome("failure");
  m_.poll_skip = outcome("skip");
  m_.updates_applied = &registry.counter("anchor_rsf_updates_applied_total", feed);
  m_.deltas_applied = &registry.counter("anchor_rsf_deltas_applied_total", feed);
  m_.delta_fallbacks = &registry.counter("anchor_rsf_delta_fallbacks_total", feed);
  m_.verify_failures = &registry.counter("anchor_rsf_verify_failures_total", feed);
  m_.parse_failures = &registry.counter("anchor_rsf_parse_failures_total", feed);
  m_.merge_conflicts = &registry.counter("anchor_rsf_merge_conflicts_total", feed);
  m_.retries = &registry.counter("anchor_rsf_retries_total", feed);
  m_.quarantine_skips =
      &registry.counter("anchor_rsf_quarantine_skips_total", feed);
  m_.proof_failures =
      &registry.counter("anchor_rsf_proof_failures_total", feed);
  m_.verified_no_change =
      &registry.counter("anchor_rsf_verified_no_change_total", feed);
  m_.bytes_fetched = &registry.counter("anchor_rsf_bytes_fetched_total", feed);
  m_.bytes_discarded =
      &registry.counter("anchor_rsf_bytes_discarded_total", feed);
  m_.transport_errors =
      &registry.counter("anchor_rsf_transport_errors_total", feed);
  m_.seconds_stale = &registry.gauge("anchor_rsf_seconds_stale", feed);
  m_.quarantine_size = &registry.gauge("anchor_rsf_quarantine_size", feed);
  m_.backoff_exponent = &registry.gauge("anchor_rsf_backoff_exponent", feed);
  m_.health = &registry.gauge("anchor_rsf_health", feed);
  m_.last_sequence = &registry.gauge("anchor_rsf_last_applied_sequence", feed);
}

void RsfClient::publish_metrics(PollOutcome outcome) {
  switch (outcome) {
    case PollOutcome::kSuccess:
      m_.poll_success->add();
      break;
    case PollOutcome::kFailure:
      m_.poll_failure->add();
      break;
    case PollOutcome::kSkip:
      m_.poll_skip->add();
      break;
  }
  // Counters: publish what ClientStats accumulated since the last exit.
  auto drain = [](metrics::Counter* sink, std::uint64_t current,
                  std::uint64_t& exported) {
    if (current > exported) sink->add(current - exported);
    exported = current;
  };
  drain(m_.updates_applied, stats_.updates_applied, exported_.updates_applied);
  drain(m_.deltas_applied, stats_.deltas_applied, exported_.deltas_applied);
  drain(m_.delta_fallbacks, stats_.delta_fallbacks, exported_.delta_fallbacks);
  drain(m_.verify_failures, stats_.verify_failures, exported_.verify_failures);
  drain(m_.parse_failures, stats_.parse_failures, exported_.parse_failures);
  drain(m_.merge_conflicts, stats_.merge_conflicts, exported_.merge_conflicts);
  drain(m_.retries, stats_.retries, exported_.retries);
  drain(m_.quarantine_skips, stats_.quarantine_skips,
        exported_.quarantine_skips);
  drain(m_.proof_failures, stats_.proof_failures, exported_.proof_failures);
  drain(m_.verified_no_change, stats_.verified_no_change,
        exported_.verified_no_change);
  drain(m_.bytes_fetched, stats_.bytes_fetched, exported_.bytes_fetched);
  drain(m_.bytes_discarded, stats_.bytes_discarded, exported_.bytes_discarded);
  drain(m_.transport_errors, stats_.transport_errors_total(),
        exported_.transport_errors[0]);  // [0] repurposed as the total mark
  // Gauges: levels, set outright.
  m_.seconds_stale->set(stats_.seconds_stale);
  m_.quarantine_size->set(static_cast<std::int64_t>(stats_.quarantine_size));
  m_.backoff_exponent->set(backoff_exp_);
  m_.health->set(static_cast<std::int64_t>(health_));
  m_.last_sequence->set(static_cast<std::int64_t>(last_sequence_));
}

std::int64_t RsfClient::next_backoff() {
  std::int64_t backoff = retry_.base_backoff;
  for (int i = 0; i < backoff_exp_ && backoff < retry_.max_backoff; ++i) {
    backoff = static_cast<std::int64_t>(static_cast<double>(backoff) *
                                        retry_.multiplier);
  }
  backoff = std::clamp<std::int64_t>(backoff, 1, retry_.max_backoff);
  if (backoff_exp_ < 62) ++backoff_exp_;
  return std::max<std::int64_t>(1, jitter_rng_.jittered(backoff, retry_.jitter));
}

std::size_t RsfClient::finish_poll(PollOutcome outcome, std::int64_t now,
                                   std::size_t applied) {
  switch (outcome) {
    case PollOutcome::kSuccess:
      backoff_exp_ = 0;
      last_contact_ = now;
      next_poll_ = now + poll_interval_;
      break;
    case PollOutcome::kFailure:
      ++stats_.retries;
      next_poll_ = now + next_backoff();
      break;
    case PollOutcome::kSkip:
      // Quarantined head: deliberate no-op, keep the normal cadence (the
      // next poll re-probes in case a newer, clean head was published).
      next_poll_ = now + poll_interval_;
      break;
  }
  const std::int64_t baseline = last_contact_ >= 0 ? last_contact_ : first_poll_;
  stats_.seconds_stale = std::max<std::int64_t>(0, now - baseline);
  stats_.quarantine_size = quarantine_.size();
  if (stats_.seconds_stale >= retry_.stale_after) {
    health_ = ClientHealth::kStale;
  } else if (outcome == PollOutcome::kSuccess && quarantine_.empty()) {
    health_ = ClientHealth::kHealthy;
  } else {
    health_ = ClientHealth::kDegraded;
  }
  publish_metrics(outcome);
  return applied;
}

std::size_t RsfClient::fail_poll(TransportErrorKind kind,
                                 std::uint64_t sequence, std::int64_t now) {
  ++stats_.transport_errors[static_cast<std::size_t>(kind)];
  if (kind == TransportErrorKind::kRollback) rollback_suspect_ = true;
  if (sequence != 0) note_verify_failure(sequence, now);
  return finish_poll(PollOutcome::kFailure, now, 0);
}

void RsfClient::note_verify_failure(std::uint64_t sequence, std::int64_t now) {
  int& count = fail_counts_[sequence];
  if (++count >= retry_.quarantine_threshold) {
    fail_counts_.erase(sequence);
    quarantine_[sequence] = now + retry_.quarantine_duration;
    while (quarantine_.size() > retry_.quarantine_capacity) {
      auto oldest = std::min_element(
          quarantine_.begin(), quarantine_.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      quarantine_.erase(oldest);
    }
  }
  // The failure tracker is bounded too: drop the oldest sequence numbers.
  while (fail_counts_.size() > retry_.quarantine_capacity) {
    fail_counts_.erase(fail_counts_.begin());
  }
}

void RsfClient::prune_quarantine(std::int64_t now) {
  for (auto it = quarantine_.begin(); it != quarantine_.end();) {
    if (it->second <= now) {
      it = quarantine_.erase(it);
    } else {
      ++it;
    }
  }
  // Failure counts for sequences we have since advanced past are moot.
  fail_counts_.erase(fail_counts_.begin(),
                     fail_counts_.upper_bound(last_sequence_));
}

bool RsfClient::is_quarantined(std::uint64_t sequence,
                               std::int64_t now) const {
  auto it = quarantine_.find(sequence);
  return it != quarantine_.end() && it->second > now;
}

std::size_t RsfClient::poll_now(std::int64_t now) {
  ++stats_.polls;
  if (first_poll_ < 0) first_poll_ = now;
  prune_quarantine(now);
  if (poll_path_ == PollPath::kAuto && transport_->supports_feed_fetch()) {
    return poll_merkle(now);
  }
  return poll_legacy(now);
}

std::size_t RsfClient::poll_legacy(std::int64_t now) {
  auto head = transport_->head_sequence();
  if (!head) {
    return fail_poll(TransportErrorKind::kUnreachable, 0, now);
  }
  if (head.value() < last_sequence_) {
    // The feed claims a head below what we already verified: a rollback
    // (or a stale mirror). Never adopt; keep serving the last good store.
    return fail_poll(TransportErrorKind::kRollback, 0, now);
  }
  if (head.value() == last_sequence_) {
    if (rollback_suspect_ && last_sequence_ > 0) {
      // The transport attempted a rollback earlier; a bare sequence match
      // is exactly what a continued replay of our own head looks like, so
      // it must not reset backoff or refresh last-contact. Only a strictly
      // newer verified run clears the suspicion on this path.
      return fail_poll(TransportErrorKind::kRollback, 0, now);
    }
    return finish_poll(PollOutcome::kSuccess, now, 0);  // nothing new
  }
  if (is_quarantined(head.value(), now)) {
    ++stats_.quarantine_skips;
    return finish_poll(PollOutcome::kSkip, now, 0);
  }

  auto fetched = transport_->fetch_since(last_sequence_);
  if (!fetched) {
    return fail_poll(TransportErrorKind::kUnreachable, 0, now);
  }
  std::vector<Snapshot> run = std::move(fetched).take();
  if (run.empty()) {
    // The head probe promised more than the fetch delivered.
    return fail_poll(TransportErrorKind::kTruncatedRun, 0, now);
  }
  if (run.back().sequence <= last_sequence_) {
    return fail_poll(TransportErrorKind::kRollback, run.back().sequence, now);
  }

  Feed::RunFault fault = Feed::RunFault::kNone;
  if (Status s = Feed::verify_run(run, last_hash_, BytesView(transport_->key_id()),
                                  verifier_registry_, &fault);
      !s) {
    ++stats_.verify_failures;
    // Fail closed: keep the last good store. Repeated failures of the same
    // head sequence land it in quarantine.
    return fail_poll(classify(fault), run.back().sequence, now);
  }
  return adopt_verified_run(run, nullptr, now);
}

std::size_t RsfClient::poll_merkle(std::int64_t now) {
  FeedFetchQuery query;
  query.from_size = last_sequence_;
  query.want_deltas = (mode_ == Transport::kDelta);
  auto fetched = transport_->feed_fetch(query);
  if (!fetched) {
    return fail_poll(TransportErrorKind::kUnreachable, 0, now);
  }
  FeedFetch ff = std::move(fetched).take();
  const SignedTreeHead& sth = ff.sth;

  // Authentication overhead of this poll: tree head, proofs, snapshot
  // headers. Body bytes (payloads or deltas) are accounted where they are
  // consumed, matching the legacy path's convention.
  std::uint64_t overhead =
      sth.wire_size() +
      (ff.consistency.size() + ff.inclusion.size()) * sizeof(ctlog::Hash);
  for (const Snapshot& snap : ff.snapshots) overhead += snap.wire_size(false);
  stats_.bytes_fetched += overhead;

  // Nothing is trusted before the tree head's signature verifies.
  if (!verifier_registry_.verify(BytesView(transport_->key_id()),
                                 BytesView(sth.transcript()),
                                 BytesView(sth.signature))) {
    ++stats_.verify_failures;
    stats_.bytes_discarded += overhead;
    return fail_poll(TransportErrorKind::kBadSignature, sth.tree_size, now);
  }
  if (sth.tree_size < last_sequence_ ||
      (sth.tree_size == last_sequence_ && last_sequence_ > 0 &&
       sth.root_hash != pinned_root_)) {
    // A signed head below our pin is a replayed historic view; an
    // equal-size head with a different root is a split view / rewritten
    // history. Both are rollbacks: never adopt.
    stats_.bytes_discarded += overhead;
    return fail_poll(TransportErrorKind::kRollback, 0, now);
  }
  if (sth.tree_size == last_sequence_) {
    // Root-verified no-change: the signed head IS the history we adopted,
    // so this contact is healthy even right after a rollback attempt.
    rollback_suspect_ = false;
    ++stats_.verified_no_change;
    return finish_poll(PollOutcome::kSuccess, now, 0);
  }
  if (is_quarantined(sth.tree_size, now)) {
    ++stats_.quarantine_skips;
    stats_.bytes_discarded += overhead;
    return finish_poll(PollOutcome::kSkip, now, 0);
  }

  // The served history must provably extend the one we verified. For a
  // fresh client there is nothing to extend — the RFC requires the empty
  // proof.
  const bool consistent =
      last_sequence_ == 0
          ? ff.consistency.empty()
          : ctlog::verify_consistency(last_sequence_, sth.tree_size,
                                      pinned_root_, sth.root_hash,
                                      ff.consistency);
  if (!consistent) {
    ++stats_.proof_failures;
    stats_.bytes_discarded += overhead;
    return fail_poll(TransportErrorKind::kBadProof, sth.tree_size, now);
  }

  std::vector<Snapshot> run = std::move(ff.snapshots);
  if (run.empty() || run.front().sequence != last_sequence_ + 1 ||
      run.back().sequence != sth.tree_size ||
      run.size() != sth.tree_size - last_sequence_) {
    // The range does not tile (pin, tree_size]: a truncated or misaligned
    // delivery.
    stats_.bytes_discarded += overhead;
    return fail_poll(TransportErrorKind::kTruncatedRun, 0, now);
  }

  Feed::RunFault fault = Feed::RunFault::kNone;
  if (Status s = Feed::verify_run(run, last_hash_,
                                  BytesView(transport_->key_id()),
                                  verifier_registry_, &fault);
      !s) {
    ++stats_.verify_failures;
    stats_.bytes_discarded += overhead;
    return fail_poll(classify(fault), sth.tree_size, now);
  }
  // Bind the run to the signed root: the head snapshot's transcript must
  // be the tree's last leaf (intermediates are bound transitively through
  // the prev_hash chain inside the transcripts).
  if (!ctlog::verify_inclusion(
          ctlog::leaf_hash(BytesView(run.back().transcript())),
          sth.tree_size - 1, sth.tree_size, ff.inclusion, sth.root_hash)) {
    ++stats_.proof_failures;
    stats_.bytes_discarded += overhead;
    return fail_poll(TransportErrorKind::kBadProof, sth.tree_size, now);
  }

  const std::size_t applied = adopt_verified_run(
      run, query.want_deltas ? &ff.deltas : nullptr, now);
  if (last_sequence_ == sth.tree_size) {
    // Adoption succeeded: pin the verified head for the next poll's
    // consistency check.
    pinned_root_ = sth.root_hash;
  }
  return applied;
}

std::size_t RsfClient::adopt_verified_run(
    const std::vector<Snapshot>& run,
    const std::vector<std::string>* inline_deltas, std::int64_t now) {
  const Snapshot& head_snap = run.back();
  bool replica_current = false;

  if (mode_ == Transport::kDelta) {
    // Replay each snapshot's edit script onto the local replica, then
    // check the result against the head's signed payload hash. Counters
    // are staged locally and committed only if the replica is adopted, so
    // an abandoned replay never inflates deltas_applied.
    rootstore::RootStore replica = primary_replica_;
    std::uint64_t replayed = 0;
    std::uint64_t delta_bytes = 0;
    bool replay_ok = true;
    TransportErrorKind replay_fault = TransportErrorKind::kCorruptDelta;
    for (std::size_t i = 0; i < run.size(); ++i) {
      std::string delta_text;
      if (inline_deltas != nullptr) {
        if (i >= inline_deltas->size()) {
          // The response shipped fewer deltas than snapshots.
          replay_ok = false;
          replay_fault = TransportErrorKind::kTruncatedRun;
          break;
        }
        delta_text = (*inline_deltas)[i];
      } else {
        auto fetched_delta = transport_->fetch_delta(run[i].sequence);
        if (!fetched_delta) {
          replay_ok = false;
          replay_fault = TransportErrorKind::kUnreachable;
          break;
        }
        delta_text = std::move(fetched_delta).take();
      }
      delta_bytes += delta_text.size();
      auto delta = StoreDelta::deserialize(delta_text);
      if (!delta) {
        replay_ok = false;
        break;
      }
      delta.value().apply(replica);
      ++replayed;
    }
    if (replay_ok &&
        Sha256::hash_hex(BytesView(to_bytes(replica.serialize()))) ==
            head_snap.payload_hash) {
      stats_.bytes_fetched += delta_bytes;
      stats_.deltas_applied += replayed;
      primary_replica_ = std::move(replica);
      replica_current = true;
    } else {
      // Fall through to the full snapshot. The delta bytes crossed the
      // wire either way, but bought nothing.
      ++stats_.delta_fallbacks;
      ++stats_.transport_errors[static_cast<std::size_t>(replay_fault)];
      stats_.bytes_fetched += delta_bytes;
      stats_.bytes_discarded += delta_bytes;
    }
  }

  if (!replica_current) {
    // Full-snapshot transport (or delta fallback): adopt the newest
    // snapshot outright; intermediates are subsumed.
    stats_.bytes_fetched += head_snap.payload.size();
    auto parsed = rootstore::RootStore::deserialize(head_snap.payload);
    if (!parsed) {
      // The payload was signed and hash-verified, yet does not parse: a
      // publisher bug, not a transport tamper. Distinct counter, same
      // fail-closed handling.
      ++stats_.parse_failures;
      stats_.bytes_discarded += head_snap.payload.size();
      return fail_poll(TransportErrorKind::kCorruptPayload,
                       head_snap.sequence, now);
    }
    primary_replica_ = std::move(parsed).take();
  }

  // Adopting a snapshot replaces the exposed store wholesale, which would
  // otherwise let its epoch counter move backwards (the incoming store has
  // its own mutation history). Observers — chain::VerifyService keys its
  // verdict cache on epoch() — rely on strict monotonicity, so force the
  // new store's epoch past the old one.
  const std::uint64_t prior_epoch = store_.epoch();
  if (local_) {
    MergeResult merged = merge(primary_replica_, *local_, policy_);
    stats_.merge_conflicts += merged.conflicts.size();
    store_ = std::move(merged.merged);
  } else {
    store_ = primary_replica_;
  }
  store_.advance_epoch_past(prior_epoch);
  if (adoption_hook_) adoption_hook_(store_);

  std::size_t applied = run.size();
  last_sequence_ = head_snap.sequence;
  last_hash_ = head_snap.payload_hash;
  last_update_time_ = now;
  stats_.updates_applied += applied;
  rollback_suspect_ = false;  // a strictly newer run verified end to end
  fail_counts_.clear();
  // A verified successor supersedes any quarantined ancestor: once the
  // client is past a poisoned sequence it will never fetch it again, so
  // keeping the entry would only pin health at kDegraded.
  quarantine_.erase(quarantine_.begin(),
                    quarantine_.upper_bound(last_sequence_));
  return finish_poll(PollOutcome::kSuccess, now, applied);
}

std::size_t RsfClient::run_until(std::int64_t now) {
  // One catch-up poll per wake: poll_now re-anchors next_poll_ relative to
  // `now` (interval on success, backoff on failure), so a client offline
  // for a month issues a single poll instead of replaying every missed
  // interval back to back.
  if (next_poll_ > now) return 0;
  return poll_now(now);
}

ManualMirrorClient::ManualMirrorClient(const Feed& feed, bool strip_gccs)
    : feed_(feed), strip_gccs_(strip_gccs) {}

void ManualMirrorClient::manual_sync(std::int64_t now) {
  std::uint64_t head = feed_.head_sequence();
  if (head == 0 || head == mirrored_sequence_) {
    last_sync_time_ = now;
    return;
  }
  const Snapshot* snap = feed_.at(head);
  auto parsed = rootstore::RootStore::deserialize(snap->payload);
  if (!parsed) return;  // a manual import of a corrupt snapshot just fails

  const std::uint64_t prior_epoch = store_.epoch();
  rootstore::RootStore incoming = std::move(parsed).take();
  if (strip_gccs_) {
    // Bare-collection derivative: certificates survive the import, GCCs
    // and metadata do not (the imprecision problem, §2.3).
    rootstore::RootStore bare;
    for (const rootstore::RootEntry* entry : incoming.trusted()) {
      bare.add_trusted_unchecked(entry->cert, rootstore::RootMetadata{});
    }
    for (const auto& [hash, justification] : incoming.distrusted()) {
      bare.distrust(hash, justification);
    }
    store_ = std::move(bare);
  } else {
    store_ = std::move(incoming);
  }
  store_.advance_epoch_past(prior_epoch);
  if (adoption_hook_) adoption_hook_(store_);
  mirrored_sequence_ = head;
  last_sync_time_ = now;
}

}  // namespace anchor::rsf
