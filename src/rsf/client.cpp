#include "rsf/client.hpp"

#include "util/sha256.hpp"

namespace anchor::rsf {

RsfClient::RsfClient(const Feed& feed, std::int64_t poll_interval,
                     MergePolicy policy, Transport transport)
    : feed_(feed),
      poll_interval_(poll_interval),
      policy_(policy),
      transport_(transport) {
  // The feed key is known out of band (certified by the coordinating body).
  verifier_registry_.register_key(
      SimSig::keygen("rsf-feed-" + feed.name()));
}

void RsfClient::set_local_store(rootstore::RootStore local) {
  local_ = std::move(local);
}

std::size_t RsfClient::poll_now(std::int64_t now) {
  ++stats_.polls;
  std::vector<Snapshot> run = feed_.fetch_since(last_sequence_);
  if (run.empty()) return 0;

  if (Status s = Feed::verify_run(run, last_hash_, BytesView(feed_.key_id()),
                                  verifier_registry_);
      !s) {
    ++stats_.verify_failures;
    return 0;  // fail closed: keep the last good store
  }

  const Snapshot& head = run.back();
  bool replica_current = false;

  if (transport_ == Transport::kDelta) {
    // Replay each snapshot's edit script onto the local replica, then
    // check the result against the head's signed payload hash.
    rootstore::RootStore replica = primary_replica_;
    bool replay_ok = true;
    for (const Snapshot& snap : run) {
      auto delta_text = feed_.fetch_delta(snap.sequence);
      if (!delta_text) {
        replay_ok = false;
        break;
      }
      stats_.bytes_fetched += delta_text.value().size();
      auto delta = StoreDelta::deserialize(delta_text.value());
      if (!delta) {
        replay_ok = false;
        break;
      }
      delta.value().apply(replica);
      ++stats_.deltas_applied;
    }
    if (replay_ok &&
        Sha256::hash_hex(BytesView(to_bytes(replica.serialize()))) ==
            head.payload_hash) {
      primary_replica_ = std::move(replica);
      replica_current = true;
    } else {
      ++stats_.delta_fallbacks;  // fall through to the full snapshot
    }
  }

  if (!replica_current) {
    // Full-snapshot transport (or delta fallback): adopt the newest
    // snapshot outright; intermediates are subsumed.
    stats_.bytes_fetched += head.payload.size();
    auto parsed = rootstore::RootStore::deserialize(head.payload);
    if (!parsed) {
      ++stats_.verify_failures;
      return 0;
    }
    primary_replica_ = std::move(parsed).take();
  }

  // Adopting a snapshot replaces the exposed store wholesale, which would
  // otherwise let its epoch counter move backwards (the incoming store has
  // its own mutation history). Observers — chain::VerifyService keys its
  // verdict cache on epoch() — rely on strict monotonicity, so force the
  // new store's epoch past the old one.
  const std::uint64_t prior_epoch = store_.epoch();
  if (local_) {
    MergeResult merged = merge(primary_replica_, *local_, policy_);
    stats_.merge_conflicts += merged.conflicts.size();
    store_ = std::move(merged.merged);
  } else {
    store_ = primary_replica_;
  }
  store_.advance_epoch_past(prior_epoch);

  std::size_t applied = run.size();
  last_sequence_ = head.sequence;
  last_hash_ = head.payload_hash;
  last_update_time_ = now;
  stats_.updates_applied += applied;
  return applied;
}

std::size_t RsfClient::run_until(std::int64_t now) {
  std::size_t applied = 0;
  while (next_poll_ <= now) {
    applied += poll_now(next_poll_);
    next_poll_ += poll_interval_;
  }
  return applied;
}

ManualMirrorClient::ManualMirrorClient(const Feed& feed, bool strip_gccs)
    : feed_(feed), strip_gccs_(strip_gccs) {}

void ManualMirrorClient::manual_sync(std::int64_t now) {
  std::uint64_t head = feed_.head_sequence();
  if (head == 0 || head == mirrored_sequence_) {
    last_sync_time_ = now;
    return;
  }
  const Snapshot* snap = feed_.at(head);
  auto parsed = rootstore::RootStore::deserialize(snap->payload);
  if (!parsed) return;  // a manual import of a corrupt snapshot just fails

  const std::uint64_t prior_epoch = store_.epoch();
  rootstore::RootStore incoming = std::move(parsed).take();
  if (strip_gccs_) {
    // Bare-collection derivative: certificates survive the import, GCCs
    // and metadata do not (the imprecision problem, §2.3).
    rootstore::RootStore bare;
    for (const rootstore::RootEntry* entry : incoming.trusted()) {
      bare.add_trusted_unchecked(entry->cert, rootstore::RootMetadata{});
    }
    for (const auto& [hash, justification] : incoming.distrusted()) {
      bare.distrust(hash, justification);
    }
    store_ = std::move(bare);
  } else {
    store_ = std::move(incoming);
  }
  store_.advance_epoch_past(prior_epoch);
  mirrored_sequence_ = head;
  last_sync_time_ = now;
}

}  // namespace anchor::rsf
