// RSF merging (§4): derivative root stores sometimes augment their primary
// ("Amazon Linux re-added 16 root certificates after they had been
// explicitly removed by NSS"). The merge combines a primary store with a
// derivative's local additions and *flags* — rather than silently resolving
// — any root that the primary explicitly distrusts but the derivative
// trusts.
#pragma once

#include <string>
#include <vector>

#include "rootstore/store.hpp"

namespace anchor::rsf {

enum class ConflictKind {
  // Primary distrusts, derivative trusts: the dangerous case.
  kDistrustedReAdded,
  // Both define metadata for the same root but disagree.
  kMetadataMismatch,
  // Derivative distrusts a root the primary trusts. Only narrows exposure
  // (never dangerous), but operators triage it differently from a metadata
  // disagreement, so it gets its own kind.
  kLocalDistrust,
};

const char* to_string(ConflictKind kind);

struct MergeConflict {
  ConflictKind kind;
  std::string root_hash;
  std::string detail;
};

struct MergeResult {
  rootstore::RootStore merged;
  std::vector<MergeConflict> conflicts;

  bool clean() const { return conflicts.empty(); }
};

// Policy for conflicting roots when the operator chooses to auto-resolve.
enum class MergePolicy {
  kPrimaryWins,    // distrust prevails (the safe default)
  kDerivativeWins, // models today's behaviour, where the re-add sticks
};

MergeResult merge(const rootstore::RootStore& primary,
                  const rootstore::RootStore& derivative,
                  MergePolicy policy = MergePolicy::kPrimaryWins);

}  // namespace anchor::rsf
