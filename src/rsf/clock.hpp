// Simulated wall clock. All RSF timing (publication, polling, staleness
// accounting) runs on SimClock so experiments are deterministic and a
// simulated year costs microseconds (DESIGN.md §5).
#pragma once

#include <cstdint>

namespace anchor::rsf {

class SimClock {
 public:
  explicit SimClock(std::int64_t start = 0) : now_(start) {}

  std::int64_t now() const { return now_; }
  void advance(std::int64_t seconds) { now_ += seconds; }
  void set(std::int64_t t) { now_ = t; }

 private:
  std::int64_t now_;
};

}  // namespace anchor::rsf
