// Store deltas (§4: "a RSF is a sequence of root-store snapshots where,
// between snapshots, both certificates and GCCs may be added or removed").
//
// Feed snapshots carry full materializations (self-contained checkpoints,
// which is what the hash chain signs); StoreDelta is the wire-efficient
// update form: diff(from, to) produces the minimal edit script, apply()
// replays it, and the round-trip law  apply(diff(a,b), a) == b  is
// property-tested. bench_rsf_merge reports the bandwidth ratio.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "revocation/crlite.hpp"
#include "rootstore/store.hpp"

namespace anchor::rsf {

struct StoreDelta {
  struct TrustChange {
    x509::CertPtr cert;
    rootstore::RootMetadata metadata;
  };

  std::vector<TrustChange> add_trusted;              // add or metadata update
  std::vector<std::pair<std::string, std::string>> distrust;  // hash, why
  std::vector<std::string> forget;                   // back to unknown
  std::vector<core::Gcc> attach_gccs;
  std::vector<std::pair<std::string, std::string>> detach_gccs;  // root, name
  // Revocation-filter carriage: at most one of these is meaningful. A
  // non-null set_filter replaces the store's compressed revocation set
  // (parsed at deserialize time so apply() cannot fail); clear_filter
  // removes it.
  std::shared_ptr<const revocation::CompressedRevocationSet> set_filter;
  bool clear_filter = false;

  bool empty() const {
    return add_trusted.empty() && distrust.empty() && forget.empty() &&
           attach_gccs.empty() && detach_gccs.empty() &&
           set_filter == nullptr && !clear_filter;
  }
  std::size_t operations() const {
    return add_trusted.size() + distrust.size() + forget.size() +
           attach_gccs.size() + detach_gccs.size() +
           (set_filter != nullptr ? 1 : 0) + (clear_filter ? 1 : 0);
  }

  // Minimal edit script turning `from` into `to`.
  static StoreDelta diff(const rootstore::RootStore& from,
                         const rootstore::RootStore& to);

  // Replays the delta onto `store`. Re-trusting a currently distrusted root
  // goes through the unchecked path: a delta produced by diff() is the
  // primary's explicit decision, not a derivative augmentation.
  void apply(rootstore::RootStore& store) const;

  // Line-oriented text form (same base64 conventions as the store format).
  std::string serialize() const;
  static Result<StoreDelta> deserialize(std::string_view text);
};

}  // namespace anchor::rsf
