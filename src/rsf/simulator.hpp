// Staleness simulation (experiment E7). Reproduces the *shape* of Ma et
// al.'s findings as cited by the paper — derivative root stores are months
// behind their primaries ("Amazon Linux exhibits an average staleness of
// more than four substantial versions", "Android is always several months
// behind") — and shows how an hourly-polling RSF client collapses both the
// staleness and the post-distrust vulnerability window.
//
// The simulated timeline: a primary operator makes routine releases at a
// fixed cadence and, at incident times, emergency releases that distrust a
// root. Derivatives consume the feed either as RSF polling clients or as
// manual mirrors with a lag distribution calibrated to the cited
// measurements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rsf/client.hpp"
#include "util/rng.hpp"

namespace anchor::rsf {

struct SimDerivativeSpec {
  std::string name;
  bool uses_rsf = false;
  std::int64_t rsf_poll_interval = 3600;  // 1 hour, per the paper
  // RSF clients may sync over a lossy / corrupting transport: when any
  // fault probability is set, the simulator wraps the feed in a
  // FaultyTransport seeded from the run's seed, and the client retries on
  // its RetryPolicy schedule. This is the fault-sweep axis of
  // bench_staleness (staleness vs loss rate, vs corruption rate).
  FaultProfile faults;
  RetryPolicy retry;
  // Manual mirrors import the upstream store periodically (a human runs the
  // update as part of a release cycle), not per upstream release: one
  // import every `manual_sync_period` +- jitter seconds.
  std::int64_t manual_sync_period = 150 * 86400;  // ~5 months
  std::int64_t manual_sync_jitter = 30 * 86400;
};

struct SimConfig {
  std::uint64_t seed = 42;
  std::int64_t start_time = 1609459200;       // 2021-01-01
  std::int64_t duration = 3 * 365 * 86400;    // three years
  std::int64_t release_interval = 42 * 86400; // ~6-week routine releases
  int num_roots = 40;
  int num_incidents = 6;                      // emergency distrust events
  std::vector<SimDerivativeSpec> derivatives;
  // Metric sink for the run: anchor_sim_* counters plus each RSF client's
  // anchor_rsf_* series labeled {feed=<derivative name>}. nullptr = the
  // process-wide registry (what bench_staleness snapshots).
  metrics::Registry* registry = nullptr;

  static SimConfig with_default_derivatives();
};

struct DistrustOutcome {
  std::int64_t primary_time = 0;  // emergency release instant
  std::string root_hash;
  // Per derivative (indexed as in SimConfig::derivatives): seconds from the
  // primary release until the derivative stopped trusting the root; -1 if
  // it never did within the simulation.
  std::vector<std::int64_t> windows;
};

struct DerivativeMetrics {
  std::string name;
  double avg_staleness_days = 0;       // mean (now - adopted release time)
  double avg_versions_behind = 0;      // mean (head seq - adopted seq)
  double max_staleness_days = 0;
  std::int64_t mean_vulnerability_window = -1;  // seconds, over incidents
  std::int64_t max_vulnerability_window = -1;
  // Distribution of the daily staleness samples (days). The median/tail
  // split matters because the mean hides the bimodal manual-mirror shape:
  // freshly synced most days, months behind right before a sync.
  double staleness_p50_days = 0;
  double staleness_p99_days = 0;
  // RSF clients only: failure-path accounting from ClientStats.
  std::uint64_t retries = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t delta_fallbacks = 0;
};

struct SimReport {
  std::vector<DerivativeMetrics> derivatives;
  std::vector<DistrustOutcome> incidents;
  std::uint64_t releases = 0;
};

SimReport run_staleness_simulation(const SimConfig& config);

// ---------------------------------------------------------------------------
// Fleet-scale feed distribution (experiment E17).
//
// Models one publisher fanning the Merkle-authenticated feed out to
// 10^4..10^6 polling clients and answers the two deployment questions the
// tree-head design is for: what does steady state cost the publisher
// (every no-change poll is a tree-head-only probe, O(1) bytes), and how
// fast does an emergency distrust reach the fleet (one consistency proof +
// one delta range per client, adopted only after the client's verify
// step).
//
// Clients are not instantiated as RsfClient objects — at 10^6 that would
// measure the simulator, not the protocol. Instead the per-poll byte costs
// are taken from real Feed::feed_fetch responses (the same objects the
// wire codec serializes) and each client is reduced to its poll schedule:
// phase uniform in one interval, then interval +- jitter per poll, with an
// independent forked RNG stream per client (stable under reordering and
// under fleet-size changes).
struct FleetConfig {
  std::uint64_t seed = 7;
  std::uint32_t num_clients = 10000;
  std::int64_t start_time = 1609459200;  // 2021-01-01
  std::int64_t poll_interval = 3600;
  double poll_jitter = 0.1;          // fraction of the interval, per poll
  // Seconds a client spends verifying the tree-head signature, the
  // consistency proof, and the snapshot run before the new store becomes
  // effective. Adoption — and therefore every staleness percentile — is
  // dated at fetch + verify, never at fetch (a client that has downloaded
  // but not yet verified an emergency distrust is still vulnerable).
  std::int64_t verify_latency = 2;
  // Steady-state window before the emergency release; sized in whole
  // intervals so the no-change egress is measured over a realistic run.
  std::int64_t lead_time = 86400;
  bool use_delta = true;             // delta transport vs full snapshots
};

struct FleetReport {
  std::uint32_t clients = 0;
  // Per-poll costs, measured from real feed_fetch responses.
  std::size_t no_change_poll_bytes = 0;   // signed tree head alone
  std::size_t emergency_poll_bytes = 0;   // STH + proofs + range (+ delta)
  // Publisher egress, summed over the fleet.
  std::uint64_t polls_no_change = 0;
  std::uint64_t bytes_no_change = 0;      // over the lead window
  std::uint64_t bytes_emergency = 0;      // the post-incident fetch wave
  // Seconds from the emergency publication to client adoption
  // (fetch instant + verify_latency).
  std::int64_t adoption_p50 = 0;
  std::int64_t adoption_p99 = 0;          // time to 99% fleet adoption
  std::int64_t adoption_max = 0;
};

FleetReport run_fleet_simulation(const FleetConfig& config);

}  // namespace anchor::rsf
