// Civil-time helpers. X.509 validity and GCC date facts use Unix seconds
// (the paper's Listings embed literal Unix timestamps); serialization and
// diagnostics need civil round-tripping. Implemented from scratch (Howard
// Hinnant's days-from-civil algorithm) to stay timezone-free: everything in
// this library is UTC.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace anchor {

struct CivilTime {
  int year = 1970;
  int month = 1;  // 1-12
  int day = 1;    // 1-31
  int hour = 0;
  int minute = 0;
  int second = 0;

  bool operator==(const CivilTime&) const = default;
};

// UTC civil time -> Unix seconds. Fields must be in range (month 1-12 etc.);
// the conversion itself does not normalize.
std::int64_t to_unix(const CivilTime& civil);

// Convenience: midnight UTC of the given date.
std::int64_t unix_date(int year, int month, int day);

// Unix seconds -> UTC civil time.
CivilTime from_unix(std::int64_t seconds);

// "YYYY-MM-DDTHH:MM:SSZ"
std::string format_iso8601(std::int64_t seconds);

// Parses "YYYY-MM-DDTHH:MM:SSZ" (exact format). Returns false on mismatch.
bool parse_iso8601(std::string_view text, std::int64_t& seconds);

constexpr std::int64_t kSecondsPerDay = 86400;

}  // namespace anchor
