// SimSig: the simulated signature scheme documented in DESIGN.md §5.
//
// The paper's mechanisms (GCCs, RSFs, chain building) depend only on
// issuer/subject linkage and on whether a signature verifies — never on the
// asymmetric primitive that produced it. SimSig replaces RSA/ECDSA with a
// deterministic SHA-256 construction so the repository is dependency-free:
//
//   key id    = H("anchor-simsig-key" || secret)        (the "public key")
//   signature = H("anchor-simsig-sig" || secret || msg) (the "tag")
//
// Verification recomputes the tag, which requires the secret; to keep the
// public/private split honest at the API level, verification goes through a
// KeyRegistry that maps key ids to signing secrets and plays the role of
// "doing the math" a real asymmetric verify would. Forging a signature for
// an unknown secret still requires inverting SHA-256, so negative tests
// (tampered certificates must fail) behave exactly as with real crypto.
//
// The chain verifier depends only on the abstract SignatureScheme interface,
// so a real backend can be slotted in without touching callers.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/bytes.hpp"
#include "util/sha256.hpp"

namespace anchor {

struct SimKeyPair {
  Bytes key_id;  // acts as the SubjectPublicKeyInfo
  Bytes secret;  // never serialized into certificates
};

// Abstract verification interface used by the chain verifier.
class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  // True iff `signature` is valid for `message` under `key_id`.
  virtual bool verify(BytesView key_id, BytesView message,
                      BytesView signature) const = 0;
};

class SimSig final : public SignatureScheme {
 public:
  // Deterministic keygen from a seed label (e.g. the CA's name).
  static SimKeyPair keygen(std::string_view label);

  static Bytes sign(const SimKeyPair& key, BytesView message);

  // Registers a key pair so verify() can recompute tags for its key id.
  void register_key(const SimKeyPair& key);

  bool verify(BytesView key_id, BytesView message,
              BytesView signature) const override;

  std::size_t registered_keys() const { return secrets_.size(); }

 private:
  std::unordered_map<std::string, Bytes> secrets_;  // hex(key_id) -> secret
};

}  // namespace anchor
