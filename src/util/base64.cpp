#include "util/base64.hpp"

#include <array>

namespace anchor {

namespace {
constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> build_reverse() {
  std::array<int, 256> table;
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = i;
  }
  return table;
}

const std::array<int, 256> kReverse = build_reverse();
}  // namespace

std::string base64_encode(BytesView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    std::uint32_t n = std::uint32_t(data[i]) << 16 |
                      std::uint32_t(data[i + 1]) << 8 | data[i + 2];
    out.push_back(kAlphabet[n >> 18]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
  }
  std::size_t remaining = data.size() - i;
  if (remaining == 1) {
    std::uint32_t n = std::uint32_t(data[i]) << 16;
    out.push_back(kAlphabet[n >> 18]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (remaining == 2) {
    std::uint32_t n = std::uint32_t(data[i]) << 16 | std::uint32_t(data[i + 1]) << 8;
    out.push_back(kAlphabet[n >> 18]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

bool base64_decode(std::string_view text, Bytes& out) {
  if (text.size() % 4 != 0) return false;
  Bytes decoded;
  decoded.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding only allowed in the last two positions of the last group.
        if (i + 4 != text.size() || j < 2) return false;
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) return false;  // data after padding
        vals[j] = kReverse[static_cast<unsigned char>(c)];
        if (vals[j] < 0) return false;
      }
    }
    std::uint32_t n = std::uint32_t(vals[0]) << 18 | std::uint32_t(vals[1]) << 12 |
                      std::uint32_t(vals[2]) << 6 | std::uint32_t(vals[3]);
    decoded.push_back(static_cast<std::uint8_t>(n >> 16));
    if (pad < 2) decoded.push_back(static_cast<std::uint8_t>(n >> 8));
    if (pad < 1) decoded.push_back(static_cast<std::uint8_t>(n));
  }
  out = std::move(decoded);
  return true;
}

std::string pem_encode(std::string_view label, BytesView der) {
  std::string out = "-----BEGIN ";
  out += label;
  out += "-----\n";
  std::string b64 = base64_encode(der);
  for (std::size_t i = 0; i < b64.size(); i += 64) {
    out += b64.substr(i, 64);
    out += '\n';
  }
  out += "-----END ";
  out += label;
  out += "-----\n";
  return out;
}

bool pem_decode(std::string_view text, std::string_view label, Bytes& out,
                std::size_t* rest) {
  std::string begin = "-----BEGIN " + std::string(label) + "-----";
  std::string end = "-----END " + std::string(label) + "-----";
  std::size_t begin_pos = text.find(begin);
  if (begin_pos == std::string_view::npos) return false;
  std::size_t body_start = begin_pos + begin.size();
  std::size_t end_pos = text.find(end, body_start);
  if (end_pos == std::string_view::npos) return false;

  std::string b64;
  for (std::size_t i = body_start; i < end_pos; ++i) {
    char c = text[i];
    if (c == '\n' || c == '\r' || c == ' ' || c == '\t') continue;
    b64.push_back(c);
  }
  if (!base64_decode(b64, out)) return false;
  if (rest != nullptr) *rest = end_pos + end.size();
  return true;
}

}  // namespace anchor
