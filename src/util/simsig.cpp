#include "util/simsig.hpp"

namespace anchor {

namespace {
constexpr std::string_view kKeyDomain = "anchor-simsig-key";
constexpr std::string_view kSigDomain = "anchor-simsig-sig";

Bytes domain_hash(std::string_view domain, BytesView a, BytesView b) {
  Sha256 h;
  Bytes d = to_bytes(domain);
  h.update(BytesView(d.data(), d.size()));
  h.update(a);
  h.update(b);
  Sha256::Digest digest = h.finish();
  return Bytes(digest.begin(), digest.end());
}
}  // namespace

SimKeyPair SimSig::keygen(std::string_view label) {
  SimKeyPair pair;
  Bytes label_bytes = to_bytes(label);
  pair.secret = domain_hash("anchor-simsig-secret", BytesView(label_bytes), {});
  pair.key_id = domain_hash(kKeyDomain, BytesView(pair.secret), {});
  return pair;
}

Bytes SimSig::sign(const SimKeyPair& key, BytesView message) {
  return domain_hash(kSigDomain, BytesView(key.secret), message);
}

void SimSig::register_key(const SimKeyPair& key) {
  secrets_[to_hex(BytesView(key.key_id))] = key.secret;
}

bool SimSig::verify(BytesView key_id, BytesView message,
                    BytesView signature) const {
  auto it = secrets_.find(to_hex(key_id));
  if (it == secrets_.end()) return false;
  // Check the claimed key id actually corresponds to the stored secret.
  Bytes expect_id = domain_hash(kKeyDomain, BytesView(it->second), {});
  if (!ct_equal(BytesView(expect_id), key_id)) return false;
  SimKeyPair pair{Bytes(key_id.begin(), key_id.end()), it->second};
  Bytes expect = sign(pair, message);
  return ct_equal(BytesView(expect), signature);
}

}  // namespace anchor
