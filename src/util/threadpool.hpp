// Fixed-size worker pool over a mutex/condvar task queue. General-purpose:
// chain::VerifyService uses it to serve concurrent verification requests
// (the paper's §3.1 platform daemon "accepts certificates and returns a
// Boolean" for every app on the machine, so the verifier must multiplex
// many callers), but nothing in here knows about certificates.
//
// Tasks are type-erased std::function<void()>; callers wanting results wrap
// a std::packaged_task and keep the future. Destruction drains nothing:
// queued-but-unstarted tasks are discarded after the stop flag is set, so
// shut down with drain() first if completion matters.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace anchor {

class ThreadPool {
 public:
  // `threads` == 0 is clamped to 1: a pool that can make no progress would
  // deadlock drain() and every future wait.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Safe from any thread, including pool workers (tasks
  // submitting tasks cannot deadlock — the queue is unbounded).
  void post(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle.
  void drain();

  std::size_t worker_count() const { return workers_.size(); }

  // Instantaneous queued-but-unstarted task count (a load signal, not a
  // synchronization primitive).
  std::size_t queue_depth() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for tasks
  std::condition_variable idle_cv_;   // drain() waits here
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;            // tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace anchor
