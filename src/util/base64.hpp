// RFC 4648 base64 plus PEM (RFC 7468) armoring, used for certificate and
// feed serialization so snapshots are diffable text.
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace anchor {

std::string base64_encode(BytesView data);

// Strict decoder: rejects non-alphabet characters (whitespace excluded by
// caller) and bad padding. Returns false on malformed input.
bool base64_decode(std::string_view text, Bytes& out);

// "-----BEGIN <label>-----\n...base64 (64-col lines)...\n-----END <label>-----\n"
std::string pem_encode(std::string_view label, BytesView der);

// Parses the first PEM block with the given label. Returns false if absent
// or malformed. `rest` (optional) receives the offset just past the block so
// callers can iterate over concatenated blocks.
bool pem_decode(std::string_view text, std::string_view label, Bytes& out,
                std::size_t* rest = nullptr);

}  // namespace anchor
