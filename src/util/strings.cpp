#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace anchor {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool dns_matches(std::string_view host, std::string_view pattern) {
  std::string h = to_lower(host);
  std::string p = to_lower(pattern);
  if (!starts_with(p, "*.")) return h == p;
  // Wildcard covers exactly one leftmost label.
  std::string_view suffix = std::string_view(p).substr(1);  // ".example.com"
  if (!ends_with(h, suffix)) return false;
  std::string_view label = std::string_view(h).substr(0, h.size() - suffix.size());
  return !label.empty() && label.find('.') == std::string_view::npos;
}

bool dns_within_constraint(std::string_view host, std::string_view constraint) {
  std::string h = to_lower(host);
  std::string c = to_lower(constraint);
  if (c.empty()) return true;  // empty constraint permits everything
  if (c[0] == '.') {
    // ".example.com": subdomains only. This is the OpenSSL reading of the
    // leading dot; the paper notes Firefox and OpenSSL disagree here.
    return ends_with(h, c);
  }
  if (h == c) return true;
  return ends_with(h, "." + c);
}

std::string tld_of(std::string_view host) {
  std::size_t dot = host.rfind('.');
  if (dot == std::string_view::npos) return to_lower(host);
  return to_lower(host.substr(dot + 1));
}

}  // namespace anchor
