// A minimal expected/result type (C++23 std::expected is unavailable on the
// C++20 toolchain this project targets). Errors are strings by design:
// every failure in this library is a diagnostic destined for an operator or
// a test assertion, not a code path to branch on.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace anchor {

struct Error {
  std::string message;
};

inline Error err(std::string message) { return Error{std::move(message)}; }

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : value_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const std::string& error() const {
    assert(!ok());
    return std::get<Error>(value_).message;
  }

 private:
  std::variant<T, Error> value_;
};

// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error.message)) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status(); }

  bool ok() const { return error_.empty(); }
  explicit operator bool() const { return ok(); }
  const std::string& error() const { return error_; }

 private:
  std::string error_;
};

}  // namespace anchor
