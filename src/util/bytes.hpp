// libanchor: byte-buffer primitives shared by every module.
//
// `Bytes` is the canonical owning buffer for DER blobs, hashes, keys and
// feed payloads. Helpers here are deliberately tiny: hex round-tripping,
// constant-time comparison for tag/hash checks, and concatenation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace anchor {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

// Lowercase hex encoding, e.g. {0xde,0xad} -> "dead".
std::string to_hex(BytesView data);

// Parses lowercase/uppercase hex. Returns false on odd length or non-hex
// characters; `out` is untouched on failure.
bool from_hex(std::string_view hex, Bytes& out);

// Constant-time equality, for comparing MAC-like signature tags.
bool ct_equal(BytesView a, BytesView b);

// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

// Bytes of a UTF-8/ASCII string, and back.
Bytes to_bytes(std::string_view s);
std::string to_string(BytesView b);

}  // namespace anchor
