// FIPS 180-4 SHA-256, implemented from scratch so the library has no
// external crypto dependency. Used for GCC-to-root binding (the paper
// attaches each General Certificate Constraint to a root by SHA-256 hash),
// for certificate fingerprints, and as the core of SimSig tags.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace anchor {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  // Streaming interface: update() any number of times, then finish().
  void update(BytesView data);
  Digest finish();

  // One-shot convenience.
  static Digest hash(BytesView data);
  static Bytes hash_bytes(BytesView data);
  static std::string hash_hex(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace anchor
