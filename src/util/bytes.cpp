#include "util/bytes.hpp"

namespace anchor {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t byte : data) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0x0f]);
  }
  return out;
}

bool from_hex(std::string_view hex, Bytes& out) {
  if (hex.size() % 2 != 0) return false;
  Bytes parsed;
  parsed.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    parsed.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  out = std::move(parsed);
  return true;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

}  // namespace anchor
