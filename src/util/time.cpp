#include "util/time.hpp"

#include <cstdio>

namespace anchor {

namespace {
// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  unsigned yoe = static_cast<unsigned>(y - era * 400);
  unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& y, int& m, int& d) {
  z += 719468;
  std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  unsigned doe = static_cast<unsigned>(z - era * 146097);
  unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  std::int64_t year = static_cast<std::int64_t>(yoe) + era * 400;
  unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(year + (m <= 2));
}
}  // namespace

std::int64_t to_unix(const CivilTime& c) {
  return days_from_civil(c.year, c.month, c.day) * kSecondsPerDay +
         c.hour * 3600 + c.minute * 60 + c.second;
}

std::int64_t unix_date(int year, int month, int day) {
  return to_unix(CivilTime{year, month, day, 0, 0, 0});
}

CivilTime from_unix(std::int64_t seconds) {
  std::int64_t days = seconds / kSecondsPerDay;
  std::int64_t rem = seconds % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilTime c;
  civil_from_days(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(rem / 3600);
  c.minute = static_cast<int>((rem % 3600) / 60);
  c.second = static_cast<int>(rem % 60);
  return c;
}

std::string format_iso8601(std::int64_t seconds) {
  CivilTime c = from_unix(seconds);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

bool parse_iso8601(std::string_view text, std::int64_t& seconds) {
  if (text.size() != 20 || text[4] != '-' || text[7] != '-' || text[10] != 'T' ||
      text[13] != ':' || text[16] != ':' || text[19] != 'Z') {
    return false;
  }
  auto digits = [&](std::size_t pos, std::size_t len, int& out) {
    out = 0;
    for (std::size_t i = pos; i < pos + len; ++i) {
      if (text[i] < '0' || text[i] > '9') return false;
      out = out * 10 + (text[i] - '0');
    }
    return true;
  };
  CivilTime c;
  if (!digits(0, 4, c.year) || !digits(5, 2, c.month) || !digits(8, 2, c.day) ||
      !digits(11, 2, c.hour) || !digits(14, 2, c.minute) ||
      !digits(17, 2, c.second)) {
    return false;
  }
  if (c.month < 1 || c.month > 12 || c.day < 1 || c.day > 31 || c.hour > 23 ||
      c.minute > 59 || c.second > 60) {
    return false;
  }
  seconds = to_unix(c);
  return true;
}

}  // namespace anchor
