#include "util/rng.hpp"

#include <cmath>

namespace anchor {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  uniform(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

std::size_t Rng::zipf(std::size_t n, double s) {
  // Inverse-CDF over the (small) support; n is at most a few thousand here.
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += 1.0 / std::pow(double(i + 1), s);
  double target = uniform01() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(double(i + 1), s);
    if (acc >= target) return i;
  }
  return n - 1;
}

std::size_t Rng::count_with_mean(double mean) {
  if (mean <= 1.0) return 1;
  double p = 1.0 / mean;
  std::size_t count = 1;
  while (!chance(p) && count < 10000) ++count;
  return count;
}

std::int64_t Rng::jittered(std::int64_t value, double fraction) {
  if (fraction <= 0 || value == 0) return value;
  const double scale = 1.0 + fraction * (2.0 * uniform01() - 1.0);
  return static_cast<std::int64_t>(static_cast<double>(value) * scale);
}

Bytes Rng::random_bytes(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; i += 8) {
    std::uint64_t word = next_u64();
    for (std::size_t j = 0; j < 8 && i + j < n; ++j) {
      out[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return out;
}

Rng Rng::fork(std::uint64_t label) {
  return Rng(next_u64() ^ (label * 0x9e3779b97f4a7c15ULL));
}

}  // namespace anchor
