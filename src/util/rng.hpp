// Deterministic PRNG (xoshiro256** seeded by splitmix64). Every synthetic
// corpus, workload and simulation in this repo is reproducible from a seed;
// std::mt19937 is avoided because its distributions are not portable across
// standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace anchor {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // Bernoulli trial.
  bool chance(double p);

  // Zipf-like heavy-tailed pick in [0, n): P(i) proportional to 1/(i+1)^s.
  // Used for TLD issuance concentration (paper cites CAge: 90% of CAs issue
  // for <= 10 TLDs).
  std::size_t zipf(std::size_t n, double s);

  // Geometric-ish count >= 1 with the given mean.
  std::size_t count_with_mean(double mean);

  // `value` perturbed by a uniform factor in [1-fraction, 1+fraction].
  // Retry backoff uses this so a fleet of clients recovering from the same
  // outage does not stampede the feed on synchronized schedules.
  std::int64_t jittered(std::int64_t value, double fraction);

  Bytes random_bytes(std::size_t n);

  // Derives an independent child stream; `label` separates domains.
  Rng fork(std::uint64_t label);

 private:
  std::uint64_t state_[4];
};

}  // namespace anchor
