// Sharded, mutex-striped LRU cache. Keys hash to one of N shards; each
// shard is an independent (mutex, hash map, intrusive LRU list) triple, so
// concurrent lookups on different shards never contend and a lock is held
// only for the map operation itself — never across anything expensive
// (chain::VerifyService relies on this to keep Datalog evaluation outside
// every critical section).
//
// Capacity is global and divided evenly across shards; eviction is
// per-shard strict LRU, which makes the whole cache "LRU-ish": a hot shard
// evicts while a cold one has room. That is the standard trade for striped
// locking and is fine for verdict/parse caches where eviction only costs a
// recompute.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace anchor {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  // `capacity` is the total entry bound; `shards` the stripe count
  // (clamped to >= 1; each shard gets at least one slot).
  ShardedLruCache(std::size_t capacity, std::size_t shards) {
    if (shards == 0) shards = 1;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    per_shard_capacity_ = capacity / shards;
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  }

  // Copies the value out under the shard lock (callers hold their own
  // copy — typically a shared_ptr or a small struct — so nothing refers
  // into the shard after the lock drops). Returns false on miss.
  bool get(const Key& key, Value& out) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.second);
    out = it->second.first;
    return true;
  }

  void put(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second.first = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.second);
      return;
    }
    if (shard.map.size() >= per_shard_capacity_) {
      shard.map.erase(shard.lru.back());
      shard.lru.pop_back();
      ++shard.evictions;
    }
    shard.lru.push_front(key);
    shard.map.emplace(key, std::make_pair(std::move(value), shard.lru.begin()));
  }

  // Removes every entry whose key satisfies `pred`; returns the count.
  // Used for epoch flushes: entries tagged with a superseded store epoch
  // are unreachable (lookups always use the current epoch) but still hold
  // memory and LRU slots.
  std::size_t erase_if(const std::function<bool(const Key&)>& pred) {
    std::size_t erased = 0;
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (pred(*it)) {
          shard.map.erase(*it);
          it = shard.lru.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard_ptr : shards_) {
      std::lock_guard<std::mutex> lock(shard_ptr->mu);
      total += shard_ptr->map.size();
    }
    return total;
  }

  std::uint64_t evictions() const {
    std::uint64_t total = 0;
    for (const auto& shard_ptr : shards_) {
      std::lock_guard<std::mutex> lock(shard_ptr->mu);
      total += shard_ptr->evictions;
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<Key> lru;  // front = most recent
    std::unordered_map<Key,
                       std::pair<Value, typename std::list<Key>::iterator>,
                       Hash>
        map;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const Key& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  // unique_ptr per shard: Shard owns a mutex, so it is neither movable nor
  // copyable; the vector is sized once in the ctor and never resized.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_;
};

}  // namespace anchor
