#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace anchor::metrics {

namespace {

// 1-2-5 decades, 1µs .. 10s.
constexpr double kLatencyBounds[] = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
    5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0};

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// `{k="v",k2="v2"}`, empty string for no labels. Values are escaped the
// Prometheus way (backslash, quote, newline).
std::string label_text(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    for (char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += "\"";
  }
  out += "}";
  return out;
}

// Integral values print as integers (counters, bucket counts); everything
// else with enough digits to round-trip.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  std::ostringstream out;
  out.precision(9);
  out << v;
  return out.str();
}

std::string bound_text(double bound) {
  if (std::isinf(bound)) return "+Inf";
  return format_value(bound);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) cells_[i].store(0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // bounds_.size() = +Inf
  cells_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b <= bounds_.size(); ++b) {
    total += cells_[b].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::span<const double> Histogram::latency_bounds() {
  return std::span<const double>(kLatencyBounds, std::size(kLatencyBounds));
}

Snapshot snapshot_delta(const Snapshot& before, const Snapshot& after) {
  Snapshot delta;
  for (const auto& [key, value] : after) {
    auto it = before.find(key);
    const double prior = it == before.end() ? 0.0 : it->second;
    if (value != prior) delta[key] = value - prior;
  }
  return delta;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Series& Registry::find_or_create(std::string_view name,
                                           const Labels& labels, Kind kind,
                                           std::span<const double> bounds) {
  const Labels canon = canonical(labels);
  std::string key = std::string(name) + label_text(canon);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  if (it != series_.end()) {
    if (it->second.kind == kind) return it->second;
    // Kind conflict: hand back working-but-unexposed storage rather than
    // corrupting the existing series or crashing a hot path.
    detached_.push_back(std::make_unique<Series>());
    Series& orphan = *detached_.back();
    orphan.kind = kind;
    orphan.name = std::string(name);
    orphan.labels = canon;
    it = series_.end();
    switch (kind) {
      case Kind::kCounter:
        orphan.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        orphan.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        orphan.histogram = std::make_unique<Histogram>(
            bounds.empty()
                ? std::vector<double>(Histogram::latency_bounds().begin(),
                                      Histogram::latency_bounds().end())
                : std::vector<double>(bounds.begin(), bounds.end()));
        break;
    }
    return orphan;
  }

  Series series;
  series.kind = kind;
  series.name = std::string(name);
  series.labels = canon;
  switch (kind) {
    case Kind::kCounter:
      series.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      series.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      series.histogram = std::make_unique<Histogram>(
          bounds.empty()
              ? std::vector<double>(Histogram::latency_bounds().begin(),
                                    Histogram::latency_bounds().end())
              : std::vector<double>(bounds.begin(), bounds.end()));
      break;
  }
  return series_.emplace(std::move(key), std::move(series)).first->second;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  return *find_or_create(name, labels, Kind::kCounter, {}).counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  return *find_or_create(name, labels, Kind::kGauge, {}).gauge;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels,
                               std::span<const double> bounds) {
  return *find_or_create(name, labels, Kind::kHistogram, bounds).histogram;
}

std::string Registry::expose() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_family;
  for (const auto& [key, series] : series_) {
    if (series.name != last_family) {
      last_family = series.name;
      out += "# TYPE " + series.name + " ";
      switch (series.kind) {
        case Kind::kCounter:
          out += "counter";
          break;
        case Kind::kGauge:
          out += "gauge";
          break;
        case Kind::kHistogram:
          out += "histogram";
          break;
      }
      out += "\n";
    }
    const std::string labels = label_text(series.labels);
    switch (series.kind) {
      case Kind::kCounter:
        out += series.name + labels + " " +
               format_value(static_cast<double>(series.counter->value())) +
               "\n";
        break;
      case Kind::kGauge:
        out += series.name + labels + " " +
               format_value(static_cast<double>(series.gauge->value())) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *series.histogram;
        for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
          Labels with_le = series.labels;
          const double bound = i < h.bounds().size()
                                   ? h.bounds()[i]
                                   : std::numeric_limits<double>::infinity();
          with_le.emplace_back("le", bound_text(bound));
          out += series.name + "_bucket" + label_text(with_le) + " " +
                 format_value(static_cast<double>(h.cumulative(i))) + "\n";
        }
        out += series.name + "_sum" + labels + " " + format_value(h.sum()) +
               "\n";
        out += series.name + "_count" + labels + " " +
               format_value(static_cast<double>(h.count())) + "\n";
        break;
      }
    }
  }
  return out;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [key, series] : series_) {
    const std::string labels = label_text(series.labels);
    switch (series.kind) {
      case Kind::kCounter:
        snap[series.name + labels] =
            static_cast<double>(series.counter->value());
        break;
      case Kind::kGauge:
        snap[series.name + labels] = static_cast<double>(series.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *series.histogram;
        for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
          Labels with_le = series.labels;
          const double bound = i < h.bounds().size()
                                   ? h.bounds()[i]
                                   : std::numeric_limits<double>::infinity();
          with_le.emplace_back("le", bound_text(bound));
          snap[series.name + "_bucket" + label_text(with_le)] =
              static_cast<double>(h.cumulative(i));
        }
        snap[series.name + "_sum" + labels] = h.sum();
        snap[series.name + "_count" + labels] =
            static_cast<double>(h.count());
        break;
      }
    }
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, series] : series_) {
    switch (series.kind) {
      case Kind::kCounter:
        series.counter->reset();
        break;
      case Kind::kGauge:
        series.gauge->reset();
        break;
      case Kind::kHistogram:
        series.histogram->reset();
        break;
    }
  }
}

std::size_t Registry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

}  // namespace anchor::metrics
