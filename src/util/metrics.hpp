// Process-wide metrics registry + lightweight tracing (DESIGN.md "Metrics
// & tracing"). The paper's deployment story — derivatives polling feeds
// hourly, user agents verifying chains against GCCs — only operates if the
// people running it can see staleness, verdict mix and failure causes
// (CT-monitoring practice and CAge, FC '13, make the same point for CT).
// Before this layer every subsystem kept its own ad-hoc counter struct
// (ServiceStats, ClientStats, EvalStats); this module gives them one
// export path without replacing those structs.
//
// Design constraints, in order:
//   * hot-path increments are single relaxed atomic ops — callers cache a
//     `Counter&`/`Gauge&`/`Histogram&` once (registration takes a lock,
//     increments never do; series have stable addresses for the life of
//     the registry);
//   * histograms are bounded: a fixed ascending bound vector chosen at
//     registration, one atomic cell per bucket plus count and sum — no
//     allocation, no rebinning, O(log buckets) per observe;
//   * series are named + labeled (`anchor_rsf_polls_total{feed="nss",
//     outcome="success"}`), exposed in a Prometheus-style text format that
//     both `anchorctl metrics` and the TrustDaemon `metrics` verb emit;
//   * snapshot()/delta let benches report *the same counters operators
//     would scrape* instead of bench-private accounting (EXPERIMENTS.md).
//
// `Registry::global()` is the default sink; components accept a Registry&
// so tests can isolate themselves with a local instance.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace anchor::metrics {

// Label set, order-insensitive (canonicalized by sorting on key).
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
// C++20 atomic<double>::fetch_add is not universally lowered; a CAS loop
// is portable and the sum cell is not contended enough to matter.
inline void atomic_add(std::atomic<double>& cell, double v) {
  double expected = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}
}  // namespace detail

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time level (queue depth, staleness, store sizes, epoch).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Bounded histogram: cumulative-on-read buckets over fixed ascending upper
// bounds plus an implicit +Inf bucket. observe() is wait-free apart from
// the sum CAS; storage is fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // Cumulative count of observations <= bounds()[i]; i == bounds().size()
  // is the +Inf bucket (== count()). Relaxed reads: a concurrent snapshot
  // may be torn across cells, which exposition tolerates (monotone within
  // each cell).
  std::uint64_t cumulative(std::size_t i) const;
  void reset();

  // Default bounds for latency-in-seconds series: 1-2-5 decades from 1µs
  // to 10s — wide enough for a spin-wait IPC leg, fine enough to separate
  // a cache hit from a Datalog evaluation.
  static std::span<const double> latency_bounds();

 private:
  std::vector<double> bounds_;
  // Per-bucket (non-cumulative) cells; index bounds_.size() = +Inf.
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

// RAII tracing span: times a scope and feeds the elapsed seconds into a
// histogram on destruction. The cheap building block behind the verify-
// latency and GCC-eval-time series.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink)
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (sink_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->observe(std::chrono::duration<double>(elapsed).count());
  }

  // Abandon the span (the scope turned out not to be the measured path).
  void cancel() { sink_ = nullptr; }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

// Flat sample map: exposition key -> value, histograms expanded into
// `_bucket{le=...}` / `_sum` / `_count` samples. Ordered so diffs and test
// assertions are deterministic.
using Snapshot = std::map<std::string, double>;

// after - before, dropping unchanged samples: what a bench run added to
// the registry. Gauges are differenced like everything else (and dropped
// when level didn't move); read their sign as direction, not as a rate.
Snapshot snapshot_delta(const Snapshot& before, const Snapshot& after);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide default sink. Components default to it; tests that
  // need isolation construct their own Registry.
  static Registry& global();

  // Find-or-create. The returned reference is stable for the registry's
  // lifetime; callers cache it and increment lock-free. Re-registering the
  // same (name, labels) returns the same series; re-registering it as a
  // different kind is a programming error and returns a detached series
  // (fail closed: the conflict never corrupts the exposition).
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  // Empty `bounds` selects Histogram::latency_bounds(); bounds are fixed
  // by whichever registration creates the series.
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       std::span<const double> bounds = {});

  // Prometheus-style text exposition, families sorted by name with one
  // `# TYPE` line each. What `anchorctl metrics` and the TrustDaemon
  // `metrics` verb print.
  std::string expose() const;

  Snapshot snapshot() const;

  // Zeroes every registered series (bench isolation between phases);
  // series themselves stay registered so cached references stay valid.
  void reset();

  std::size_t series_count() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Kind kind;
    std::string name;
    Labels labels;  // canonical (sorted) order
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& find_or_create(std::string_view name, const Labels& labels,
                         Kind kind, std::span<const double> bounds);

  mutable std::mutex mu_;
  // key = name + canonical label text; std::map keeps exposition sorted.
  std::map<std::string, Series> series_;
  // Series that lost a kind conflict: alive, addressable, never exposed.
  std::vector<std::unique_ptr<Series>> detached_;
};

}  // namespace anchor::metrics
