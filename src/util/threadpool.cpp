#include "util/threadpool.hpp"

namespace anchor {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_.clear();
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace anchor
