// Small string helpers shared across serialization, DNS-name handling and
// the Datalog lexer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace anchor {

std::vector<std::string> split(std::string_view text, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
std::string_view trim(std::string_view text);

// DNS-style wildcard/suffix matching used by SAN checks and name
// constraints:
//  - dns_matches("www.example.com", "*.example.com") == true (single label)
//  - dns_matches("example.com", "example.com") == true
bool dns_matches(std::string_view host, std::string_view pattern);

// RFC 5280 name-constraint semantics: a constraint of ".example.com" or
// "example.com" permits the host itself (latter form only) and any
// subdomain. Comparison is case-insensitive.
bool dns_within_constraint(std::string_view host, std::string_view constraint);

// Rightmost label of a DNS name ("www.example.co.uk" -> "uk"); empty on
// empty input. Used by the scope-of-issuance (CAge-style) analysis.
std::string tld_of(std::string_view host);

}  // namespace anchor
