#include "datalog/parser.hpp"

#include "datalog/lexer.hpp"

namespace anchor::datalog {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> program() {
    Program prog;
    while (!at(TokenKind::kEof)) {
      auto clause = parse_clause();
      if (!clause) return err(clause.error());
      prog.clauses.push_back(std::move(clause).take());
    }
    return prog;
  }

  Result<Atom> query() {
    auto atom = parse_atom();
    if (!atom) return err(atom.error());
    if (at(TokenKind::kQuestion)) next();
    if (at(TokenKind::kDot)) next();
    if (!at(TokenKind::kEof)) return fail("trailing tokens after query");
    return atom;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  Token next() { return tokens_[pos_++]; }

  Error fail(const std::string& what) const {
    const Token& t = peek();
    return err("datalog parse error at " + std::to_string(t.line) + ":" +
               std::to_string(t.column) + ": " + what);
  }

  Result<Clause> parse_clause() {
    Clause clause;
    auto head = parse_atom();
    if (!head) return err(head.error());
    clause.head = std::move(head).take();
    if (at(TokenKind::kColonDash)) {
      next();
      for (;;) {
        auto lit = parse_literal();
        if (!lit) return err(lit.error());
        clause.body.push_back(std::move(lit).take());
        if (at(TokenKind::kComma)) {
          next();
          continue;
        }
        break;
      }
    }
    if (!at(TokenKind::kDot)) return fail("expected '.' at end of clause");
    next();
    return clause;
  }

  Result<Atom> parse_atom() {
    // Predicate names are normally lowercase, but the paper's Listing 1
    // writes `EV(Cert)`; an identifier directly followed by '(' is therefore
    // accepted as a predicate regardless of case.
    if (!at(TokenKind::kAtomIdent) &&
        !(at(TokenKind::kVariable) &&
          tokens_[pos_ + 1].kind == TokenKind::kLParen)) {
      return fail("expected predicate name");
    }
    Atom atom;
    atom.predicate = next().text;
    if (!at(TokenKind::kLParen)) return fail("expected '(' after predicate");
    next();
    if (at(TokenKind::kRParen)) {
      next();
      return atom;  // zero-arity, e.g. placeholder exempt(...) variants
    }
    for (;;) {
      auto term = parse_term();
      if (!term) return err(term.error());
      atom.args.push_back(std::move(term).take());
      if (at(TokenKind::kComma)) {
        next();
        continue;
      }
      break;
    }
    if (!at(TokenKind::kRParen)) return fail("expected ')' in atom");
    next();
    return atom;
  }

  Result<Term> parse_term() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kVariable:
        return Term::var(next().text);
      case TokenKind::kWildcard: {
        next();
        // Each wildcard is a distinct fresh variable.
        return Term::var("_G" + std::to_string(wildcard_counter_++));
      }
      case TokenKind::kInteger:
        return Term::constant_of(Value(next().number));
      case TokenKind::kString:
        return Term::constant_of(Value(next().text));
      case TokenKind::kAtomIdent:
        return Term::constant_of(Value(next().text));
      case TokenKind::kMinus: {
        next();
        if (!at(TokenKind::kInteger)) return fail("expected integer after '-'");
        return Term::constant_of(Value(-next().number));
      }
      default:
        return fail("expected term");
    }
  }

  Result<Expr> parse_expr() {
    auto lhs = parse_term();
    if (!lhs) return err(lhs.error());
    Expr expr = Expr::term(std::move(lhs).take());
    if (at(TokenKind::kPlus) || at(TokenKind::kMinus) || at(TokenKind::kStar)) {
      TokenKind op = next().kind;
      auto rhs = parse_term();
      if (!rhs) return err(rhs.error());
      expr.op = op == TokenKind::kPlus  ? ArithOp::kAdd
                : op == TokenKind::kMinus ? ArithOp::kSub
                                          : ArithOp::kMul;
      expr.rhs = std::move(rhs).take();
    }
    return expr;
  }

  bool at_cmp() const {
    switch (peek().kind) {
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
      case TokenKind::kEq:
      case TokenKind::kNe:
        return true;
      default:
        return false;
    }
  }

  static CmpOp to_cmp(TokenKind kind) {
    switch (kind) {
      case TokenKind::kLt: return CmpOp::kLt;
      case TokenKind::kLe: return CmpOp::kLe;
      case TokenKind::kGt: return CmpOp::kGt;
      case TokenKind::kGe: return CmpOp::kGe;
      case TokenKind::kNe: return CmpOp::kNe;
      default: return CmpOp::kEq;
    }
  }

  Result<Literal> parse_literal() {
    if (at(TokenKind::kNegation)) {
      next();
      auto atom = parse_atom();
      if (!atom) return err(atom.error());
      Literal lit;
      lit.kind = Literal::Kind::kNegatedAtom;
      lit.atom = std::move(atom).take();
      return lit;
    }
    // Lookahead: `ident(` is an atom; anything else starts a comparison.
    if ((at(TokenKind::kAtomIdent) || at(TokenKind::kVariable)) &&
        tokens_[pos_ + 1].kind == TokenKind::kLParen) {
      auto atom = parse_atom();
      if (!atom) return err(atom.error());
      Literal lit;
      lit.kind = Literal::Kind::kAtom;
      lit.atom = std::move(atom).take();
      return lit;
    }
    auto left = parse_expr();
    if (!left) return err(left.error());
    if (!at_cmp()) return fail("expected comparison operator");
    CmpOp op = to_cmp(next().kind);
    auto right = parse_expr();
    if (!right) return err(right.error());
    Literal lit;
    lit.kind = Literal::Kind::kComparison;
    lit.cmp = op;
    lit.left = std::move(left).take();
    lit.right = std::move(right).take();
    return lit;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int wildcard_counter_ = 0;
};

}  // namespace

Result<Program> parse_program(std::string_view source) {
  auto tokens = lex(source);
  if (!tokens) return err(tokens.error());
  Parser parser(std::move(tokens).take());
  return parser.program();
}

Result<Atom> parse_query(std::string_view source) {
  auto tokens = lex(source);
  if (!tokens) return err(tokens.error());
  Parser parser(std::move(tokens).take());
  return parser.query();
}

}  // namespace anchor::datalog
