// Ground values in the Datalog engine. The GCC fact vocabulary only needs
// two scalar types: 64-bit integers (Unix timestamps, lifetimes, counts) and
// strings (certificate ids, hashes, DNS names, usage tags). Atoms and quoted
// strings are both represented as Value strings; the distinction is purely
// lexical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace anchor::datalog {

class Value {
 public:
  Value() : rep_(std::int64_t{0}) {}
  explicit Value(std::int64_t n) : rep_(n) {}
  explicit Value(std::string s) : rep_(std::move(s)) {}
  explicit Value(const char* s) : rep_(std::string(s)) {}

  bool is_int() const { return std::holds_alternative<std::int64_t>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  std::int64_t as_int() const { return std::get<std::int64_t>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  // Rendering for diagnostics and serialization: strings are quoted iff they
  // are not atom-shaped.
  std::string to_string() const;

  bool operator==(const Value&) const = default;
  auto operator<=>(const Value&) const = default;

 private:
  std::variant<std::int64_t, std::string> rep_;
};

using Tuple = std::vector<Value>;

struct ValueHash {
  std::size_t operator()(const Value& v) const {
    if (v.is_int()) return std::hash<std::int64_t>{}(v.as_int()) * 0x9e3779b1u;
    return std::hash<std::string>{}(v.as_string());
  }
};

struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::size_t h = 0x811c9dc5u;
    ValueHash vh;
    for (const auto& v : t) h = (h ^ vh(v)) * 0x01000193u;
    return h;
  }
};

}  // namespace anchor::datalog
