#include "datalog/interned.hpp"

namespace anchor::datalog {

IValue SymbolTable::intern_string(std::string_view s) {
  auto it = string_ids_.find(s);
  if (it != string_ids_.end()) return IValue::symbol(it->second);
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  string_ids_.emplace(strings_.back(), id);
  return IValue::symbol(id);
}

IValue SymbolTable::intern_int(std::int64_t v) {
  if (IValue::fits_inline(v)) return IValue::inline_int(v);
  auto it = boxed_ids_.find(v);
  if (it != boxed_ids_.end()) return IValue::boxed_int(it->second);
  const auto id = static_cast<std::uint32_t>(boxed_.size());
  boxed_.push_back(v);
  boxed_ids_.emplace(v, id);
  return IValue::boxed_int(id);
}

IValue SymbolTable::intern(const Value& v) {
  return v.is_int() ? intern_int(v.as_int()) : intern_string(v.as_string());
}

std::optional<IValue> SymbolTable::find_string(std::string_view s) const {
  auto it = string_ids_.find(s);
  if (it == string_ids_.end()) return std::nullopt;
  return IValue::symbol(it->second);
}

std::optional<IValue> SymbolTable::find_boxed(std::int64_t v) const {
  auto it = boxed_ids_.find(v);
  if (it == boxed_ids_.end()) return std::nullopt;
  return IValue::boxed_int(it->second);
}

void SymbolOverlay::reset(const SymbolTable* base) {
  base_ = base;
  strings_.clear();
  string_ids_.clear();
  boxed_.clear();
  boxed_ids_.clear();
}

IValue SymbolOverlay::intern_string(std::string_view s) {
  if (auto hit = base_->find_string(s)) return *hit;
  auto it = string_ids_.find(s);
  const auto offset = static_cast<std::uint32_t>(base_->string_count());
  if (it != string_ids_.end()) return IValue::symbol(offset + it->second);
  const auto local = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  string_ids_.emplace(strings_.back(), local);
  return IValue::symbol(offset + local);
}

IValue SymbolOverlay::intern_int(std::int64_t v) {
  if (IValue::fits_inline(v)) return IValue::inline_int(v);
  if (auto hit = base_->find_boxed(v)) return *hit;
  auto it = boxed_ids_.find(v);
  const auto offset = static_cast<std::uint32_t>(base_->boxed_count());
  if (it != boxed_ids_.end()) return IValue::boxed_int(offset + it->second);
  const auto local = static_cast<std::uint32_t>(boxed_.size());
  boxed_.push_back(v);
  boxed_ids_.emplace(v, local);
  return IValue::boxed_int(offset + local);
}

IValue SymbolOverlay::intern(const Value& v) {
  return v.is_int() ? intern_int(v.as_int()) : intern_string(v.as_string());
}

std::optional<IValue> SymbolOverlay::find(const Value& v) const {
  if (v.is_int()) {
    const std::int64_t n = v.as_int();
    if (IValue::fits_inline(n)) return IValue::inline_int(n);
    if (auto hit = base_->find_boxed(n)) return *hit;
    auto it = boxed_ids_.find(n);
    if (it == boxed_ids_.end()) return std::nullopt;
    return IValue::boxed_int(
        static_cast<std::uint32_t>(base_->boxed_count()) + it->second);
  }
  if (auto hit = base_->find_string(v.as_string())) return *hit;
  auto it = string_ids_.find(std::string_view(v.as_string()));
  if (it == string_ids_.end()) return std::nullopt;
  return IValue::symbol(static_cast<std::uint32_t>(base_->string_count()) +
                        it->second);
}

const std::string& SymbolOverlay::string_at(std::uint32_t id) const {
  const auto base_count = static_cast<std::uint32_t>(base_->string_count());
  return id < base_count ? base_->string_at(id) : strings_[id - base_count];
}

std::int64_t SymbolOverlay::int_of(IValue v) const {
  if (v.tag() == IValue::Tag::kInlineInt) return v.inline_value();
  const auto base_count = static_cast<std::uint32_t>(base_->boxed_count());
  const std::uint32_t id = v.id();
  return id < base_count ? base_->boxed_at(id) : boxed_[id - base_count];
}

Value SymbolOverlay::decode(IValue v) const {
  if (v.is_symbol()) return Value(string_at(v.id()));
  return Value(int_of(v));
}

void IRelation::reset(std::uint32_t arity) {
  arity_ = arity;
  count_ = 0;
  flat_.clear();
  buckets_.clear();
  first_index_.clear();
}

std::uint64_t IRelation::hash_of(std::span<const IValue> tuple) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (IValue v : tuple) {
    h = (h ^ v.bits()) * 0x100000001b3ULL;
  }
  return h;
}

bool IRelation::equals_at(std::uint32_t index,
                          std::span<const IValue> tuple) const {
  const IValue* stored = flat_.data() + static_cast<std::size_t>(index) * arity_;
  for (std::uint32_t i = 0; i < arity_; ++i) {
    if (stored[i] != tuple[i]) return false;
  }
  return true;
}

bool IRelation::insert(std::span<const IValue> tuple) {
  const std::uint64_t h = hash_of(tuple);
  std::vector<std::uint32_t>& chain = buckets_[h];
  for (std::uint32_t index : chain) {
    if (equals_at(index, tuple)) return false;
  }
  const auto index = static_cast<std::uint32_t>(count_);
  chain.push_back(index);
  flat_.insert(flat_.end(), tuple.begin(), tuple.end());
  ++count_;
  if (arity_ > 0) first_index_[tuple[0].bits()].push_back(index);
  return true;
}

bool IRelation::contains(std::span<const IValue> tuple) const {
  auto it = buckets_.find(hash_of(tuple));
  if (it == buckets_.end()) return false;
  for (std::uint32_t index : it->second) {
    if (equals_at(index, tuple)) return true;
  }
  return false;
}

const std::vector<std::uint32_t>* IRelation::first_arg_matches(IValue v) const {
  auto it = first_index_.find(v.bits());
  if (it == first_index_.end()) return nullptr;
  return &it->second;
}

}  // namespace anchor::datalog
