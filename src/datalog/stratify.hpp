// Stratification and safety analysis.
//
// The paper chooses *stratified* Datalog for GCCs precisely because its
// semantics are unambiguous and evaluation always terminates; this module is
// where those guarantees are enforced. A program that uses negation through
// recursion, or a rule whose head/negated/comparison variables cannot be
// grounded from positive body atoms (range restriction), is rejected at load
// time — before any certificate chain is evaluated against it.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.hpp"
#include "util/result.hpp"

namespace anchor::datalog {

struct Stratification {
  // stratum per IDB predicate key ("pred/arity"); EDB-only predicates get 0.
  std::unordered_map<std::string, int> stratum_of;
  int num_strata = 1;

  int stratum(const std::string& key) const {
    auto it = stratum_of.find(key);
    return it == stratum_of.end() ? 0 : it->second;
  }
};

// Fails if negation occurs inside a recursive cycle.
Result<Stratification> stratify(const Program& program);

// Range restriction: every variable occurring in the head, in a negated
// atom, or in a comparison must be derivable from positive body atoms,
// possibly through `=` assignments. Returns a per-clause diagnostic on
// violation.
Status check_safety(const Program& program);

}  // namespace anchor::datalog
