// High-level interpreter facade: load programs, assert facts, run queries.
// This is the interface the GCC executor drives; the paper's evaluation
// step — "feed the converted statements, along with the GCC in question,
// into the Datalog interpreter [and query] valid(Chain, Usage)?" — is
// exactly Engine::load + Engine::add_fact* + Engine::query.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/database.hpp"
#include "datalog/eval.hpp"
#include "datalog/parser.hpp"
#include "util/result.hpp"

namespace anchor::datalog {

struct QueryResult {
  // One entry per satisfying assignment; maps each query variable to its
  // value. A ground query that holds yields one empty binding map.
  std::vector<std::unordered_map<std::string, Value>> bindings;

  bool holds() const { return !bindings.empty(); }
};

class Engine {
 public:
  explicit Engine(Strategy strategy = Strategy::kSemiNaive)
      : strategy_(strategy) {}

  // Parses and appends clauses. Stratification/safety are validated lazily
  // at the next query (programs may be loaded piecewise).
  Status load(std::string_view source);
  void add_program(const Program& program);

  // Asserts an EDB fact.
  void add_fact(const std::string& predicate, Tuple tuple);

  Result<QueryResult> query(std::string_view query_text);
  Result<QueryResult> query(const Atom& goal);

  // Stats from the most recent evaluation.
  const EvalStats& stats() const { return stats_; }

  // Total facts+derived tuples in the current model (after a query).
  std::size_t model_size() const { return db_.total_tuples(); }

  // How many times the program has been validated + body-ordered. Interleaved
  // add_fact/query cycles must not grow this: the evaluator is cached until
  // the program itself changes.
  std::uint64_t recompiles() const { return recompiles_; }

 private:
  Status ensure_evaluated();

  Strategy strategy_;
  Program program_;
  std::vector<std::pair<std::string, Tuple>> pending_facts_;
  Database db_;
  EvalStats stats_;
  bool evaluated_ = false;
  std::optional<Evaluator> evaluator_;  // cached across re-evaluations
  std::uint64_t recompiles_ = 0;
};

}  // namespace anchor::datalog
