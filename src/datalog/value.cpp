#include "datalog/value.hpp"

namespace anchor::datalog {

namespace {
bool atom_shaped(const std::string& s) {
  if (s.empty()) return false;
  if (!(s[0] >= 'a' && s[0] <= 'z')) return false;
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}
}  // namespace

std::string Value::to_string() const {
  if (is_int()) return std::to_string(as_int());
  const std::string& s = as_string();
  if (atom_shaped(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace anchor::datalog
