// Compile/execute split for GCC evaluation (DESIGN.md "Compiled GCC
// evaluation"). The interpreted `Evaluator` re-runs stratification, safety
// and greedy body ordering — and string-compares its way through every join
// — on each evaluation. `CompiledProgram::compile` does all of that once:
//
//   * every constant is interned into a frozen per-program `SymbolTable`,
//     so runtime tuples are flat runs of 8-byte tagged `IValue`s;
//   * every variable is resolved to a slot index, so the join environment
//     is a flat slot array (no name lookup, no trail/rewind — the greedy
//     ordering gives each variable exactly one binding site);
//   * rules are stored stratified and body-ordered, with the same
//     semi-naive/naive execution structure as the interpreter.
//
// Execution state lives in a reusable `Session` arena: relations, slots and
// scratch buffers are reset between calls without releasing their heap. A
// `CompiledProgram` is immutable after compile and safe to share read-only
// across threads; each thread brings its own Session.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/database.hpp"
#include "datalog/eval.hpp"
#include "datalog/interned.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace anchor::datalog {

class CompiledProgram;

// Reusable execution arena: one per thread (or per call site), prepared
// against a program before each run. prepare() clears content but keeps
// capacity, which is what removes per-evaluation allocation from the GCC
// hot path.
class Session {
 public:
  // Binds the arena to `program`: resets the symbol overlay and sizes the
  // relation/slot storage. Must be called before add_fact()/run().
  void prepare(const CompiledProgram& program);

  // Asserts an EDB fact into the relation with the given index (from
  // CompiledProgram::relation_index; negative indices are ignored — the
  // program never mentions that predicate, so the fact cannot matter).
  // Returns true if the tuple was new.
  bool add_fact(int relation, std::span<const Value> args);

  // Facts plus derived tuples currently stored (after run()).
  std::size_t total_tuples() const;

 private:
  friend class CompiledProgram;

  const CompiledProgram* program_ = nullptr;
  SymbolOverlay overlay_;
  std::vector<IRelation> relations_;
  std::vector<IValue> slots_;
  std::vector<IValue> tuple_scratch_;  // negation probes + head emission
  // Semi-naive bookkeeping: per-relation size snapshot at round start, and
  // the [begin, end) tuple-index range derived in the previous round.
  std::vector<std::size_t> before_;
  std::vector<std::pair<std::size_t, std::size_t>> delta_;
};

class CompiledProgram {
 public:
  // Stratifies, checks safety, interns constants and resolves slots.
  // Rejects (fail closed, at compile time) programs the interpreter only
  // trips over at runtime: facts with non-constant arguments and rule heads
  // containing wildcards or variables the body never grounds.
  static Result<CompiledProgram> compile(const Program& program);

  // Evaluates to fixpoint over the session's EDB facts. Mirrors
  // Evaluator::run literal-for-literal (same strategy structure, same
  // stats semantics, same truncation behavior).
  EvalStats run(Session& session, Strategy strategy = Strategy::kSemiNaive,
                EvalLimits limits = {}) const;

  // Ground query against the session model (call after run()).
  bool query_holds(const Session& session, std::string_view predicate,
                   std::span<const Value> args) const;

  // Decodes the session model into a legacy Database (parity tests, model
  // inspection). Relations with no tuples are skipped, matching the lazily
  // created legacy relations.
  void decode_model(const Session& session, Database& out) const;

  // Dense relation id for "predicate/arity", or -1 if the program never
  // mentions it.
  int relation_index(std::string_view predicate, std::size_t arity) const;

  // Deterministic binary encoding of the full compiled form — symbol
  // pools, relations, facts, slot-resolved rules, strata — appended to
  // `out`. deserialize() rebuilds an equivalent program without parsing,
  // stratifying or re-interning source text; the derived structures
  // (relation index, per-stratum rule lists) are recomputed, everything
  // else is validated fail-closed (tags, pool ids, relation ids, arities,
  // slots, strata must all be in range). serialize(deserialize(b)) == b.
  // Integers are written in native byte order: the snapshot container
  // (rootstore/snapshot) carries an endianness tag and rejects foreign
  // bytes, so no swizzling layer is needed here.
  void serialize(Bytes& out) const;
  static Result<CompiledProgram> deserialize(BytesView bytes);

  std::size_t num_relations() const { return relations_.size(); }
  std::uint32_t relation_arity(std::size_t i) const {
    return relations_[i].arity;
  }
  const SymbolTable& symbols() const { return symbols_; }
  std::uint32_t max_slots() const { return max_slots_; }
  int num_strata() const { return num_strata_; }
  std::size_t num_rules() const { return rules_.size(); }

 private:
  struct RelationInfo {
    std::string predicate;
    std::uint32_t arity = 0;
  };

  // A program fact, pre-interned at compile time.
  struct CFact {
    int relation = -1;
    std::vector<IValue> tuple;
  };

  // A value source in an expression or head: a pre-interned constant or a
  // slot read.
  struct COperand {
    bool is_const = false;
    IValue cval;
    std::uint32_t slot = 0;
  };

  struct CExpr {
    COperand lhs;
    ArithOp op = ArithOp::kNone;
    COperand rhs;  // unused when op == kNone
  };

  // One positive-atom argument. The greedy ordering makes binding static:
  // a variable's first occurrence in the ordered body is its only kBind;
  // every later occurrence compiles to kCheck.
  struct CTerm {
    enum class Kind { kConst, kBind, kCheck, kIgnore };
    Kind kind = Kind::kIgnore;
    IValue cval;             // kConst
    std::uint32_t slot = 0;  // kBind / kCheck
  };

  struct CLiteral {
    enum class Kind {
      kScan,        // positive atom: join against a relation
      kNegated,     // ground negated atom: containment probe
      kCompare,     // fully ground comparison
      kAssign,      // `Var = expr` binding form
      kAlwaysFail,  // wildcard in a negated atom or comparison — the
                    // interpreter prunes these branches at runtime, the
                    // compiled form prunes them statically
    };
    Kind kind = Kind::kScan;
    int relation = -1;        // kScan / kNegated
    std::vector<CTerm> args;  // kScan / kNegated
    bool recursive = false;   // kScan on a same-stratum predicate
    CmpOp cmp = CmpOp::kEq;   // kCompare
    CExpr left, right;        // kCompare; kAssign stores its source in left
    std::uint32_t target = 0;  // kAssign destination slot
  };

  struct CRule {
    int relation = -1;  // head relation
    std::vector<COperand> head;
    std::vector<CLiteral> body;  // in greedy execution order
    int stratum = 0;
    std::uint32_t num_slots = 0;
  };

  CompiledProgram() = default;

  void apply_rule(const CRule& rule, Session& s, int delta_literal,
                  const EvalLimits& limits, EvalStats& stats) const;
  void join(const CRule& rule, std::size_t idx, Session& s, int delta_literal,
            const EvalLimits& limits, EvalStats& stats) const;
  void emit_head(const CRule& rule, Session& s, const EvalLimits& limits,
                 EvalStats& stats) const;

  SymbolTable symbols_;
  std::vector<RelationInfo> relations_;
  std::unordered_map<std::string, int> index_;  // relation_key -> dense id
  std::vector<CFact> facts_;
  std::vector<CRule> rules_;
  std::vector<std::vector<std::uint32_t>> stratum_rules_;
  int num_strata_ = 1;
  std::uint32_t max_slots_ = 0;
};

}  // namespace anchor::datalog
