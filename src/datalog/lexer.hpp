// Tokenizer for the GCC Datalog dialect. `%` starts a line comment, matching
// the paper's listings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace anchor::datalog {

enum class TokenKind {
  kAtomIdent,   // starts lowercase: predicate or atom constant
  kVariable,    // starts uppercase or '_' followed by chars
  kWildcard,    // bare '_'
  kInteger,
  kString,      // "..."
  kLParen,
  kRParen,
  kComma,
  kDot,
  kColonDash,   // :-
  kNegation,    // \+
  kLt, kLe, kGt, kGe, kEq, kNe,   // < <= > >= = !=
  kPlus, kMinus, kStar,
  kQuestion,    // ? (query terminator)
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;          // identifier / string contents
  std::int64_t number = 0;   // for kInteger
  int line = 1;
  int column = 1;
};

// Tokenizes `source`; on lexical error returns a message with position.
Result<std::vector<Token>> lex(std::string_view source);

}  // namespace anchor::datalog
