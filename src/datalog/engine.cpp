#include "datalog/engine.hpp"

#include "util/metrics.hpp"

namespace anchor::datalog {

Status Engine::load(std::string_view source) {
  auto parsed = parse_program(source);
  if (!parsed) return err(parsed.error());
  add_program(parsed.value());
  return {};
}

void Engine::add_program(const Program& program) {
  for (const auto& clause : program.clauses) program_.clauses.push_back(clause);
  evaluator_.reset();  // clause set changed: cached compilation is stale
  evaluated_ = false;
}

void Engine::add_fact(const std::string& predicate, Tuple tuple) {
  pending_facts_.emplace_back(predicate, std::move(tuple));
  evaluated_ = false;
}

Status Engine::ensure_evaluated() {
  if (evaluated_) return {};
  db_.clear();
  for (auto& [pred, tuple] : pending_facts_) db_.add(pred, tuple);
  // Facts don't change the program: stratification, safety and body
  // ordering from the previous evaluation stay valid, so interleaved
  // add_fact/query cycles only pay for evaluation, not recompilation.
  if (!evaluator_) {
    auto evaluator = Evaluator::create(program_, strategy_);
    if (!evaluator) return err(evaluator.error());
    evaluator_ = std::move(evaluator).take();
    ++recompiles_;
    // Engine is a value type with no registry plumbing; the process-wide
    // recompile count is the signal operators care about (a hot loop that
    // keeps editing programs shows up here).
    static metrics::Counter& recompile_count =
        metrics::Registry::global().counter("anchor_datalog_recompiles_total");
    recompile_count.add();
  }
  stats_ = evaluator_->run(db_);
  evaluated_ = true;
  return {};
}

Result<QueryResult> Engine::query(std::string_view query_text) {
  auto goal = parse_query(query_text);
  if (!goal) return err(goal.error());
  return query(goal.value());
}

Result<QueryResult> Engine::query(const Atom& goal) {
  if (Status s = ensure_evaluated(); !s) return err(s.error());
  QueryResult result;
  const Relation* rel = db_.find(goal.predicate, goal.arity());
  if (rel == nullptr) return result;
  for (const Tuple& tuple : rel->tuples()) {
    std::unordered_map<std::string, Value> binding;
    bool match = true;
    for (std::size_t i = 0; i < goal.args.size() && match; ++i) {
      const Term& term = goal.args[i];
      if (term.is_const()) {
        match = term.constant == tuple[i];
      } else if (term.is_var()) {
        auto it = binding.find(term.name);
        if (it != binding.end()) {
          match = it->second == tuple[i];
        } else {
          binding.emplace(term.name, tuple[i]);
        }
      }
      // wildcards match anything
    }
    if (match) result.bindings.push_back(std::move(binding));
  }
  return result;
}

}  // namespace anchor::datalog
