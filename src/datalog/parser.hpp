// Recursive-descent parser producing a Program. Also parses standalone
// queries of the form `valid(Chain, "TLS")?` used by the GCC executor.
#pragma once

#include <string_view>

#include "datalog/ast.hpp"
#include "util/result.hpp"

namespace anchor::datalog {

Result<Program> parse_program(std::string_view source);

// A query is a single atom, optionally '?'-terminated. Constants and
// variables are both allowed; variables become result columns.
Result<Atom> parse_query(std::string_view source);

}  // namespace anchor::datalog
