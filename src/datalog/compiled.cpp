#include "datalog/compiled.hpp"

#include <unordered_set>

#include "datalog/stratify.hpp"

namespace anchor::datalog {

namespace {

bool term_is_wildcard(const Term& t) { return t.is_wildcard(); }

// Wildcards in negated atoms and comparisons make the interpreter's
// `resolve` fail, pruning the branch on every binding; positive-atom
// wildcards just match anything.
bool literal_always_fails(const Literal& lit) {
  if (lit.kind == Literal::Kind::kComparison) {
    if (term_is_wildcard(lit.left.lhs)) return true;
    if (lit.left.op != ArithOp::kNone && term_is_wildcard(lit.left.rhs)) {
      return true;
    }
    if (term_is_wildcard(lit.right.lhs)) return true;
    if (lit.right.op != ArithOp::kNone && term_is_wildcard(lit.right.rhs)) {
      return true;
    }
    return false;
  }
  if (lit.kind == Literal::Kind::kNegatedAtom) {
    for (const Term& arg : lit.atom.args) {
      if (term_is_wildcard(arg)) return true;
    }
  }
  return false;
}

}  // namespace

Result<CompiledProgram> CompiledProgram::compile(const Program& program) {
  CompiledProgram cp;

  auto strata = stratify(program);
  if (!strata) return err(strata.error());
  const Stratification strat = std::move(strata).take();
  cp.num_strata_ = strat.num_strata;
  if (Status s = check_safety(program); !s) return err(s.error());

  auto relation_of = [&cp](const std::string& pred, std::size_t arity) -> int {
    std::string key = relation_key(pred, arity);
    auto it = cp.index_.find(key);
    if (it != cp.index_.end()) return it->second;
    const int id = static_cast<int>(cp.relations_.size());
    cp.relations_.push_back({pred, static_cast<std::uint32_t>(arity)});
    cp.index_.emplace(std::move(key), id);
    return id;
  };

  for (const Clause& clause : program.clauses) {
    if (clause.is_fact()) {
      CFact fact;
      fact.relation = relation_of(clause.head.predicate, clause.head.arity());
      fact.tuple.reserve(clause.head.args.size());
      for (const Term& arg : clause.head.args) {
        if (!arg.is_const()) {
          // The interpreter stores Value() for such terms; fail closed at
          // compile time instead of admitting a corrupt fact.
          return err("datalog: fact '" + clause.to_string() +
                     "' has a non-constant argument");
        }
        fact.tuple.push_back(cp.symbols_.intern(arg.constant));
      }
      cp.facts_.push_back(std::move(fact));
      continue;
    }

    CRule rule;
    rule.relation = relation_of(clause.head.predicate, clause.head.arity());
    rule.stratum =
        strat.stratum(relation_key(clause.head.predicate, clause.head.arity()));

    // Greedy executable ordering — identical to Evaluator::compile (it uses
    // the same literal_ready), so compiled execution visits literals in the
    // interpreter's order and derives identical models.
    std::vector<Literal> remaining = clause.body;
    std::vector<Literal> ordered;
    ordered.reserve(remaining.size());
    std::unordered_set<std::string> bound;
    while (!remaining.empty()) {
      bool placed = false;
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (!literal_ready(remaining[i], bound)) continue;
        collect_literal_vars(remaining[i], bound);
        ordered.push_back(std::move(remaining[i]));
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(i));
        placed = true;
        break;
      }
      if (!placed) {
        return err("datalog: cannot order body of '" + clause.to_string() +
                   "' for execution");
      }
    }

    // Slot resolution. Each variable gets one slot; its first occurrence in
    // the ordered body is the (single) binding site.
    std::unordered_map<std::string, std::uint32_t> slot_of;
    auto allocate = [&slot_of](const std::string& name) {
      auto it = slot_of.find(name);
      if (it != slot_of.end()) return it->second;
      const auto id = static_cast<std::uint32_t>(slot_of.size());
      slot_of.emplace(name, id);
      return id;
    };
    auto operand_of = [&](const Term& t) {
      COperand op;
      if (t.is_const()) {
        op.is_const = true;
        op.cval = cp.symbols_.intern(t.constant);
      } else {
        op.slot = slot_of.at(t.name);  // bound: literal_ready guarantees it
      }
      return op;
    };
    auto expr_of = [&](const Expr& e) {
      CExpr ce;
      ce.lhs = operand_of(e.lhs);
      ce.op = e.op;
      if (e.op != ArithOp::kNone) ce.rhs = operand_of(e.rhs);
      return ce;
    };

    for (const Literal& lit : ordered) {
      CLiteral out;
      switch (lit.kind) {
        case Literal::Kind::kAtom: {
          out.kind = CLiteral::Kind::kScan;
          out.relation = relation_of(lit.atom.predicate, lit.atom.arity());
          const std::string key =
              relation_key(lit.atom.predicate, lit.atom.arity());
          out.recursive = strat.stratum_of.contains(key) &&
                          strat.stratum(key) == rule.stratum;
          out.args.reserve(lit.atom.args.size());
          for (const Term& arg : lit.atom.args) {
            CTerm t;
            if (arg.is_const()) {
              t.kind = CTerm::Kind::kConst;
              t.cval = cp.symbols_.intern(arg.constant);
            } else if (arg.is_wildcard()) {
              t.kind = CTerm::Kind::kIgnore;
            } else if (auto it = slot_of.find(arg.name);
                       it != slot_of.end()) {
              t.kind = CTerm::Kind::kCheck;
              t.slot = it->second;
            } else {
              t.kind = CTerm::Kind::kBind;
              t.slot = allocate(arg.name);
            }
            out.args.push_back(t);
          }
          break;
        }
        case Literal::Kind::kNegatedAtom: {
          if (literal_always_fails(lit)) {
            out.kind = CLiteral::Kind::kAlwaysFail;
            break;
          }
          out.kind = CLiteral::Kind::kNegated;
          out.relation = relation_of(lit.atom.predicate, lit.atom.arity());
          out.args.reserve(lit.atom.args.size());
          for (const Term& arg : lit.atom.args) {
            CTerm t;
            if (arg.is_const()) {
              t.kind = CTerm::Kind::kConst;
              t.cval = cp.symbols_.intern(arg.constant);
            } else {
              t.kind = CTerm::Kind::kCheck;
              t.slot = slot_of.at(arg.name);  // ground: literal_ready
            }
            out.args.push_back(t);
          }
          break;
        }
        case Literal::Kind::kComparison: {
          if (literal_always_fails(lit)) {
            out.kind = CLiteral::Kind::kAlwaysFail;
            break;
          }
          std::unordered_set<std::string> vars;
          collect_literal_vars(lit, vars);
          bool any_free = false;
          for (const auto& v : vars) any_free |= !slot_of.contains(v);
          if (!any_free) {
            out.kind = CLiteral::Kind::kCompare;
            out.cmp = lit.cmp;
            out.left = expr_of(lit.left);
            out.right = expr_of(lit.right);
            break;
          }
          // Assignment form (literal_ready admits nothing else with free
          // variables): the unbound simple-variable side becomes the target.
          // The interpreter tries the left side first; match that.
          out.kind = CLiteral::Kind::kAssign;
          if (lit.left.op == ArithOp::kNone && lit.left.lhs.is_var() &&
              !slot_of.contains(lit.left.lhs.name)) {
            out.left = expr_of(lit.right);
            out.target = allocate(lit.left.lhs.name);
          } else {
            out.left = expr_of(lit.left);
            out.target = allocate(lit.right.lhs.name);
          }
          break;
        }
      }
      // Everything the ordering pass considered bound after this literal
      // needs a slot, even when the literal compiled to kAlwaysFail —
      // later literals were ordered (and are translated) under that
      // assumption. The slots are dead: execution never passes the failure.
      std::unordered_set<std::string> vars;
      collect_literal_vars(lit, vars);
      for (const auto& v : vars) allocate(v);
      rule.body.push_back(std::move(out));
    }

    rule.head.reserve(clause.head.args.size());
    for (const Term& arg : clause.head.args) {
      COperand h;
      if (arg.is_const()) {
        h.is_const = true;
        h.cval = cp.symbols_.intern(arg.constant);
      } else if (arg.is_var()) {
        auto it = slot_of.find(arg.name);
        if (it == slot_of.end()) {
          // The interpreter detects this at emit time (fail closed,
          // stats.errored); compiled programs refuse to build at all.
          return err("datalog: head variable '" + arg.name + "' in '" +
                     clause.to_string() + "' is never bound by the body");
        }
        h.slot = it->second;
      } else {
        return err("datalog: wildcard in head of '" + clause.to_string() +
                   "'");
      }
      rule.head.push_back(h);
    }
    rule.num_slots = static_cast<std::uint32_t>(slot_of.size());
    if (rule.num_slots > cp.max_slots_) cp.max_slots_ = rule.num_slots;
    cp.rules_.push_back(std::move(rule));
  }

  cp.stratum_rules_.assign(static_cast<std::size_t>(cp.num_strata_), {});
  for (std::size_t i = 0; i < cp.rules_.size(); ++i) {
    cp.stratum_rules_[static_cast<std::size_t>(cp.rules_[i].stratum)]
        .push_back(static_cast<std::uint32_t>(i));
  }
  return cp;
}

int CompiledProgram::relation_index(std::string_view predicate,
                                    std::size_t arity) const {
  auto it = index_.find(relation_key(std::string(predicate), arity));
  return it == index_.end() ? -1 : it->second;
}

// ---------------------------------------------------------------------------
// Execution.

namespace {

// Mirrors the interpreter's `compare` over interned values. Canonical
// interning makes same-type (in)equality a bit comparison; ordered string
// comparisons go through the overlay pools.
bool icompare(CmpOp op, IValue a, IValue b, const SymbolOverlay& overlay,
              EvalStats& stats) {
  if (a.is_symbol() != b.is_symbol()) {
    if (op != CmpOp::kEq && op != CmpOp::kNe) ++stats.type_errors;
    return op == CmpOp::kNe;
  }
  if (op == CmpOp::kEq) return a == b;
  if (op == CmpOp::kNe) return a != b;
  if (a.is_symbol()) {
    const auto ord = overlay.string_at(a.id()) <=> overlay.string_at(b.id());
    switch (op) {
      case CmpOp::kLt: return ord < 0;
      case CmpOp::kLe: return ord <= 0;
      case CmpOp::kGt: return ord > 0;
      case CmpOp::kGe: return ord >= 0;
      default: return false;
    }
  }
  const std::int64_t va = overlay.int_of(a);
  const std::int64_t vb = overlay.int_of(b);
  switch (op) {
    case CmpOp::kLt: return va < vb;
    case CmpOp::kLe: return va <= vb;
    case CmpOp::kGt: return va > vb;
    case CmpOp::kGe: return va >= vb;
    default: return false;
  }
}

}  // namespace

void CompiledProgram::emit_head(const CRule& rule, Session& s,
                                const EvalLimits& limits,
                                EvalStats& stats) const {
  s.tuple_scratch_.clear();
  for (const COperand& h : rule.head) {
    s.tuple_scratch_.push_back(h.is_const ? h.cval : s.slots_[h.slot]);
  }
  if (s.relations_[static_cast<std::size_t>(rule.relation)].insert(
          s.tuple_scratch_)) {
    ++stats.derived_tuples;
    if (stats.derived_tuples > limits.max_derived_tuples) {
      stats.truncated = true;
    }
  }
}

void CompiledProgram::join(const CRule& rule, std::size_t idx, Session& s,
                           int delta_literal, const EvalLimits& limits,
                           EvalStats& stats) const {
  if (stats.truncated) return;
  if (idx == rule.body.size()) {
    emit_head(rule, s, limits, stats);
    return;
  }
  const CLiteral& lit = rule.body[idx];
  switch (lit.kind) {
    case CLiteral::Kind::kScan: {
      const IRelation& rel =
          s.relations_[static_cast<std::size_t>(lit.relation)];
      auto match_tuple = [&](std::size_t t) {
        // The span is consumed before recursing: inserts during recursion
        // may reallocate the flat storage, so it must not be held across
        // the recursive call.
        std::span<const IValue> tuple = rel.tuple(t);
        for (std::size_t a = 0; a < lit.args.size(); ++a) {
          const CTerm& term = lit.args[a];
          switch (term.kind) {
            case CTerm::Kind::kConst:
              if (tuple[a] != term.cval) return;
              break;
            case CTerm::Kind::kCheck:
              if (tuple[a] != s.slots_[term.slot]) return;
              break;
            case CTerm::Kind::kBind:
              s.slots_[term.slot] = tuple[a];
              break;
            case CTerm::Kind::kIgnore:
              break;
          }
        }
        join(rule, idx + 1, s, delta_literal, limits, stats);
      };
      if (delta_literal == static_cast<int>(idx)) {
        // Semi-naive: this literal reads only the previous round's tuples.
        const auto [begin, end] =
            s.delta_[static_cast<std::size_t>(lit.relation)];
        for (std::size_t t = begin; t < end; ++t) {
          if (stats.truncated) return;
          match_tuple(t);
        }
        return;
      }
      // First-argument index: constants and already-bound variables key
      // directly into the bucket. The bucket vector object is stable under
      // map growth; the size is snapshotted so recursion-inserted tuples
      // are not scanned this pass (matching the interpreter's bucket copy).
      if (!lit.args.empty() && (lit.args[0].kind == CTerm::Kind::kConst ||
                                lit.args[0].kind == CTerm::Kind::kCheck)) {
        const IValue v0 = lit.args[0].kind == CTerm::Kind::kConst
                              ? lit.args[0].cval
                              : s.slots_[lit.args[0].slot];
        const std::vector<std::uint32_t>* bucket = rel.first_arg_matches(v0);
        if (bucket == nullptr) return;
        const std::size_t n = bucket->size();
        for (std::size_t i = 0; i < n; ++i) {
          if (stats.truncated) return;
          match_tuple((*bucket)[i]);
        }
        return;
      }
      const std::size_t end = rel.size();
      for (std::size_t t = 0; t < end; ++t) {
        if (stats.truncated) return;
        match_tuple(t);
      }
      return;
    }
    case CLiteral::Kind::kNegated: {
      s.tuple_scratch_.clear();
      for (const CTerm& term : lit.args) {
        s.tuple_scratch_.push_back(term.kind == CTerm::Kind::kConst
                                       ? term.cval
                                       : s.slots_[term.slot]);
      }
      if (s.relations_[static_cast<std::size_t>(lit.relation)].contains(
              s.tuple_scratch_)) {
        return;
      }
      join(rule, idx + 1, s, delta_literal, limits, stats);
      return;
    }
    case CLiteral::Kind::kCompare: {
      // Both sides are evaluated before deciding (the interpreter does the
      // same), so a type error on either side is always counted.
      bool ok_left = true;
      bool ok_right = true;
      auto eval_side = [&](const CExpr& e, bool& ok) {
        IValue a = e.lhs.is_const ? e.lhs.cval : s.slots_[e.lhs.slot];
        if (e.op == ArithOp::kNone) return a;
        IValue b = e.rhs.is_const ? e.rhs.cval : s.slots_[e.rhs.slot];
        if (!a.is_int() || !b.is_int()) {
          ++stats.type_errors;  // arithmetic is integer-only
          ok = false;
          return IValue();
        }
        const std::int64_t va = s.overlay_.int_of(a);
        const std::int64_t vb = s.overlay_.int_of(b);
        std::int64_t r = 0;
        switch (e.op) {
          case ArithOp::kAdd: r = va + vb; break;
          case ArithOp::kSub: r = va - vb; break;
          case ArithOp::kMul: r = va * vb; break;
          case ArithOp::kNone: break;
        }
        return s.overlay_.intern_int(r);
      };
      const IValue a = eval_side(lit.left, ok_left);
      const IValue b = eval_side(lit.right, ok_right);
      if (!ok_left || !ok_right) return;
      if (!icompare(lit.cmp, a, b, s.overlay_, stats)) return;
      join(rule, idx + 1, s, delta_literal, limits, stats);
      return;
    }
    case CLiteral::Kind::kAssign: {
      bool ok = true;
      IValue a = lit.left.lhs.is_const ? lit.left.lhs.cval
                                       : s.slots_[lit.left.lhs.slot];
      if (lit.left.op != ArithOp::kNone) {
        IValue b = lit.left.rhs.is_const ? lit.left.rhs.cval
                                         : s.slots_[lit.left.rhs.slot];
        if (!a.is_int() || !b.is_int()) {
          ++stats.type_errors;
          ok = false;
        } else {
          const std::int64_t va = s.overlay_.int_of(a);
          const std::int64_t vb = s.overlay_.int_of(b);
          std::int64_t r = 0;
          switch (lit.left.op) {
            case ArithOp::kAdd: r = va + vb; break;
            case ArithOp::kSub: r = va - vb; break;
            case ArithOp::kMul: r = va * vb; break;
            case ArithOp::kNone: break;
          }
          a = s.overlay_.intern_int(r);
        }
      }
      if (!ok) return;
      s.slots_[lit.target] = a;
      join(rule, idx + 1, s, delta_literal, limits, stats);
      return;
    }
    case CLiteral::Kind::kAlwaysFail:
      return;
  }
}

void CompiledProgram::apply_rule(const CRule& rule, Session& s,
                                 int delta_literal, const EvalLimits& limits,
                                 EvalStats& stats) const {
  ++stats.rule_applications;
  join(rule, 0, s, delta_literal, limits, stats);
}

EvalStats CompiledProgram::run(Session& s, Strategy strategy,
                               EvalLimits limits) const {
  EvalStats stats;

  for (const CFact& fact : facts_) {
    if (s.relations_[static_cast<std::size_t>(fact.relation)].insert(
            fact.tuple)) {
      ++stats.derived_tuples;
    }
  }

  const std::size_t nrel = relations_.size();
  s.before_.assign(nrel, 0);
  s.delta_.assign(nrel, {0, 0});
  auto snapshot = [&] {
    for (std::size_t r = 0; r < nrel; ++r) s.before_[r] = s.relations_[r].size();
  };
  auto capture_delta = [&] {
    bool any = false;
    for (std::size_t r = 0; r < nrel; ++r) {
      s.delta_[r] = {s.before_[r], s.relations_[r].size()};
      any |= s.delta_[r].second > s.delta_[r].first;
    }
    return any;
  };

  // The loop structure (and therefore iteration/rule-application counting
  // and truncation points) deliberately mirrors Evaluator::run.
  for (int stratum = 0; stratum < num_strata_; ++stratum) {
    const auto& active = stratum_rules_[static_cast<std::size_t>(stratum)];
    if (active.empty()) continue;

    if (strategy == Strategy::kNaive) {
      for (;;) {
        if (stats.truncated || stats.iterations > limits.max_iterations) {
          stats.truncated = true;
          break;
        }
        ++stats.iterations;
        snapshot();
        for (std::uint32_t ri : active) {
          apply_rule(rules_[ri], s, -1, limits, stats);
        }
        if (!capture_delta()) break;
      }
      continue;
    }

    // Semi-naive. Round 0: full evaluation.
    ++stats.iterations;
    snapshot();
    for (std::uint32_t ri : active) {
      apply_rule(rules_[ri], s, -1, limits, stats);
    }
    capture_delta();
    // Subsequent rounds: restrict one recursive literal to the delta.
    while (true) {
      if (stats.truncated || stats.iterations > limits.max_iterations) {
        stats.truncated = true;
        break;
      }
      bool any = false;
      for (const auto& d : s.delta_) any |= d.second > d.first;
      if (!any) break;
      ++stats.iterations;
      snapshot();
      for (std::uint32_t ri : active) {
        const CRule& rule = rules_[ri];
        for (std::size_t i = 0; i < rule.body.size(); ++i) {
          if (!rule.body[i].recursive) continue;
          apply_rule(rule, s, static_cast<int>(i), limits, stats);
        }
      }
      capture_delta();
    }
  }

  return stats;
}

bool CompiledProgram::query_holds(const Session& s, std::string_view predicate,
                                  std::span<const Value> args) const {
  const int r = relation_index(predicate, args.size());
  if (r < 0) return false;
  std::vector<IValue> probe;
  probe.reserve(args.size());
  for (const Value& v : args) {
    auto iv = s.overlay_.find(v);
    if (!iv) return false;  // value never interned => no tuple contains it
    probe.push_back(*iv);
  }
  return s.relations_[static_cast<std::size_t>(r)].contains(probe);
}

void CompiledProgram::decode_model(const Session& s, Database& out) const {
  for (std::size_t r = 0; r < relations_.size(); ++r) {
    const IRelation& rel = s.relations_[r];
    for (std::size_t t = 0; t < rel.size(); ++t) {
      const std::span<const IValue> tuple = rel.tuple(t);
      Tuple decoded;
      decoded.reserve(tuple.size());
      for (IValue v : tuple) decoded.push_back(s.overlay_.decode(v));
      out.add(relations_[r].predicate, std::move(decoded));
    }
  }
}

// ---------------------------------------------------------------------------
// Session.

void Session::prepare(const CompiledProgram& program) {
  program_ = &program;
  overlay_.reset(&program.symbols());
  const std::size_t n = program.num_relations();
  if (relations_.size() < n) relations_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    relations_[i].reset(program.relation_arity(i));
  }
  slots_.assign(program.max_slots(), IValue());
}

bool Session::add_fact(int relation, std::span<const Value> args) {
  if (relation < 0) return false;
  tuple_scratch_.clear();
  for (const Value& v : args) tuple_scratch_.push_back(overlay_.intern(v));
  return relations_[static_cast<std::size_t>(relation)].insert(tuple_scratch_);
}

std::size_t Session::total_tuples() const {
  if (program_ == nullptr) return 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < program_->num_relations(); ++i) {
    n += relations_[i].size();
  }
  return n;
}

}  // namespace anchor::datalog
