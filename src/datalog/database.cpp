#include "datalog/database.hpp"

namespace anchor::datalog {

std::string relation_key(const std::string& predicate, std::size_t arity) {
  return predicate + "/" + std::to_string(arity);
}

bool Relation::insert(Tuple tuple) {
  auto [it, inserted] = set_.insert(tuple);
  if (!inserted) return false;
  if (!tuple.empty()) {
    first_index_[tuple[0]].push_back(tuples_.size());
  }
  tuples_.push_back(std::move(tuple));
  return true;
}

bool Relation::contains(const Tuple& tuple) const {
  return set_.contains(tuple);
}

const std::vector<std::size_t>* Relation::first_arg_matches(const Value& v) const {
  auto it = first_index_.find(v);
  if (it == first_index_.end()) return nullptr;
  return &it->second;
}

bool Database::add(const std::string& predicate, Tuple tuple) {
  return relation(predicate, tuple.size()).insert(std::move(tuple));
}

const Relation* Database::find(const std::string& predicate,
                               std::size_t arity) const {
  auto it = relations_.find(relation_key(predicate, arity));
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

Relation& Database::relation(const std::string& predicate, std::size_t arity) {
  return relations_[relation_key(predicate, arity)];
}

std::size_t Database::total_tuples() const {
  std::size_t n = 0;
  for (const auto& [key, rel] : relations_) n += rel.size();
  return n;
}

void Database::clear() { relations_.clear(); }

}  // namespace anchor::datalog
