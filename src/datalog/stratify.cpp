#include "datalog/stratify.hpp"

#include <unordered_set>

#include "datalog/database.hpp"

namespace anchor::datalog {

Result<Stratification> stratify(const Program& program) {
  // Collect IDB predicates (those appearing in some rule head).
  std::unordered_set<std::string> idb;
  for (const auto& clause : program.clauses) {
    if (!clause.is_fact()) {
      idb.insert(relation_key(clause.head.predicate, clause.head.arity()));
    }
  }

  Stratification result;
  for (const auto& key : idb) result.stratum_of[key] = 0;

  // Iterative fixpoint: stratum(head) >= stratum(positive body pred),
  // stratum(head) >= stratum(negated body pred) + 1. If a stratum exceeds
  // the predicate count, negation occurs in a cycle.
  const int limit = static_cast<int>(idb.size()) + 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& clause : program.clauses) {
      if (clause.is_fact()) continue;
      std::string head_key =
          relation_key(clause.head.predicate, clause.head.arity());
      int& head_stratum = result.stratum_of[head_key];
      for (const auto& lit : clause.body) {
        if (lit.kind == Literal::Kind::kComparison) continue;
        std::string body_key =
            relation_key(lit.atom.predicate, lit.atom.arity());
        if (!idb.contains(body_key)) continue;  // EDB: stratum 0
        int body_stratum = result.stratum_of[body_key];
        int required = lit.kind == Literal::Kind::kNegatedAtom
                           ? body_stratum + 1
                           : body_stratum;
        if (required > head_stratum) {
          head_stratum = required;
          if (head_stratum > limit) {
            return err("datalog: program is not stratifiable (negation in a "
                       "recursive cycle through '" +
                       clause.head.predicate + "')");
          }
          changed = true;
        }
      }
    }
  }

  int max_stratum = 0;
  for (const auto& [key, s] : result.stratum_of) {
    if (s > max_stratum) max_stratum = s;
  }
  result.num_strata = max_stratum + 1;
  return result;
}

namespace {

void collect_vars(const Term& term, std::unordered_set<std::string>& out) {
  if (term.is_var()) out.insert(term.name);
}

void collect_expr_vars(const Expr& expr, std::unordered_set<std::string>& out) {
  collect_vars(expr.lhs, out);
  if (expr.op != ArithOp::kNone) collect_vars(expr.rhs, out);
}

bool expr_grounded(const Expr& expr,
                   const std::unordered_set<std::string>& bound) {
  std::unordered_set<std::string> vars;
  collect_expr_vars(expr, vars);
  for (const auto& v : vars) {
    if (!bound.contains(v)) return false;
  }
  return true;
}

}  // namespace

Status check_safety(const Program& program) {
  for (const auto& clause : program.clauses) {
    if (clause.is_fact()) {
      for (const auto& arg : clause.head.args) {
        if (arg.is_var()) {
          return err("datalog: fact '" + clause.head.to_string() +
                     "' contains a variable");
        }
      }
      continue;
    }

    // Simulate grounding: positive atoms bind their variables; an `=`
    // assignment binds its free side once the other side is ground. Iterate
    // to fixpoint, then demand everything needing ground status has it.
    std::unordered_set<std::string> bound;
    for (const auto& lit : clause.body) {
      if (lit.kind == Literal::Kind::kAtom) {
        for (const auto& arg : lit.atom.args) collect_vars(arg, bound);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& lit : clause.body) {
        if (lit.kind != Literal::Kind::kComparison || lit.cmp != CmpOp::kEq) {
          continue;
        }
        // X = expr (or expr = X) binds X when the expression is ground.
        if (lit.left.op == ArithOp::kNone && lit.left.lhs.is_var() &&
            !bound.contains(lit.left.lhs.name) &&
            expr_grounded(lit.right, bound)) {
          bound.insert(lit.left.lhs.name);
          changed = true;
        }
        if (lit.right.op == ArithOp::kNone && lit.right.lhs.is_var() &&
            !bound.contains(lit.right.lhs.name) &&
            expr_grounded(lit.left, bound)) {
          bound.insert(lit.right.lhs.name);
          changed = true;
        }
      }
    }

    auto require = [&](const std::unordered_set<std::string>& vars,
                       const std::string& where) -> Status {
      for (const auto& v : vars) {
        if (!bound.contains(v)) {
          return err("datalog: unsafe clause '" + clause.to_string() +
                     "': variable " + v + " in " + where +
                     " is not bound by a positive body atom");
        }
      }
      return {};
    };

    std::unordered_set<std::string> head_vars;
    for (const auto& arg : clause.head.args) collect_vars(arg, head_vars);
    if (Status s = require(head_vars, "head"); !s) return s;

    for (const auto& lit : clause.body) {
      if (lit.kind == Literal::Kind::kNegatedAtom) {
        std::unordered_set<std::string> vars;
        for (const auto& arg : lit.atom.args) collect_vars(arg, vars);
        if (Status s = require(vars, "negated atom"); !s) return s;
      } else if (lit.kind == Literal::Kind::kComparison) {
        std::unordered_set<std::string> vars;
        collect_expr_vars(lit.left, vars);
        collect_expr_vars(lit.right, vars);
        if (Status s = require(vars, "comparison"); !s) return s;
      }
    }
  }
  return {};
}

}  // namespace anchor::datalog
