// Fact storage for bottom-up evaluation. Relations are keyed by
// "predicate/arity"; each relation deduplicates tuples and maintains a
// first-argument hash index, which is the access pattern GCC programs
// overwhelmingly use (facts are keyed by certificate id).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/value.hpp"

namespace anchor::datalog {

std::string relation_key(const std::string& predicate, std::size_t arity);

class Relation {
 public:
  // Returns true if the tuple was new.
  bool insert(Tuple tuple);
  bool contains(const Tuple& tuple) const;

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  // Indices of tuples whose first argument equals `v`.
  const std::vector<std::size_t>* first_arg_matches(const Value& v) const;

 private:
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> set_;
  std::unordered_map<Value, std::vector<std::size_t>, ValueHash> first_index_;
};

class Database {
 public:
  // Returns true if new.
  bool add(const std::string& predicate, Tuple tuple);

  const Relation* find(const std::string& predicate, std::size_t arity) const;
  Relation& relation(const std::string& predicate, std::size_t arity);

  std::size_t total_tuples() const;
  void clear();

  const std::unordered_map<std::string, Relation>& relations() const {
    return relations_;
  }

 private:
  std::unordered_map<std::string, Relation> relations_;
};

}  // namespace anchor::datalog
