#include "datalog/ast.hpp"

namespace anchor::datalog {

std::string Term::to_string() const {
  switch (kind) {
    case Kind::kVariable: return name;
    case Kind::kWildcard: return "_";
    case Kind::kConstant: return constant.to_string();
  }
  return "?";
}

std::string Atom::to_string() const {
  std::string out = predicate + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].to_string();
  }
  out += ")";
  return out;
}

std::string cmp_op_name(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
  }
  return "?";
}

std::string Expr::to_string() const {
  if (op == ArithOp::kNone) return lhs.to_string();
  const char* sym = op == ArithOp::kAdd ? " + " : op == ArithOp::kSub ? " - " : " * ";
  return lhs.to_string() + sym + rhs.to_string();
}

std::string Literal::to_string() const {
  switch (kind) {
    case Kind::kAtom: return atom.to_string();
    case Kind::kNegatedAtom: return "\\+" + atom.to_string();
    case Kind::kComparison:
      return left.to_string() + " " + cmp_op_name(cmp) + " " + right.to_string();
  }
  return "?";
}

std::string Clause::to_string() const {
  std::string out = head.to_string();
  if (!body.empty()) {
    out += " :- ";
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].to_string();
    }
  }
  out += ".";
  return out;
}

std::string Program::to_string() const {
  std::string out;
  for (const auto& clause : clauses) {
    out += clause.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace anchor::datalog
