// Abstract syntax for the GCC Datalog dialect:
//
//   clause  := atom '.' | atom ':-' body '.'
//   body    := literal (',' literal)*
//   literal := atom | '\+' atom | expr cmp expr | var '=' expr
//   atom    := pred '(' term (',' term)* ')'
//   expr    := term (('+'|'-'|'*') term)?
//   term    := Variable | '_' | integer | "string" | atom-constant
//
// This covers all three listings in the paper (date comparisons, negation
// `\+EV(Cert)`, arithmetic `Lifetime = NA - NB`) plus the synthesized
// pre-emptive constraints.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "datalog/value.hpp"

namespace anchor::datalog {

struct Term {
  enum class Kind { kVariable, kConstant, kWildcard };

  Kind kind = Kind::kWildcard;
  std::string name;  // variable name (normalized; wildcards get unique names)
  Value constant;

  static Term var(std::string name) {
    return Term{Kind::kVariable, std::move(name), {}};
  }
  static Term wildcard() { return Term{Kind::kWildcard, "_", {}}; }
  static Term constant_of(Value v) {
    return Term{Kind::kConstant, {}, std::move(v)};
  }

  bool is_var() const { return kind == Kind::kVariable; }
  bool is_const() const { return kind == Kind::kConstant; }
  bool is_wildcard() const { return kind == Kind::kWildcard; }

  std::string to_string() const;
  bool operator==(const Term&) const = default;
};

struct Atom {
  std::string predicate;
  std::vector<Term> args;

  std::size_t arity() const { return args.size(); }
  std::string to_string() const;
  bool operator==(const Atom&) const = default;
};

enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

std::string cmp_op_name(CmpOp op);

enum class ArithOp { kNone, kAdd, kSub, kMul };

// A (possibly trivial) arithmetic expression over terms.
struct Expr {
  Term lhs;
  ArithOp op = ArithOp::kNone;
  Term rhs;  // unused when op == kNone

  static Expr term(Term t) { return Expr{std::move(t), ArithOp::kNone, {}}; }
  std::string to_string() const;
  bool operator==(const Expr&) const = default;
};

struct Literal {
  enum class Kind {
    kAtom,         // pred(args)
    kNegatedAtom,  // \+pred(args)
    kComparison,   // expr op expr  (kEq doubles as assignment when lhs is an
                   // unbound variable)
  };

  Kind kind = Kind::kAtom;
  Atom atom;        // for kAtom / kNegatedAtom
  CmpOp cmp = CmpOp::kEq;
  Expr left, right;  // for kComparison

  std::string to_string() const;
  bool operator==(const Literal&) const = default;
};

struct Clause {
  Atom head;
  std::vector<Literal> body;  // empty for facts

  bool is_fact() const { return body.empty(); }
  std::string to_string() const;
  bool operator==(const Clause&) const = default;
};

struct Program {
  std::vector<Clause> clauses;

  std::string to_string() const;
};

}  // namespace anchor::datalog
