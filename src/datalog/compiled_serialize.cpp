// Binary round-trip for CompiledProgram (DESIGN.md "Snapshot format &
// swap protocol"). The encoding is the compiled form laid out flat:
// symbol pools in id order, relation table, pre-interned facts, and the
// slot-resolved rule bodies exactly as compile() built them. Loading a
// program is therefore a linear validated read — no lexing, parsing,
// stratification or slot resolution — which is what lets a snapshot-backed
// store skip GCC recompilation entirely.
//
// Everything a corrupt or hostile byte stream could abuse is range-checked
// before construction completes: IValue tags and pool ids, relation ids
// and arities, slot indices against the owning rule's slot count, strata
// against the stratum count, and enum discriminants against their
// domains. Derived structures (the relation-key index and per-stratum rule
// lists) are recomputed from validated data rather than read.
#include <cstring>
#include <limits>

#include "datalog/compiled.hpp"
#include "datalog/database.hpp"

namespace anchor::datalog {

namespace {

constexpr std::uint32_t kMagic = 0x43505247;  // "CPRG"
constexpr std::uint32_t kVersion = 1;

// Hard ceilings: a truncated-then-bit-flipped header must not be able to
// request a multi-gigabyte reservation before the bounds checks run.
constexpr std::uint32_t kMaxPool = 1u << 24;
constexpr std::uint32_t kMaxStringBytes = 1u << 24;

class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), bytes, bytes + n);
  }
  Bytes& out_;
};

class Reader {
 public:
  explicit Reader(BytesView bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) { return raw(&v, sizeof v); }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  bool i32(std::int32_t& v) { return raw(&v, sizeof v); }
  bool i64(std::int64_t& v) { return raw(&v, sizeof v); }
  bool str(std::string& s, std::uint32_t max_len = kMaxStringBytes) {
    std::uint32_t len = 0;
    if (!u32(len) || len > max_len || bytes_.size() - pos_ < len) return false;
    s.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  bool raw(void* p, std::size_t n) {
    if (bytes_.size() - pos_ < n) return false;
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  BytesView bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

void CompiledProgram::serialize(Bytes& out) const {
  Writer w(out);
  w.u32(kMagic);
  w.u32(kVersion);

  w.u32(static_cast<std::uint32_t>(symbols_.string_count()));
  for (std::uint32_t i = 0; i < symbols_.string_count(); ++i) {
    w.str(symbols_.string_at(i));
  }
  w.u32(static_cast<std::uint32_t>(symbols_.boxed_count()));
  for (std::uint32_t i = 0; i < symbols_.boxed_count(); ++i) {
    w.i64(symbols_.boxed_at(i));
  }

  w.u32(static_cast<std::uint32_t>(relations_.size()));
  for (const RelationInfo& rel : relations_) {
    w.str(rel.predicate);
    w.u32(rel.arity);
  }

  w.u32(static_cast<std::uint32_t>(facts_.size()));
  for (const CFact& fact : facts_) {
    w.i32(fact.relation);
    for (IValue v : fact.tuple) w.u64(v.bits());
  }

  auto put_operand = [&w](const COperand& op) {
    w.u8(op.is_const ? 1 : 0);
    w.u64(op.cval.bits());
    w.u32(op.slot);
  };
  auto put_expr = [&](const CExpr& e) {
    put_operand(e.lhs);
    w.u8(static_cast<std::uint8_t>(e.op));
    put_operand(e.rhs);
  };

  w.u32(static_cast<std::uint32_t>(rules_.size()));
  for (const CRule& rule : rules_) {
    w.i32(rule.relation);
    w.i32(rule.stratum);
    w.u32(rule.num_slots);
    w.u32(static_cast<std::uint32_t>(rule.head.size()));
    for (const COperand& op : rule.head) put_operand(op);
    w.u32(static_cast<std::uint32_t>(rule.body.size()));
    for (const CLiteral& lit : rule.body) {
      w.u8(static_cast<std::uint8_t>(lit.kind));
      w.i32(lit.relation);
      w.u8(lit.recursive ? 1 : 0);
      w.u8(static_cast<std::uint8_t>(lit.cmp));
      put_expr(lit.left);
      put_expr(lit.right);
      w.u32(lit.target);
      w.u32(static_cast<std::uint32_t>(lit.args.size()));
      for (const CTerm& term : lit.args) {
        w.u8(static_cast<std::uint8_t>(term.kind));
        w.u64(term.cval.bits());
        w.u32(term.slot);
      }
    }
  }

  w.i32(num_strata_);
  w.u32(max_slots_);
}

Result<CompiledProgram> CompiledProgram::deserialize(BytesView bytes) {
  Reader r(bytes);
  auto fail = [](const char* what) -> Result<CompiledProgram> {
    return err(std::string("compiled program: ") + what);
  };

  std::uint32_t magic = 0, version = 0;
  if (!r.u32(magic) || magic != kMagic) return fail("bad magic");
  if (!r.u32(version) || version != kVersion) return fail("bad version");

  CompiledProgram cp;

  std::uint32_t nstrings = 0;
  if (!r.u32(nstrings) || nstrings > kMaxPool) return fail("truncated strings");
  for (std::uint32_t i = 0; i < nstrings; ++i) {
    std::string s;
    if (!r.str(s)) return fail("truncated string pool");
    // Re-interning in stored id order reproduces the original ids; a
    // duplicate entry would shift every later id, so reject it.
    if (cp.symbols_.intern_string(s) != IValue::symbol(i)) {
      return fail("duplicate string pool entry");
    }
  }
  std::uint32_t nboxed = 0;
  if (!r.u32(nboxed) || nboxed > kMaxPool) return fail("truncated boxed ints");
  for (std::uint32_t i = 0; i < nboxed; ++i) {
    std::int64_t v = 0;
    if (!r.i64(v)) return fail("truncated boxed pool");
    // Only values that cannot be inlined ever reach the boxed pool; an
    // inlinable value here would intern to a different representation and
    // break every id after it.
    if (IValue::fits_inline(v) ||
        cp.symbols_.intern_int(v) != IValue::boxed_int(i)) {
      return fail("invalid boxed pool entry");
    }
  }

  // An IValue is only meaningful relative to the pools above.
  auto check_value = [&](IValue v) {
    switch (v.tag()) {
      case IValue::Tag::kInlineInt:
        return true;
      case IValue::Tag::kSymbol:
        return v.id() < nstrings;
      case IValue::Tag::kBoxedInt:
        return v.id() < nboxed;
    }
    return false;  // tag bits 11: never produced by interning
  };
  auto read_value = [&](IValue& out) {
    std::uint64_t bits = 0;
    if (!r.u64(bits)) return false;
    out = IValue::from_bits(bits);
    return check_value(out);
  };

  std::uint32_t nrelations = 0;
  if (!r.u32(nrelations) || nrelations > kMaxPool) {
    return fail("truncated relations");
  }
  cp.relations_.reserve(nrelations);
  for (std::uint32_t i = 0; i < nrelations; ++i) {
    RelationInfo rel;
    if (!r.str(rel.predicate) || !r.u32(rel.arity) || rel.arity > kMaxPool) {
      return fail("truncated relation table");
    }
    std::string key = relation_key(rel.predicate, rel.arity);
    if (!cp.index_.emplace(std::move(key), static_cast<int>(i)).second) {
      return fail("duplicate relation");
    }
    cp.relations_.push_back(std::move(rel));
  }
  auto check_relation = [&](int id) {
    return id >= 0 && static_cast<std::uint32_t>(id) < nrelations;
  };

  std::uint32_t nfacts = 0;
  if (!r.u32(nfacts) || nfacts > kMaxPool) return fail("truncated facts");
  cp.facts_.reserve(nfacts);
  for (std::uint32_t i = 0; i < nfacts; ++i) {
    CFact fact;
    if (!r.i32(fact.relation) || !check_relation(fact.relation)) {
      return fail("fact names an unknown relation");
    }
    const std::uint32_t arity =
        cp.relations_[static_cast<std::size_t>(fact.relation)].arity;
    fact.tuple.resize(arity);
    for (IValue& v : fact.tuple) {
      if (!read_value(v)) return fail("fact tuple value out of range");
    }
    cp.facts_.push_back(std::move(fact));
  }

  std::int32_t num_strata = 0;
  std::uint32_t max_slots = 0;

  std::uint32_t nrules = 0;
  if (!r.u32(nrules) || nrules > kMaxPool) return fail("truncated rules");
  cp.rules_.reserve(nrules);
  std::uint32_t computed_max_slots = 0;
  for (std::uint32_t i = 0; i < nrules; ++i) {
    CRule rule;
    if (!r.i32(rule.relation) || !check_relation(rule.relation)) {
      return fail("rule head names an unknown relation");
    }
    if (!r.i32(rule.stratum) || rule.stratum < 0) return fail("bad stratum");
    if (!r.u32(rule.num_slots) || rule.num_slots > kMaxPool) {
      return fail("bad slot count");
    }
    if (rule.num_slots > computed_max_slots) {
      computed_max_slots = rule.num_slots;
    }

    auto check_slot = [&rule](std::uint32_t slot) {
      return slot < rule.num_slots;
    };
    auto read_operand = [&](COperand& op) {
      std::uint8_t is_const = 0;
      if (!r.u8(is_const) || is_const > 1) return false;
      op.is_const = is_const == 1;
      if (!read_value(op.cval) || !r.u32(op.slot)) return false;
      return op.is_const || check_slot(op.slot);
    };
    auto read_expr = [&](CExpr& e) {
      std::uint8_t op = 0;
      if (!read_operand(e.lhs) || !r.u8(op) ||
          op > static_cast<std::uint8_t>(ArithOp::kMul)) {
        return false;
      }
      e.op = static_cast<ArithOp>(op);
      return read_operand(e.rhs);
    };

    std::uint32_t nhead = 0;
    const std::uint32_t head_arity =
        cp.relations_[static_cast<std::size_t>(rule.relation)].arity;
    if (!r.u32(nhead) || nhead != head_arity) return fail("head arity mismatch");
    rule.head.resize(nhead);
    for (COperand& op : rule.head) {
      if (!read_operand(op)) return fail("bad head operand");
    }

    std::uint32_t nbody = 0;
    if (!r.u32(nbody) || nbody > kMaxPool) return fail("truncated rule body");
    rule.body.reserve(nbody);
    for (std::uint32_t j = 0; j < nbody; ++j) {
      CLiteral lit;
      std::uint8_t kind = 0, recursive = 0, cmp = 0;
      if (!r.u8(kind) ||
          kind > static_cast<std::uint8_t>(CLiteral::Kind::kAlwaysFail)) {
        return fail("bad literal kind");
      }
      lit.kind = static_cast<CLiteral::Kind>(kind);
      if (!r.i32(lit.relation) || !r.u8(recursive) || recursive > 1 ||
          !r.u8(cmp) || cmp > static_cast<std::uint8_t>(CmpOp::kNe)) {
        return fail("bad literal header");
      }
      lit.recursive = recursive == 1;
      lit.cmp = static_cast<CmpOp>(cmp);
      if (!read_expr(lit.left) || !read_expr(lit.right) ||
          !r.u32(lit.target)) {
        return fail("bad literal expression");
      }
      const bool is_scan = lit.kind == CLiteral::Kind::kScan ||
                           lit.kind == CLiteral::Kind::kNegated;
      if (is_scan && !check_relation(lit.relation)) {
        return fail("literal names an unknown relation");
      }
      if (lit.kind == CLiteral::Kind::kAssign && !check_slot(lit.target)) {
        return fail("assignment target out of range");
      }
      std::uint32_t nargs = 0;
      if (!r.u32(nargs) || nargs > kMaxPool) return fail("truncated literal");
      if (is_scan &&
          nargs != cp.relations_[static_cast<std::size_t>(lit.relation)].arity) {
        return fail("literal arity mismatch");
      }
      lit.args.resize(nargs);
      for (CTerm& term : lit.args) {
        std::uint8_t term_kind = 0;
        if (!r.u8(term_kind) ||
            term_kind > static_cast<std::uint8_t>(CTerm::Kind::kIgnore)) {
          return fail("bad term kind");
        }
        term.kind = static_cast<CTerm::Kind>(term_kind);
        if (!read_value(term.cval) || !r.u32(term.slot)) {
          return fail("bad term");
        }
        const bool uses_slot = term.kind == CTerm::Kind::kBind ||
                               term.kind == CTerm::Kind::kCheck;
        if (uses_slot && !check_slot(term.slot)) {
          return fail("term slot out of range");
        }
      }
      rule.body.push_back(std::move(lit));
    }
    cp.rules_.push_back(std::move(rule));
  }

  if (!r.i32(num_strata) || num_strata < 1 || num_strata > 1 << 16) {
    return fail("bad stratum count");
  }
  if (!r.u32(max_slots) || max_slots != computed_max_slots) {
    return fail("slot count mismatch");
  }
  if (!r.done()) return fail("trailing bytes");

  cp.num_strata_ = num_strata;
  cp.max_slots_ = max_slots;
  for (const CRule& rule : cp.rules_) {
    if (rule.stratum >= num_strata) return fail("stratum out of range");
  }
  // Recompute the per-stratum execution order exactly as compile() does:
  // rules in program order within each stratum.
  cp.stratum_rules_.assign(static_cast<std::size_t>(num_strata), {});
  for (std::size_t i = 0; i < cp.rules_.size(); ++i) {
    cp.stratum_rules_[static_cast<std::size_t>(cp.rules_[i].stratum)]
        .push_back(static_cast<std::uint32_t>(i));
  }
  return cp;
}

}  // namespace anchor::datalog
