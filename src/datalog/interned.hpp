// Interned value representation for the compiled GCC evaluation pipeline
// (DESIGN.md "Compiled GCC evaluation"). Ground values become 8-byte tagged
// ids and tuples become flat runs of those ids: equality is bit equality,
// hashing is bit mixing, and the only operations that touch the backing
// strings are ordered comparisons and model decoding.
//
// Two tables cooperate so a compiled program can be shared read-only across
// threads: `SymbolTable` is frozen at compile time and holds every constant
// the program mentions; `SymbolOverlay` is a per-evaluation extension that
// interns the runtime fact values (certificate hashes, DNS names, ...) with
// ids offset past the base table, and is reset between evaluations without
// releasing its heap.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "datalog/value.hpp"

namespace anchor::datalog {

// An 8-byte tagged id. The low two bits select the representation:
//   00  inline integer, value in the upper 62 bits (covers every timestamp,
//       lifetime and counter in the fact vocabulary)
//   01  string symbol: id into a string pool
//   10  boxed integer: id into an int pool (the |v| >= 2^61 escape hatch,
//       reachable only through arithmetic overflow or hand-written programs)
// Interning is canonical — equal Values always produce bit-equal IValues —
// so equality and hashing never consult the pools.
class IValue {
 public:
  enum class Tag : std::uint64_t { kInlineInt = 0, kSymbol = 1, kBoxedInt = 2 };

  constexpr IValue() : bits_(0) {}  // inline integer 0

  static constexpr std::int64_t kMaxInline = (std::int64_t{1} << 61) - 1;
  static constexpr std::int64_t kMinInline = -(std::int64_t{1} << 61);
  static constexpr bool fits_inline(std::int64_t v) {
    return v >= kMinInline && v <= kMaxInline;
  }

  static IValue inline_int(std::int64_t v) {
    return IValue(static_cast<std::uint64_t>(v) << 2);
  }
  static IValue symbol(std::uint32_t id) {
    return IValue((std::uint64_t{id} << 2) | std::uint64_t{1});
  }
  static IValue boxed_int(std::uint32_t id) {
    return IValue((std::uint64_t{id} << 2) | std::uint64_t{2});
  }

  // Reconstructs an IValue from bits() — snapshot deserialization
  // (datalog/compiled_serialize.cpp). The caller must validate the tag and
  // pool bounds against the table the value will be decoded through; the
  // raw constructor itself cannot.
  static constexpr IValue from_bits(std::uint64_t bits) {
    return IValue(bits);
  }

  Tag tag() const { return static_cast<Tag>(bits_ & 3); }
  bool is_symbol() const { return tag() == Tag::kSymbol; }
  bool is_int() const { return !is_symbol(); }

  // Valid only for Tag::kInlineInt (C++20 guarantees the arithmetic shift).
  std::int64_t inline_value() const {
    return static_cast<std::int64_t>(bits_) >> 2;
  }
  // Pool index; valid for kSymbol and kBoxedInt.
  std::uint32_t id() const { return static_cast<std::uint32_t>(bits_ >> 2); }
  std::uint64_t bits() const { return bits_; }

  bool operator==(const IValue&) const = default;

 private:
  explicit constexpr IValue(std::uint64_t bits) : bits_(bits) {}
  std::uint64_t bits_;
};

struct IValueHash {
  std::size_t operator()(IValue v) const {
    std::uint64_t h = v.bits();
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

namespace internal {
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct StringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};
using StringIdMap =
    std::unordered_map<std::string, std::uint32_t, StringHash, StringEq>;
}  // namespace internal

// The frozen base table: owned by a CompiledProgram, populated during
// compilation, immutable (and therefore freely shared across threads)
// afterwards.
class SymbolTable {
 public:
  IValue intern_string(std::string_view s);
  IValue intern_int(std::int64_t v);
  IValue intern(const Value& v);

  std::optional<IValue> find_string(std::string_view s) const;
  std::optional<IValue> find_boxed(std::int64_t v) const;

  const std::string& string_at(std::uint32_t id) const { return strings_[id]; }
  std::int64_t boxed_at(std::uint32_t id) const { return boxed_[id]; }
  std::size_t string_count() const { return strings_.size(); }
  std::size_t boxed_count() const { return boxed_.size(); }

 private:
  std::vector<std::string> strings_;
  internal::StringIdMap string_ids_;
  std::vector<std::int64_t> boxed_;
  std::unordered_map<std::int64_t, std::uint32_t> boxed_ids_;
};

// Per-evaluation extension of a frozen SymbolTable. Lookups consult the
// base first; misses intern locally with ids offset past the base counts.
// reset() drops the local entries but keeps their heap capacity, which is
// what makes a Session arena reusable call to call.
class SymbolOverlay {
 public:
  void reset(const SymbolTable* base);

  IValue intern_string(std::string_view s);
  IValue intern_int(std::int64_t v);
  IValue intern(const Value& v);

  // Lookup without interning; nullopt means no fact or program constant
  // ever produced this value, so no tuple can contain it.
  std::optional<IValue> find(const Value& v) const;

  const std::string& string_at(std::uint32_t id) const;
  // Decodes any integer-tagged IValue (inline or boxed).
  std::int64_t int_of(IValue v) const;

  Value decode(IValue v) const;

 private:
  const SymbolTable* base_ = nullptr;
  std::vector<std::string> strings_;
  internal::StringIdMap string_ids_;
  std::vector<std::int64_t> boxed_;
  std::unordered_map<std::int64_t, std::uint32_t> boxed_ids_;
};

// An interned relation: tuples of a fixed arity stored as one flat IValue
// array, with bit-hash dedup and the same first-argument index the legacy
// Relation keeps (GCC facts are overwhelmingly keyed by certificate id).
// reset() clears content but retains capacity.
class IRelation {
 public:
  void reset(std::uint32_t arity);

  std::uint32_t arity() const { return arity_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  std::span<const IValue> tuple(std::size_t i) const {
    return {flat_.data() + i * arity_, arity_};
  }

  // Returns true if the tuple was new.
  bool insert(std::span<const IValue> tuple);
  bool contains(std::span<const IValue> tuple) const;

  // Indices of tuples whose first argument equals `v` (nullptr: none).
  const std::vector<std::uint32_t>* first_arg_matches(IValue v) const;

 private:
  std::uint64_t hash_of(std::span<const IValue> tuple) const;
  bool equals_at(std::uint32_t index, std::span<const IValue> tuple) const;

  std::uint32_t arity_ = 0;
  std::size_t count_ = 0;
  std::vector<IValue> flat_;
  // Open chains keyed by tuple hash; collisions compare the flat storage.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> first_index_;
};

}  // namespace anchor::datalog
