#include "datalog/lexer.hpp"

#include <cctype>

namespace anchor::datalog {

namespace {
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Result<std::vector<Token>> lex(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  auto fail = [&](const std::string& what) {
    return err("datalog lex error at " + std::to_string(line) + ":" +
               std::to_string(column) + ": " + what);
  };
  auto push = [&](TokenKind kind, std::string text = "", std::int64_t num = 0) {
    tokens.push_back(Token{kind, std::move(text), num, line, column});
  };
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '%') {
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = 0;
      int start_col = column;
      while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i]))) {
        std::int64_t digit = source[i] - '0';
        if (value > (INT64_MAX - digit) / 10) return fail("integer overflow");
        value = value * 10 + digit;
        advance();
      }
      tokens.push_back(Token{TokenKind::kInteger, "", value, line, start_col});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      int start_col = column;
      std::size_t start = i;
      while (i < source.size() && ident_char(source[i])) advance();
      std::string text(source.substr(start, i - start));
      TokenKind kind;
      if (text == "_") kind = TokenKind::kWildcard;
      else if (std::isupper(static_cast<unsigned char>(text[0])) || text[0] == '_')
        kind = TokenKind::kVariable;
      else kind = TokenKind::kAtomIdent;
      tokens.push_back(Token{kind, std::move(text), 0, line, start_col});
      continue;
    }
    if (c == '"') {
      int start_col = column;
      advance();
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        char d = source[i];
        if (d == '"') {
          advance();
          closed = true;
          break;
        }
        if (d == '\\' && i + 1 < source.size()) {
          advance();
          text.push_back(source[i]);
          advance();
          continue;
        }
        if (d == '\n') return fail("newline in string literal");
        text.push_back(d);
        advance();
      }
      if (!closed) return fail("unterminated string literal");
      tokens.push_back(Token{TokenKind::kString, std::move(text), 0, line, start_col});
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen); advance(); continue;
      case ')': push(TokenKind::kRParen); advance(); continue;
      case ',': push(TokenKind::kComma); advance(); continue;
      case '.': push(TokenKind::kDot); advance(); continue;
      case '?': push(TokenKind::kQuestion); advance(); continue;
      case '+': push(TokenKind::kPlus); advance(); continue;
      case '*': push(TokenKind::kStar); advance(); continue;
      case '-': push(TokenKind::kMinus); advance(); continue;
      case ':':
        if (i + 1 < source.size() && source[i + 1] == '-') {
          push(TokenKind::kColonDash);
          advance(2);
          continue;
        }
        return fail("expected ':-'");
      case '\\':
        if (i + 1 < source.size() && source[i + 1] == '+') {
          push(TokenKind::kNegation);
          advance(2);
          continue;
        }
        return fail("expected '\\+'");
      case '<':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::kLe);
          advance(2);
        } else {
          push(TokenKind::kLt);
          advance();
        }
        continue;
      case '>':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::kGe);
          advance(2);
        } else {
          push(TokenKind::kGt);
          advance();
        }
        continue;
      case '=':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::kEq);
          advance(2);
        } else {
          push(TokenKind::kEq);
          advance();
        }
        continue;
      case '!':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::kNe);
          advance(2);
          continue;
        }
        return fail("expected '!='");
      default:
        return fail(std::string("unexpected character '") + c + "'");
    }
  }
  push(TokenKind::kEof);
  return tokens;
}

}  // namespace anchor::datalog
