// Bottom-up evaluation of stratified Datalog. The default strategy is
// semi-naive (delta-driven); a naive recompute-everything strategy is kept
// for the ablation benchmark (DESIGN.md §7) and as a differential-testing
// oracle: both strategies must produce identical models.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/database.hpp"
#include "datalog/stratify.hpp"
#include "util/result.hpp"

namespace anchor::datalog {

enum class Strategy { kSemiNaive, kNaive };

// Resource guard. Pure stratified Datalog always terminates (the property
// the paper picks the language for), but our dialect adds arithmetic, and
// `p(Y) :- p(X), Y = X + 1.` derives forever. The guard turns runaway
// programs into a clean truncation: evaluation stops, `truncated` is set,
// and the executor treats the GCC as failed (fail closed).
struct EvalLimits {
  std::uint64_t max_derived_tuples = 1'000'000;
  std::uint64_t max_iterations = 100'000;
};

struct EvalStats {
  std::uint64_t iterations = 0;         // fixpoint rounds across all strata
  std::uint64_t rule_applications = 0;  // rule body evaluations
  std::uint64_t derived_tuples = 0;     // new tuples added to the model
  // Mixed-type ordered comparisons and arithmetic over non-integers: the
  // literal fails either way (a GCC comparing a string timestamp against an
  // int rejects the chain), but silently — this counter is the diagnostic.
  std::uint64_t type_errors = 0;
  // Head terms that were not ground at emit time (reachable only through
  // hand-built ASTs that put wildcards in a rule head, which the safety
  // check cannot see). The tuple is NOT emitted and `errored` is set.
  std::uint64_t unbound_head_terms = 0;
  bool truncated = false;               // an EvalLimits bound was hit
  bool errored = false;                 // fail-closed: model is incomplete

  // Folds another evaluation's counters into this one (verdict aggregation).
  void accumulate(const EvalStats& other) {
    iterations += other.iterations;
    rule_applications += other.rule_applications;
    derived_tuples += other.derived_tuples;
    type_errors += other.type_errors;
    unbound_head_terms += other.unbound_head_terms;
    truncated = truncated || other.truncated;
    errored = errored || other.errored;
  }
};

// Body-ordering analysis shared by the interpreted Evaluator and the
// compiled pipeline (CompiledProgram::compile): which variables a literal
// mentions, and whether it is executable once `bound` holds.
void collect_literal_vars(const Literal& lit,
                          std::unordered_set<std::string>& out);
bool literal_ready(const Literal& lit,
                   const std::unordered_set<std::string>& bound);

class Evaluator {
 public:
  // Validates stratification and safety; fails on violation.
  static Result<Evaluator> create(const Program& program,
                                  Strategy strategy = Strategy::kSemiNaive,
                                  EvalLimits limits = {});

  // Computes the model: adds the program's facts and all derivable IDB
  // tuples into `db` (which may already hold EDB facts).
  EvalStats run(Database& db) const;

 private:
  // One body literal in execution order, with precomputed dispatch info.
  struct OrderedLiteral {
    Literal literal;
    bool recursive = false;  // positive atom whose predicate is in the same
                             // stratum as the rule head (semi-naive target)
  };

  struct CompiledRule {
    Atom head;
    std::vector<OrderedLiteral> body;  // reordered for executability
    int stratum = 0;
  };

  Evaluator() = default;

  Status compile(const Program& program);

  Strategy strategy_ = Strategy::kSemiNaive;
  EvalLimits limits_;
  Stratification strata_;
  std::vector<Clause> facts_;
  std::vector<CompiledRule> rules_;
};

}  // namespace anchor::datalog
