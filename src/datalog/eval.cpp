#include "datalog/eval.hpp"

#include <optional>
#include <unordered_set>

namespace anchor::datalog {

namespace {

// Environment: variable bindings during a rule-body join. Rule bodies are
// small (< 16 variables), so linear probing over a flat vector beats a hash
// map here.
class Env {
 public:
  const Value* lookup(const std::string& name) const {
    for (const auto& [var, value] : bindings_) {
      if (var == name) return &value;
    }
    return nullptr;
  }

  void bind(const std::string& name, Value value) {
    bindings_.emplace_back(name, std::move(value));
  }

  std::size_t mark() const { return bindings_.size(); }
  void rewind(std::size_t mark) { bindings_.resize(mark); }

 private:
  std::vector<std::pair<std::string, Value>> bindings_;
};

// Resolves a term under an environment; nullopt when the term is an unbound
// variable.
std::optional<Value> resolve(const Term& term, const Env& env) {
  if (term.is_const()) return term.constant;
  const Value* v = env.lookup(term.name);
  if (v == nullptr) return std::nullopt;
  return *v;
}

std::optional<Value> eval_expr(const Expr& expr, const Env& env,
                               EvalStats& stats) {
  std::optional<Value> lhs = resolve(expr.lhs, env);
  if (!lhs) return std::nullopt;
  if (expr.op == ArithOp::kNone) return lhs;
  std::optional<Value> rhs = resolve(expr.rhs, env);
  if (!rhs) return std::nullopt;
  if (!lhs->is_int() || !rhs->is_int()) {
    ++stats.type_errors;  // arith is int-only; both operands resolved
    return std::nullopt;
  }
  std::int64_t a = lhs->as_int();
  std::int64_t b = rhs->as_int();
  switch (expr.op) {
    case ArithOp::kAdd: return Value(a + b);
    case ArithOp::kSub: return Value(a - b);
    case ArithOp::kMul: return Value(a * b);
    case ArithOp::kNone: break;
  }
  return std::nullopt;
}

bool compare(CmpOp op, const Value& a, const Value& b, EvalStats& stats) {
  // Mixed-type comparisons: only equality semantics are defined (always
  // unequal); ordered comparisons on mixed types fail, and are counted so
  // a GCC comparing a string timestamp against an int is diagnosable.
  if (a.is_int() != b.is_int()) {
    if (op != CmpOp::kEq && op != CmpOp::kNe) ++stats.type_errors;
    return op == CmpOp::kNe;
  }
  auto ord = a <=> b;
  switch (op) {
    case CmpOp::kLt: return ord < 0;
    case CmpOp::kLe: return ord <= 0;
    case CmpOp::kGt: return ord > 0;
    case CmpOp::kGe: return ord >= 0;
    case CmpOp::kEq: return ord == 0;
    case CmpOp::kNe: return ord != 0;
  }
  return false;
}

// Attempts to unify atom args against a tuple, extending env. Returns false
// (env rewound by caller) on mismatch.
bool unify(const std::vector<Term>& args, const Tuple& tuple, Env& env) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const Term& term = args[i];
    if (term.is_const()) {
      if (!(term.constant == tuple[i])) return false;
    } else {
      const Value* bound = env.lookup(term.name);
      if (bound != nullptr) {
        if (!(*bound == tuple[i])) return false;
      } else {
        env.bind(term.name, tuple[i]);
      }
    }
  }
  return true;
}

void collect_term_vars(const Term& t, std::unordered_set<std::string>& out) {
  if (t.is_var()) out.insert(t.name);
}

}  // namespace

void collect_literal_vars(const Literal& lit,
                          std::unordered_set<std::string>& out) {
  if (lit.kind == Literal::Kind::kComparison) {
    collect_term_vars(lit.left.lhs, out);
    if (lit.left.op != ArithOp::kNone) collect_term_vars(lit.left.rhs, out);
    collect_term_vars(lit.right.lhs, out);
    if (lit.right.op != ArithOp::kNone) collect_term_vars(lit.right.rhs, out);
  } else {
    for (const auto& arg : lit.atom.args) collect_term_vars(arg, out);
  }
}

// Is this literal executable once `bound` holds? (see Evaluator::compile)
bool literal_ready(const Literal& lit,
                   const std::unordered_set<std::string>& bound) {
  std::unordered_set<std::string> vars;
  collect_literal_vars(lit, vars);
  switch (lit.kind) {
    case Literal::Kind::kAtom:
      return true;  // positive atoms generate bindings
    case Literal::Kind::kNegatedAtom: {
      for (const auto& v : vars) {
        if (!bound.contains(v)) return false;
      }
      return true;
    }
    case Literal::Kind::kComparison: {
      // Fully ground comparisons are ready. An `=` with exactly one free
      // simple-variable side is an assignment and also ready.
      std::size_t free = 0;
      for (const auto& v : vars) {
        if (!bound.contains(v)) ++free;
      }
      if (free == 0) return true;
      if (lit.cmp != CmpOp::kEq || free != 1) return false;
      auto side_assignable = [&](const Expr& side, const Expr& other) {
        if (side.op != ArithOp::kNone || !side.lhs.is_var() ||
            bound.contains(side.lhs.name)) {
          return false;
        }
        std::unordered_set<std::string> other_vars;
        collect_term_vars(other.lhs, other_vars);
        if (other.op != ArithOp::kNone) collect_term_vars(other.rhs, other_vars);
        for (const auto& v : other_vars) {
          if (!bound.contains(v)) return false;
        }
        return true;
      };
      return side_assignable(lit.left, lit.right) ||
             side_assignable(lit.right, lit.left);
    }
  }
  return false;
}

Result<Evaluator> Evaluator::create(const Program& program, Strategy strategy,
                                    EvalLimits limits) {
  Evaluator eval;
  eval.strategy_ = strategy;
  eval.limits_ = limits;
  auto strata = stratify(program);
  if (!strata) return err(strata.error());
  eval.strata_ = std::move(strata).take();
  if (Status s = check_safety(program); !s) return err(s.error());
  if (Status s = eval.compile(program); !s) return err(s.error());
  return eval;
}

Status Evaluator::compile(const Program& program) {
  for (const auto& clause : program.clauses) {
    if (clause.is_fact()) {
      facts_.push_back(clause);
      continue;
    }
    CompiledRule rule;
    rule.head = clause.head;
    rule.stratum =
        strata_.stratum(relation_key(clause.head.predicate, clause.head.arity()));

    // Greedy executable ordering: repeatedly take the first remaining
    // literal that is ready given the variables bound so far. The safety
    // check guarantees this terminates with all literals placed.
    std::vector<Literal> remaining = clause.body;
    std::unordered_set<std::string> bound;
    while (!remaining.empty()) {
      bool placed = false;
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (!literal_ready(remaining[i], bound)) continue;
        collect_literal_vars(remaining[i], bound);
        OrderedLiteral ol;
        ol.literal = std::move(remaining[i]);
        if (ol.literal.kind == Literal::Kind::kAtom) {
          std::string key =
              relation_key(ol.literal.atom.predicate, ol.literal.atom.arity());
          ol.recursive =
              strata_.stratum_of.contains(key) &&
              strata_.stratum(key) == rule.stratum;
        }
        rule.body.push_back(std::move(ol));
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(i));
        placed = true;
        break;
      }
      if (!placed) {
        return err("datalog: cannot order body of '" + clause.to_string() +
                   "' for execution");
      }
    }
    rules_.push_back(std::move(rule));
  }
  return {};
}

namespace {

// Per-stratum semi-naive state: the delta (tuples derived last round) for
// each same-stratum predicate.
using DeltaMap = std::unordered_map<std::string, std::vector<Tuple>>;

struct JoinContext {
  const Database* db;
  const DeltaMap* delta;         // non-null => literal `delta_index` reads delta
  int delta_index = -1;
  EvalStats* stats;
};

// Recursively joins body literals starting at `idx`, invoking `emit` with a
// complete environment for each satisfying assignment.
template <typename Emit>
void join_from(const std::vector<Literal>& body, std::size_t idx,
               const JoinContext& ctx, Env& env, const Emit& emit) {
  // Prompt abort: once a limit fires, the in-flight rule application must
  // stop joining instead of blowing past the bound (a single cross-product
  // rule could otherwise derive far more than max_derived_tuples before
  // the fixpoint loop's check runs).
  if (ctx.stats->truncated) return;
  if (idx == body.size()) {
    emit(env);
    return;
  }
  const Literal& lit = body[idx];
  switch (lit.kind) {
    case Literal::Kind::kAtom: {
      // Source of tuples: either the full relation or this round's delta.
      const bool use_delta =
          ctx.delta != nullptr && static_cast<int>(idx) == ctx.delta_index;
      // NOTE: emit() ultimately inserts into the database, which can grow —
      // and reallocate — the very relation being scanned (recursive rules).
      // Iteration is therefore by index, bounded by the pre-scan size, and
      // each candidate tuple is *copied* before recursing.
      auto try_tuple = [&](Tuple tuple) {
        if (tuple.size() != lit.atom.args.size()) return;
        std::size_t mark = env.mark();
        if (unify(lit.atom.args, tuple, env)) {
          join_from(body, idx + 1, ctx, env, emit);
        }
        env.rewind(mark);
      };
      if (use_delta) {
        auto it = ctx.delta->find(
            relation_key(lit.atom.predicate, lit.atom.arity()));
        if (it == ctx.delta->end()) return;
        const std::size_t count = it->second.size();
        for (std::size_t t = 0; t < count; ++t) try_tuple(it->second[t]);
        return;
      }
      const Relation* rel = ctx.db->find(lit.atom.predicate, lit.atom.arity());
      if (rel == nullptr) return;
      // First-argument index: if arg0 resolves to a constant, scan only the
      // matching bucket (copied: the bucket also grows during recursion).
      if (!lit.atom.args.empty()) {
        if (auto v0 = resolve(lit.atom.args[0], env)) {
          const auto* matches = rel->first_arg_matches(*v0);
          if (matches == nullptr) return;
          const std::vector<std::size_t> bucket = *matches;
          for (std::size_t t : bucket) try_tuple(rel->tuples()[t]);
          return;
        }
      }
      const std::size_t count = rel->tuples().size();
      for (std::size_t t = 0; t < count; ++t) try_tuple(rel->tuples()[t]);
      return;
    }
    case Literal::Kind::kNegatedAtom: {
      Tuple probe;
      probe.reserve(lit.atom.args.size());
      for (const auto& arg : lit.atom.args) {
        auto v = resolve(arg, env);
        if (!v) return;  // unreachable given safety, but fail closed
        probe.push_back(std::move(*v));
      }
      const Relation* rel = ctx.db->find(lit.atom.predicate, lit.atom.arity());
      if (rel != nullptr && rel->contains(probe)) return;
      join_from(body, idx + 1, ctx, env, emit);
      return;
    }
    case Literal::Kind::kComparison: {
      std::optional<Value> left = eval_expr(lit.left, env, *ctx.stats);
      std::optional<Value> right = eval_expr(lit.right, env, *ctx.stats);
      if (left && right) {
        if (compare(lit.cmp, *left, *right, *ctx.stats)) {
          join_from(body, idx + 1, ctx, env, emit);
        }
        return;
      }
      // Assignment form: exactly one side is an unbound simple variable.
      if (lit.cmp == CmpOp::kEq) {
        if (!left && right && lit.left.op == ArithOp::kNone &&
            lit.left.lhs.is_var()) {
          std::size_t mark = env.mark();
          env.bind(lit.left.lhs.name, *right);
          join_from(body, idx + 1, ctx, env, emit);
          env.rewind(mark);
          return;
        }
        if (!right && left && lit.right.op == ArithOp::kNone &&
            lit.right.lhs.is_var()) {
          std::size_t mark = env.mark();
          env.bind(lit.right.lhs.name, *left);
          join_from(body, idx + 1, ctx, env, emit);
          env.rewind(mark);
          return;
        }
      }
      return;  // not evaluable: fail closed
    }
  }
}

}  // namespace

EvalStats Evaluator::run(Database& db) const {
  EvalStats stats;

  for (const auto& fact : facts_) {
    Tuple tuple;
    tuple.reserve(fact.head.args.size());
    for (const auto& arg : fact.head.args) tuple.push_back(arg.constant);
    if (db.add(fact.head.predicate, std::move(tuple))) ++stats.derived_tuples;
  }

  // Evaluate strata bottom-up.
  for (int stratum = 0; stratum < strata_.num_strata; ++stratum) {
    std::vector<const CompiledRule*> active;
    for (const auto& rule : rules_) {
      if (rule.stratum == stratum) active.push_back(&rule);
    }
    if (active.empty()) continue;

    auto apply_rule = [&](const CompiledRule& rule, const DeltaMap* delta,
                          int delta_index, DeltaMap& out_delta) {
      ++stats.rule_applications;
      std::vector<Literal> body;
      body.reserve(rule.body.size());
      for (const auto& ol : rule.body) body.push_back(ol.literal);
      JoinContext ctx{&db, delta, delta_index, &stats};
      Env env;
      join_from(body, 0, ctx, env, [&](const Env& complete) {
        Tuple tuple;
        tuple.reserve(rule.head.args.size());
        for (const auto& arg : rule.head.args) {
          if (arg.is_const()) {
            tuple.push_back(arg.constant);
          } else {
            const Value* v = complete.lookup(arg.name);
            if (v == nullptr) {
              // Head term unground at emit time: reachable only via
              // hand-built ASTs with a wildcard/unbound variable in the
              // head, which check_safety cannot see (it skips non-var
              // terms). Fail closed instead of deriving a corrupt tuple.
              ++stats.unbound_head_terms;
              stats.errored = true;
              return;
            }
            tuple.push_back(*v);
          }
        }
        if (db.add(rule.head.predicate, tuple)) {
          ++stats.derived_tuples;
          if (stats.derived_tuples > limits_.max_derived_tuples) {
            stats.truncated = true;
          }
          out_delta[relation_key(rule.head.predicate, rule.head.arity())]
              .push_back(std::move(tuple));
        }
      });
    };

    if (strategy_ == Strategy::kNaive) {
      // Recompute all rules until no new tuples appear.
      for (;;) {
        if (stats.truncated || stats.iterations > limits_.max_iterations) {
          stats.truncated = true;
          break;
        }
        ++stats.iterations;
        DeltaMap fresh;
        for (const CompiledRule* rule : active) {
          apply_rule(*rule, nullptr, -1, fresh);
        }
        bool any = false;
        for (const auto& [k, v] : fresh) any |= !v.empty();
        if (!any) break;
      }
      continue;
    }

    // Semi-naive. Round 0: full evaluation.
    DeltaMap delta;
    ++stats.iterations;
    for (const CompiledRule* rule : active) {
      apply_rule(*rule, nullptr, -1, delta);
    }
    // Subsequent rounds: restrict one recursive literal to the delta.
    while (true) {
      if (stats.truncated || stats.iterations > limits_.max_iterations) {
        stats.truncated = true;
        break;
      }
      bool any = false;
      for (const auto& [k, v] : delta) any |= !v.empty();
      if (!any) break;
      ++stats.iterations;
      DeltaMap next_delta;
      for (const CompiledRule* rule : active) {
        for (std::size_t i = 0; i < rule->body.size(); ++i) {
          if (!rule->body[i].recursive) continue;
          apply_rule(*rule, &delta, static_cast<int>(i), next_delta);
        }
      }
      delta = std::move(next_delta);
    }
  }

  return stats;
}

}  // namespace anchor::datalog
