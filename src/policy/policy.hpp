// §3.1, third deployment option — "Complete validation redesign": "In
// Hammurabi, the entire TLS certificate validation algorithm is expressed
// as a Prolog program. A Hammurabi-enabled platform could perform the
// complete chain validation procedure ... The trust daemon could easily
// execute GCCs since it would already include a logic program engine."
//
// This module expresses the full validation algorithm as a *stratified
// Datalog* policy over the same fact vocabulary GCCs use, plus a handful of
// host-provided facts (current time, hostname decomposition, and
// signature-verified issuance edges — crypto stays outside the logic, as in
// Hammurabi). Chain construction itself happens in the logic via a
// depth-bounded recursive `up/3` relation.
//
// Datalog (no lists) cannot carry a path as a term, but it does not need
// to: the chain relation upOK(Leaf, Ancestor, Depth) checks every link *at
// its depth* (pathLen via a depth-indexed plenOkAt, name constraints and
// explicit distrust per certificate), so each derivation witnesses one
// concrete valid candidate path and `accept` holds iff some path survives
// — the same accept-if-any-path semantics as the procedural graph
// verifier, including under cross-signing. Explicit distrust is lifted to
// the logical-CA level with distrustedCA/1 facts covering every
// certificate that shares (subject DN, SPKI) with a distrusted one, so
// the cross-signing bane case is rejected here too
// (tests/policy_test.cpp differential-tests the two verifiers and pins
// the agreement, cross-signed cases included).
#pragma once

#include <string>

#include "chain/pool.hpp"
#include "chain/verifier.hpp"
#include "datalog/engine.hpp"
#include "rootstore/store.hpp"

namespace anchor::policy {

// The built-in validation policy (Datalog source). Derives
// `accept(LeafId)`; see the file-level comment for semantics.
const std::string& default_policy();

struct PolicyResult {
  bool ok = false;
  std::string leaf_id;
  datalog::EvalStats stats;
  std::size_t facts = 0;
};

class PolicyVerifier {
 public:
  // `policy_source` defaults to default_policy(). The store's trusted roots
  // become trustedRoot/1 facts; distrusted roots are simply absent.
  PolicyVerifier(const rootstore::RootStore& store,
                 const SignatureScheme& scheme,
                 std::string policy_source = default_policy());

  // Validates `leaf` against the pool, entirely inside the Datalog engine
  // (aside from signature verification, which feeds issuedBy/2 facts).
  PolicyResult verify(const x509::CertPtr& leaf,
                      const chain::CertificatePool& pool,
                      const chain::VerifyOptions& options) const;

 private:
  const rootstore::RootStore& store_;
  const SignatureScheme& scheme_;
  std::string policy_source_;
};

}  // namespace anchor::policy
