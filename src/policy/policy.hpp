// §3.1, third deployment option — "Complete validation redesign": "In
// Hammurabi, the entire TLS certificate validation algorithm is expressed
// as a Prolog program. A Hammurabi-enabled platform could perform the
// complete chain validation procedure ... The trust daemon could easily
// execute GCCs since it would already include a logic program engine."
//
// This module expresses the full validation algorithm as a *stratified
// Datalog* policy over the same fact vocabulary GCCs use, plus a handful of
// host-provided facts (current time, hostname decomposition, and
// signature-verified issuance edges — crypto stays outside the logic, as in
// Hammurabi). Chain construction itself happens in the logic via a
// depth-bounded recursive `up/3` relation.
//
// Datalog (no lists) cannot carry per-path state, so constraint checks
// (pathLen, name constraints) apply to every certificate reachable from the
// leaf rather than per candidate path. For tree-shaped issuance — one
// issuer per certificate, which covers the corpus and all incident
// scenarios — the policy is exact; under cross-signing it is conservative
// (rejects if ANY path is bad where the procedural verifier would try the
// next path). This is precisely the expressiveness gap that pushed
// Hammurabi to Prolog, reproduced here as a measurable artifact
// (tests/policy_test.cpp differential-tests the two verifiers and pins the
// divergence to the cross-signed case).
#pragma once

#include <string>

#include "chain/pool.hpp"
#include "chain/verifier.hpp"
#include "datalog/engine.hpp"
#include "rootstore/store.hpp"

namespace anchor::policy {

// The built-in validation policy (Datalog source). Derives
// `accept(LeafId)`; see the file-level comment for semantics.
const std::string& default_policy();

struct PolicyResult {
  bool ok = false;
  std::string leaf_id;
  datalog::EvalStats stats;
  std::size_t facts = 0;
};

class PolicyVerifier {
 public:
  // `policy_source` defaults to default_policy(). The store's trusted roots
  // become trustedRoot/1 facts; distrusted roots are simply absent.
  PolicyVerifier(const rootstore::RootStore& store,
                 const SignatureScheme& scheme,
                 std::string policy_source = default_policy());

  // Validates `leaf` against the pool, entirely inside the Datalog engine
  // (aside from signature verification, which feeds issuedBy/2 facts).
  PolicyResult verify(const x509::CertPtr& leaf,
                      const chain::CertificatePool& pool,
                      const chain::VerifyOptions& options) const;

 private:
  const rootstore::RootStore& store_;
  const SignatureScheme& scheme_;
  std::string policy_source_;
};

}  // namespace anchor::policy
