#include "policy/policy.hpp"

#include <unordered_set>

#include "core/facts.hpp"
#include "util/strings.hpp"

namespace anchor::policy {

const std::string& default_policy() {
  static const std::string kPolicy = R"(% anchor built-in validation policy.
% Host facts: now/1, hostname/1, hostnameParent/1, hostnameSuffix/1,
% usage/1, isLeaf/1, trustedRoot/1, distrustedCA/1, issuedBy/2 (signature
% already verified), plus the standard certificate facts (notBefore, san,
% isCA, ...).

% --- temporal validity ---
timeValid(C) :- notBefore(C, NB), notAfter(C, NA), now(T), NB <= T, T <= NA.

% --- hostname matching (exact SAN or single-label wildcard) ---
nameMatch(L) :- san(L, N), hostname(N).
nameMatch(L) :- sanWildcardBase(L, B), hostnameParent(B).
nameOK(L) :- hostname(H), nameMatch(L).
nameOK(L) :- isLeaf(L), \+anyHostname(L). % no hostname requested (S/MIME)
anyHostname(L) :- isLeaf(L), hostname(_).

% --- extended key usage vs requested usage ---
hasEKU(C) :- extendedKeyUsage(C, _).
ekuOK(L) :- isLeaf(L), \+hasEKU(L).   % absent EKU permits any usage
ekuOK(L) :- usage("TLS"), extendedKeyUsage(L, "id-kp-serverAuth").
ekuOK(L) :- usage("S/MIME"), extendedKeyUsage(L, "id-kp-emailProtection").

% --- CA fitness ---
hasKU(C) :- keyUsage(C, _).
kuCertSignOK(C) :- keyUsage(C, "keyCertSign").
kuCertSignOK(C) :- isCA(C), \+hasKU(C). % absent keyUsage permits signing
caOK(C) :- isCA(C), kuCertSignOK(C), timeValid(C).

% --- depth domain for the bounded recursion (max_depth = 8) ---
depthDom(1). depthDom(2). depthDom(3). depthDom(4).
depthDom(5). depthDom(6). depthDom(7). depthDom(8).

% --- pathLenConstraint, indexed by depth: a CA at depth D has D-1 CAs
% strictly below it (the leaf is not a CA), so it satisfies pathLen P
% iff D-1 <= P. Checking it *inside the link relation* (rather than as a
% global plenViolated/1 over every reachable cert) is what makes the
% policy path-sensitive: a CA that violates pathLen at depth 3 can still
% serve a different path at depth 2.
hasPathLen(C) :- pathLen(C, _).
plenOkAt(C, D) :- isCA(C), depthDom(D), \+hasPathLen(C).
plenOkAt(C, D) :- pathLen(C, P), depthDom(D), Dm = D - 1, Dm <= P.

% --- name constraints, applied to the requested hostname. The check is
% per-certificate (it constrains the hostname, not the path shape), so a
% violating CA merely fails its own links and alternate paths survive.
hasPermitted(C) :- permittedDNS(C, _).
permittedOK(C) :- permittedDNS(C, S), hostnameSuffix(S).
ncBad(C) :- hasPermitted(C), \+permittedOK(C), hostname(_).
ncBad(C) :- excludedDNS(C, S), hostnameSuffix(S).

% --- a link is usable at depth D iff the CA is fit, satisfies pathLen at
% that depth, passes name constraints, and is not explicitly distrusted.
% distrustedCA/1 is a host fact covering every certificate of a poisoned
% logical CA (same subject + SPKI as a distrusted cert), so a cross-sign
% cannot resurrect a distrusted root — the bane case, in the logic.
linkOK(C, D) :- caOK(C), plenOkAt(C, D), \+ncBad(C), \+distrustedCA(C).

% --- chain construction: upOK(Leaf, Ancestor, Depth). Every link is
% checked at its actual depth, so each derivation witnesses one concrete
% valid candidate path — accept-if-any-path, matching the procedural
% graph search.
upOK(L, I, 1) :- isLeaf(L), issuedBy(L, I), linkOK(I, 1).
upOK(L, J, D) :- upOK(L, I, D1), issuedBy(I, J), D1 < 8, D = D1 + 1,
                 linkOK(J, D).

% --- verdict ---
leafOK(L) :- isLeaf(L), timeValid(L), nameOK(L), ekuOK(L).
accept(L) :- leafOK(L), upOK(L, R, _), trustedRoot(R).
)";
  return kPolicy;
}

namespace {

using datalog::Tuple;
using datalog::Value;

// Hostname decomposition facts, mirroring what the GCC fact encoder does
// for SAN names (pure syntactic data — no policy smuggled in).
void emit_hostname_facts(const std::string& hostname,
                         datalog::Engine& engine, std::size_t& facts) {
  if (hostname.empty()) return;
  std::string host = to_lower(hostname);
  engine.add_fact("hostname", {Value(host)});
  ++facts;
  std::size_t dot = host.find('.');
  if (dot != std::string::npos) {
    engine.add_fact("hostnameParent", {Value(host.substr(dot + 1))});
    ++facts;
  }
  std::string_view rest = host;
  engine.add_fact("hostnameSuffix", {Value(host)});
  ++facts;
  while (true) {
    std::size_t d = rest.find('.');
    if (d == std::string_view::npos) break;
    rest = rest.substr(d + 1);
    engine.add_fact("hostnameSuffix", {Value(std::string(rest))});
    ++facts;
  }
}

// Wildcard SAN decomposition: "*.example.com" -> base "example.com".
void emit_wildcard_facts(const x509::Certificate& cert,
                         datalog::Engine& engine, std::size_t& facts) {
  if (!cert.subject_alt_name()) return;
  const std::string id = cert.fingerprint_hex();
  for (const auto& name : cert.subject_alt_name()->dns_names) {
    if (starts_with(name, "*.")) {
      engine.add_fact("sanWildcardBase",
                      {Value(id), Value(to_lower(name.substr(2)))});
      ++facts;
    }
  }
}

}  // namespace

PolicyVerifier::PolicyVerifier(const rootstore::RootStore& store,
                               const SignatureScheme& scheme,
                               std::string policy_source)
    : store_(store), scheme_(scheme), policy_source_(std::move(policy_source)) {}

PolicyResult PolicyVerifier::verify(const x509::CertPtr& leaf,
                                    const chain::CertificatePool& pool,
                                    const chain::VerifyOptions& options) const {
  PolicyResult result;
  result.leaf_id = leaf->fingerprint_hex();

  datalog::Engine engine;
  if (Status s = engine.load(policy_source_); !s) return result;

  // Gather the certificate universe: leaf + pool candidates (reached by
  // issuer-DN walking) + trusted roots.
  std::vector<x509::CertPtr> universe{leaf};
  std::unordered_set<std::string> seen{leaf->fingerprint_hex()};
  // Breadth-first over issuer DNs up to the depth bound.
  std::vector<x509::CertPtr> frontier{leaf};
  for (std::size_t depth = 0; depth < options.max_depth && !frontier.empty();
       ++depth) {
    std::vector<x509::CertPtr> next;
    for (const auto& cert : frontier) {
      for (const auto& candidate : pool.by_subject(cert->issuer())) {
        if (seen.insert(candidate->fingerprint_hex()).second) {
          universe.push_back(candidate);
          next.push_back(candidate);
        }
      }
    }
    frontier = std::move(next);
  }
  std::vector<x509::CertPtr> roots;
  for (const rootstore::RootEntry* entry : store_.trusted()) {
    roots.push_back(entry->cert);
    if (seen.insert(entry->cert->fingerprint_hex()).second) {
      universe.push_back(entry->cert);
    }
  }

  // Certificate facts.
  core::FactSet facts;
  for (const auto& cert : universe) {
    core::encode_certificate(*cert, facts);
  }
  facts.load_into(engine);
  result.facts = facts.size();
  for (const auto& cert : universe) {
    emit_wildcard_facts(*cert, engine, result.facts);
  }

  // Host facts.
  engine.add_fact("now", {Value(options.time)});
  engine.add_fact("usage",
                  {Value(std::string(chain::usage_name(options.usage)))});
  engine.add_fact("isLeaf", {Value(result.leaf_id)});
  result.facts += 3;
  emit_hostname_facts(options.hostname, engine, result.facts);
  for (const auto& root : roots) {
    engine.add_fact("trustedRoot", {Value(root->fingerprint_hex())});
    ++result.facts;
  }

  // Explicit distrust, lifted to the logical-CA level: every certificate
  // sharing (subject DN, SPKI) with a store-distrusted certificate gets a
  // distrustedCA fact — the same poisoned-node rule the graph verifier
  // applies, so a cross-sign cannot resurrect a distrusted root here
  // either. The impossible "-" fact keeps the predicate total for the
  // \+distrustedCA negation when nothing is distrusted (same construction
  // as revocation_gcc).
  engine.add_fact("distrustedCA", {Value(std::string("-"))});
  ++result.facts;
  std::unordered_set<std::string> poisoned_groups;
  const auto group_key = [](const x509::Certificate& cert) {
    return cert.subject().to_string() + "|" +
           to_hex(BytesView(cert.public_key()));
  };
  for (const auto& cert : universe) {
    if (store_.state_of(cert->fingerprint_hex()) ==
        rootstore::TrustState::kDistrusted) {
      poisoned_groups.insert(group_key(*cert));
    }
  }
  if (!poisoned_groups.empty()) {
    for (const auto& cert : universe) {
      if (poisoned_groups.count(group_key(*cert)) != 0) {
        engine.add_fact("distrustedCA", {Value(cert->fingerprint_hex())});
        ++result.facts;
      }
    }
  }

  // Signature-verified issuance edges (crypto outside the logic, as in
  // Hammurabi). Quadratic over the (small) universe, pruned by DN match.
  for (const auto& child : universe) {
    for (const auto& issuer : universe) {
      if (child->fingerprint() == issuer->fingerprint()) continue;
      if (!(issuer->subject() == child->issuer())) continue;
      if (options.check_signatures &&
          !scheme_.verify(BytesView(issuer->public_key()),
                          BytesView(child->tbs_der()),
                          BytesView(child->signature()))) {
        continue;
      }
      engine.add_fact("issuedBy", {Value(child->fingerprint_hex()),
                                   Value(issuer->fingerprint_hex())});
      ++result.facts;
    }
  }

  datalog::Atom goal;
  goal.predicate = "accept";
  goal.args.push_back(datalog::Term::constant_of(Value(result.leaf_id)));
  auto answer = engine.query(goal);
  result.stats = engine.stats();
  result.ok = answer.ok() && answer.value().holds();
  return result;
}

}  // namespace anchor::policy
