#include "net/transport.hpp"

namespace anchor::net {

Bytes encode_frame(const Message& message) {
  Bytes out;
  out.reserve(5 + message.payload.size());
  out.push_back(static_cast<std::uint8_t>(message.type));
  std::uint32_t length = static_cast<std::uint32_t>(message.payload.size());
  for (int i = 3; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
  }
  append(out, BytesView(message.payload));
  return out;
}

Result<FrameView> decode_frame_view(BytesView buffer) {
  FrameView result;
  if (buffer.size() < 5) return result;  // need more bytes
  std::uint8_t type = buffer[0];
  if (type < static_cast<std::uint8_t>(MsgType::kClientHello) ||
      type > static_cast<std::uint8_t>(MsgType::kResponse)) {
    return err("net: unknown frame type " + std::to_string(type));
  }
  std::uint32_t length = 0;
  for (int i = 1; i <= 4; ++i) length = length << 8 | buffer[static_cast<std::size_t>(i)];
  if (length > kMaxFrameBytes) {
    return err("net: frame length " + std::to_string(length) + " exceeds cap");
  }
  if (buffer.size() < 5 + static_cast<std::size_t>(length)) return result;
  result.complete = true;
  result.type = static_cast<MsgType>(type);
  result.payload = buffer.subspan(5, length);
  result.consumed = 5 + static_cast<std::size_t>(length);
  return result;
}

Result<DecodeResult> decode_frame(Bytes& buffer) {
  auto view = decode_frame_view(BytesView(buffer));
  if (!view) return err(view.error());
  DecodeResult result;
  if (!view.value().complete) return result;
  result.complete = true;
  result.message.type = view.value().type;
  result.message.payload.assign(view.value().payload.begin(),
                                view.value().payload.end());
  buffer.erase(buffer.begin(),
               buffer.begin() + static_cast<std::ptrdiff_t>(view.value().consumed));
  return result;
}

DuplexChannel::DuplexChannel() {
  auto to_server = std::make_shared<std::deque<Bytes>>();
  auto to_client = std::make_shared<std::deque<Bytes>>();
  client_.inbox_ = to_client;
  client_.outbox_ = to_server;
  server_.inbox_ = to_server;
  server_.outbox_ = to_client;
}

void DuplexChannel::Endpoint::send(const Message& message) {
  outbox_->push_back(encode_frame(message));
}

Result<Message> DuplexChannel::Endpoint::receive() {
  if (inbox_->empty()) return err("net: no pending message");
  Bytes frame = std::move(inbox_->front());
  inbox_->pop_front();
  auto decoded = decode_frame(frame);
  if (!decoded) return err(decoded.error());
  if (!decoded.value().complete) return err("net: truncated frame on channel");
  if (!frame.empty()) return err("net: trailing bytes after frame");
  return decoded.value().message;
}

Bytes encode_certificate_list(const std::vector<Bytes>& ders) {
  Bytes out;
  for (const Bytes& der : ders) {
    std::uint32_t length = static_cast<std::uint32_t>(der.size());
    for (int i = 3; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
    }
    append(out, BytesView(der));
  }
  return out;
}

Result<std::vector<Bytes>> decode_certificate_list(BytesView payload) {
  std::vector<Bytes> out;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    if (pos + 4 > payload.size()) return err("net: truncated cert length");
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i) length = length << 8 | payload[pos + static_cast<std::size_t>(i)];
    pos += 4;
    if (length == 0 || pos + length > payload.size()) {
      return err("net: truncated certificate entry");
    }
    out.emplace_back(payload.begin() + static_cast<std::ptrdiff_t>(pos),
                     payload.begin() + static_cast<std::ptrdiff_t>(pos + length));
    pos += length;
  }
  if (out.empty()) return err("net: empty certificate list");
  return out;
}

}  // namespace anchor::net
