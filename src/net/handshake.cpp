#include "net/handshake.hpp"

#include "util/strings.hpp"

namespace anchor::net {

namespace {

// The transcript binds the Finished signature to this handshake: a hash
// over the ClientHello, ServerHello and Certificate payloads in order.
class Transcript {
 public:
  void add(const Message& message) {
    const std::uint8_t type = static_cast<std::uint8_t>(message.type);
    hasher_.update(BytesView(&type, 1));
    hasher_.update(BytesView(message.payload));
  }
  Bytes digest() {
    Sha256::Digest d = hasher_.finish();
    return Bytes(d.begin(), d.end());
  }

 private:
  Sha256 hasher_;
};

Message client_hello(const chain::VerifyOptions& options) {
  Message hello;
  hello.type = MsgType::kClientHello;
  std::string body = options.hostname + "\n" +
                     chain::usage_name(options.usage);
  hello.payload = to_bytes(body);
  return hello;
}

}  // namespace

Status TlsLikeServer::respond(DuplexChannel::Endpoint& endpoint) const {
  auto hello = endpoint.receive();
  if (!hello) return err(hello.error());
  if (hello.value().type != MsgType::kClientHello) {
    return err("server: expected ClientHello");
  }

  Transcript transcript;
  transcript.add(hello.value());

  Message server_hello;
  server_hello.type = MsgType::kServerHello;
  transcript.add(server_hello);
  endpoint.send(server_hello);

  Message certificate;
  certificate.type = MsgType::kCertificate;
  std::vector<Bytes> ders;
  ders.reserve(identity_.chain.size());
  for (const auto& cert : identity_.chain) ders.push_back(cert->der());
  certificate.payload = encode_certificate_list(ders);
  transcript.add(certificate);
  endpoint.send(certificate);

  Message finished;
  finished.type = MsgType::kFinished;
  finished.payload = SimSig::sign(identity_.leaf_key,
                                  BytesView(transcript.digest()));
  endpoint.send(finished);
  return {};
}

void TlsLikeClient::send_hello(DuplexChannel::Endpoint& endpoint,
                               const chain::VerifyOptions& options) const {
  endpoint.send(client_hello(options));
}

HandshakeResult TlsLikeClient::complete(
    DuplexChannel::Endpoint& endpoint,
    const chain::VerifyOptions& options) const {
  HandshakeResult result;
  auto fail = [&](std::string why) {
    result.error = std::move(why);
    Message alert;
    alert.type = MsgType::kAlert;
    alert.payload = to_bytes(result.error);
    endpoint.send(alert);
    result.alert_sent = result.error;
    return result;
  };

  Transcript transcript;
  transcript.add(client_hello(options));

  auto server_hello = endpoint.receive();
  if (!server_hello || server_hello.value().type != MsgType::kServerHello) {
    return fail("handshake: expected ServerHello");
  }
  transcript.add(server_hello.value());

  auto certificate = endpoint.receive();
  if (!certificate || certificate.value().type != MsgType::kCertificate) {
    return fail("handshake: expected Certificate");
  }
  transcript.add(certificate.value());

  auto finished = endpoint.receive();
  if (!finished || finished.value().type != MsgType::kFinished) {
    return fail("handshake: expected Finished");
  }

  // Parse the presented chain: leaf first, rest feed the candidate pool.
  auto ders = decode_certificate_list(BytesView(certificate.value().payload));
  if (!ders) return fail(ders.error());
  auto leaf = x509::Certificate::parse(BytesView(ders.value()[0]));
  if (!leaf) return fail("handshake: bad leaf: " + leaf.error());
  chain::CertificatePool pool;
  for (std::size_t i = 1; i < ders.value().size(); ++i) {
    auto cert = x509::Certificate::parse(BytesView(ders.value()[i]));
    if (!cert) return fail("handshake: bad intermediate: " + cert.error());
    pool.add(std::move(cert).take());
  }

  // Path validation — root store, metadata, GCCs, the works.
  chain::VerifyResult verdict = verifier_.verify(leaf.value(), pool, options);
  if (!verdict.ok) {
    std::string why = verdict.error;
    if (!verdict.rejected_paths.empty()) {
      why += " [" + chain::to_string(verdict.rejected_paths.front()) + "]";
    }
    return fail("handshake: certificate verify failed: " + why);
  }

  // Proof of possession: the Finished signature must verify under the
  // leaf's public key over this handshake's transcript.
  if (!registry_.verify(BytesView(leaf.value()->public_key()),
                        BytesView(transcript.digest()),
                        BytesView(finished.value().payload))) {
    return fail("handshake: Finished signature invalid (no key possession)");
  }

  result.ok = true;
  result.verified_chain = std::move(verdict.chain);
  return result;
}

HandshakeResult handshake(const TlsLikeClient& client,
                          const TlsLikeServer& server,
                          const chain::VerifyOptions& options) {
  DuplexChannel channel;
  client.send_hello(channel.client(), options);
  if (Status s = server.respond(channel.server()); !s) {
    HandshakeResult result;
    result.error = s.error();
    return result;
  }
  return client.complete(channel.client(), options);
}

}  // namespace anchor::net
