// A TLS-shaped handshake over the in-memory transport — the deployment
// surface the paper opens with ("Before finalizing a TLS connection to a
// given server, user-agents (e.g., browsers and TLS libraries) validate
// the server's X.509 certificate chain"). Not TLS: no encryption, no key
// exchange — exactly the certificate-path part, so GCC-bearing root stores
// can be exercised end to end:
//
//   client                          server
//   ClientHello{server_name,usage} →
//                                  ← ServerHello{}
//                                  ← Certificate{leaf, intermediates...}
//                                  ← Finished{Sig(leaf key, transcript)}
//   verdict: chain verification (ChainVerifier, GCCs and all) +
//            proof-of-possession (the Finished signature binds the leaf's
//            private key to this handshake's transcript).
#pragma once

#include <string>
#include <vector>

#include "chain/verifier.hpp"
#include "net/transport.hpp"
#include "util/sha256.hpp"

namespace anchor::net {

struct ServerIdentity {
  std::vector<x509::CertPtr> chain;  // leaf first; root optional
  SimKeyPair leaf_key;               // signs the Finished message
};

struct HandshakeResult {
  bool ok = false;
  std::string error;
  core::Chain verified_chain;     // client side, when ok
  std::string alert_sent;         // server-observable failure reason
};

// Drives the server side of one handshake on `endpoint`. Returns what the
// server observed (an alert from the client, or clean completion).
class TlsLikeServer {
 public:
  explicit TlsLikeServer(ServerIdentity identity)
      : identity_(std::move(identity)) {}

  // Processes one ClientHello (must already be queued) and emits the
  // response flight.
  Status respond(DuplexChannel::Endpoint& endpoint) const;

 private:
  ServerIdentity identity_;
};

class TlsLikeClient {
 public:
  // The verifier embodies the user-agent's root store + GCCs; `registry`
  // must know the server keys (SimSig stands in for real signatures, see
  // DESIGN.md §5).
  TlsLikeClient(const chain::ChainVerifier& verifier, const SimSig& registry)
      : verifier_(verifier), registry_(registry) {}

  // The channel is synchronous, so the client side is two phases with the
  // server's respond() pumped in between (handshake() orchestrates this):
  //   send_hello()  →  server.respond()  →  complete()
  void send_hello(DuplexChannel::Endpoint& endpoint,
                  const chain::VerifyOptions& options) const;
  HandshakeResult complete(DuplexChannel::Endpoint& endpoint,
                           const chain::VerifyOptions& options) const;

 private:
  const chain::ChainVerifier& verifier_;
  const SimSig& registry_;
};

// Convenience: one complete handshake on a fresh channel.
HandshakeResult handshake(const TlsLikeClient& client,
                          const TlsLikeServer& server,
                          const chain::VerifyOptions& options);

}  // namespace anchor::net
