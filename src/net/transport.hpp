// In-memory network substrate for the handshake layer: a duplex channel of
// framed messages. Deliberately minimal — ordered, reliable, synchronous —
// because what the paper cares about happens *above* the transport: which
// certificate chains a user-agent accepts.
//
// Wire format per message: 1-byte type, 4-byte big-endian payload length,
// payload. The codec is strict (unknown types and truncated frames are
// errors) and bounded (oversized frames rejected), so the handshake tests
// double as frame-parsing negative tests.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace anchor::net {

enum class MsgType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kCertificate = 3,   // payload: concatenated length-prefixed DER certs
  kFinished = 4,      // payload: signature over the transcript hash
  kAlert = 5,         // payload: UTF-8 reason
  kRequest = 6,       // payload: anchord::Request (anchord/wire.hpp)
  kResponse = 7,      // payload: anchord::Response (anchord/wire.hpp)
};

struct Message {
  MsgType type = MsgType::kAlert;
  Bytes payload;
};

// Frame codec.
constexpr std::size_t kMaxFrameBytes = 1 << 20;

Bytes encode_frame(const Message& message);

// Consumes one frame from the front of `buffer` (erasing it) if complete.
//
// Contract (anchord's session loop depends on every clause):
//   * ok with complete=true  — exactly one frame was decoded and erased
//     from the front of `buffer`; any following frames' bytes remain.
//   * ok with complete=false — "need more bytes": fewer than 5 header
//     bytes, or the declared payload has not fully arrived. `buffer` is
//     left untouched; append more bytes and call again. This is NOT an
//     error — a valid frame can decode to an empty payload (e.g. kAlert
//     with no reason), so completeness is signalled by the bool, never by
//     inspecting the message.
//   * err(...) — malformed input: unknown type byte, or declared length
//     exceeding kMaxFrameBytes (a length of exactly kMaxFrameBytes is
//     accepted). `buffer` is left untouched so the caller can decide
//     whether to resynchronise or tear down; no bytes are consumed on any
//     error path.
struct DecodeResult {
  bool complete = false;  // false: need more bytes, buffer untouched
  Message message;
};
Result<DecodeResult> decode_frame(Bytes& buffer);

// Zero-copy variant for event-driven session loops: decodes one frame at
// the front of `buffer` without materializing the payload. On success with
// complete=true, `payload` is a view into `buffer` (valid only until the
// caller mutates the buffer) and `consumed` is the frame's full wire size
// (5 + payload length) — the caller erases consumed bytes itself, which
// lets it batch one erase across a whole pipelined burst instead of one
// per frame. Error and need-more-bytes semantics are identical to
// decode_frame: nothing is consumed on either.
struct FrameView {
  bool complete = false;      // false: need more bytes
  MsgType type = MsgType::kAlert;
  BytesView payload;          // borrowed from the caller's buffer
  std::size_t consumed = 0;   // 5 + payload.size() when complete
};
Result<FrameView> decode_frame_view(BytesView buffer);

// A bidirectional in-memory pipe with two endpoints.
class DuplexChannel {
 public:
  class Endpoint {
   public:
    void send(const Message& message);
    // Receives the next queued message; err if the peer queue is empty
    // (synchronous simulation: the caller drives scheduling).
    Result<Message> receive();
    bool has_pending() const { return !inbox_->empty(); }

   private:
    friend class DuplexChannel;
    std::shared_ptr<std::deque<Bytes>> inbox_;
    std::shared_ptr<std::deque<Bytes>> outbox_;
  };

  DuplexChannel();
  Endpoint& client() { return client_; }
  Endpoint& server() { return server_; }

 private:
  Endpoint client_;
  Endpoint server_;
};

// Certificate-list payload helpers: each certificate is a 4-byte length
// followed by DER, leaf first (mirroring TLS Certificate messages).
Bytes encode_certificate_list(const std::vector<Bytes>& ders);
Result<std::vector<Bytes>> decode_certificate_list(BytesView payload);

}  // namespace anchor::net
