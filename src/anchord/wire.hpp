// The anchord wire schema: one request/response shape shared by every verb
// surface (DESIGN.md "anchord wire protocol & unified verb schema").
//
// A Request or Response travels as the payload of a net::Message frame
// (type kRequest / kResponse — the same strict, length-bounded codec the
// handshake layer uses), so anchord inherits transport framing for free
// and adds only the verb schema:
//
//   Request  := u64 correlation_id, u8 verb, str usage, i64 time,
//               u32 max_depth, u8 flags, str hostname, blob leaf_der,
//               list intermediates_der
//   Response := u64 correlation_id, u8 verb, u8 error_kind, u8 ok,
//               stats{u32 chain_len, u64 paths_explored,
//                     u64 gccs_evaluated, u64 facts_encoded, u64 epoch},
//               str detail, list chain_der
//
// where str/blob = u32 big-endian length + bytes, list = u32 count of
// blobs, and all integers are big-endian. Decoding is strict: unknown verb
// or error-kind bytes, truncated fields, and trailing bytes after the last
// field are all errors — a malformed payload never half-parses.
//
// Correlation ids make the protocol pipelined: a client may have any
// number of requests outstanding on one connection, and the server may
// answer them in any order; responses are matched by id, never by arrival
// position.
//
// ResponseStats is deliberately deterministic — no timings, only counts
// and the store epoch — so a wire response is byte-identical to what the
// direct VerifyService path would produce for the same request (the
// acceptance test for this layer). Latency lives in metrics histograms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/error.hpp"
#include "net/transport.hpp"
#include "rsf/feed.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace anchor::anchord {

enum class Verb : std::uint8_t {
  kVerify = 1,        // full chain construction + validation (§3.1 option 3)
  kEvaluateGccs = 2,  // caller-built chain, daemon runs GCCs (option 2)
  kMetrics = 3,       // registry text exposition as the response detail
  kFeedStatus = 4,    // RSF client liveness summary as the response detail
  kVerifyBatch = 5,   // N verify chains in one frame, one interning arena
  kFeedFetch = 6,     // Merkle tree head + proofs + snapshot range (RSF)
};

const char* to_string(Verb verb);

// One chain of a kVerifyBatch request. Batch entries share the request's
// intermediates_der pool, usage, time, and option flags; only the leaf and
// its hostname vary per entry.
struct BatchEntry {
  std::string hostname;
  Bytes leaf_der;

  bool operator==(const BatchEntry&) const = default;
};

struct Request {
  std::uint64_t correlation_id = 0;
  Verb verb = Verb::kVerify;
  // "TLS" / "S/MIME" for kVerify; free-form usage token for kEvaluateGccs
  // (it flows into Datalog facts); ignored by the observability verbs.
  std::string usage;
  std::int64_t time = 0;           // validation instant (Unix seconds)
  std::uint32_t max_depth = 8;
  bool require_ev = false;
  bool check_signatures = true;
  bool run_gccs = true;
  std::string hostname;
  Bytes leaf_der;                  // kEvaluateGccs: first chain element
  std::vector<Bytes> intermediates_der;
  // kVerifyBatch only: the chains to verify. Encoded after the fields
  // above (u32 count, then each entry as str hostname + blob leaf_der), so
  // the byte layout of every other verb is exactly what it was before the
  // batch verb existed.
  std::vector<BatchEntry> batch;
  // kFeedFetch only, same trailing-section rule as `batch`: the poller's
  // feed-fetch query, encoded as u64 from_size, u64 to_size,
  // u32 max_snapshots, u64 max_bytes, u8 flags (bit 0: want_deltas).
  rsf::FeedFetchQuery feed_query;

  bool operator==(const Request&) const = default;
};

// Deterministic per-request accounting; see the header comment for why no
// timings live here.
struct ResponseStats {
  std::uint32_t chain_len = 0;       // accepted path length (0 on failure)
  std::uint64_t paths_explored = 0;
  std::uint64_t gccs_evaluated = 0;
  std::uint64_t facts_encoded = 0;
  std::uint64_t epoch = 0;           // store epoch the verdict was computed under

  bool operator==(const ResponseStats&) const = default;
};

// One verdict of a kVerifyBatch response, index-aligned with the request's
// batch entries. Same determinism rule as ResponseStats: counts only.
struct BatchVerdict {
  chain::ErrorKind kind = chain::ErrorKind::kOk;
  bool ok = false;
  std::uint32_t chain_len = 0;
  std::uint64_t paths_explored = 0;
  std::uint64_t gccs_evaluated = 0;
  std::uint64_t facts_encoded = 0;
  std::string detail;

  bool operator==(const BatchVerdict&) const = default;
};

struct Response {
  std::uint64_t correlation_id = 0;
  Verb verb = Verb::kVerify;
  chain::ErrorKind kind = chain::ErrorKind::kOk;
  bool ok = false;                 // kVerifyBatch: every entry verified ok
  ResponseStats stats;             // kVerifyBatch: counters summed over items
  std::string detail;              // diagnostic / exposition / status text
  std::vector<Bytes> chain_der;    // kVerify: accepted path DER, leaf-first
  // kVerifyBatch only: per-entry verdicts, encoded after chain_der as
  // u32 count + entries (u8 kind, u8 ok, u32 chain_len, u64 paths_explored,
  // u64 gccs_evaluated, u64 facts_encoded, str detail). Other verbs keep
  // their original byte layout.
  std::vector<BatchVerdict> batch;
  // kFeedFetch only, same trailing-section rule: signed tree head (u64
  // tree_size, 32 raw root bytes, i64 published_at, blob signature), the
  // consistency and inclusion proofs (u32 count + 32 raw bytes per node),
  // the snapshot range (u32 count + per snapshot: u64 sequence, i64
  // published_at, str annotation, str payload, str payload_hash,
  // str prev_hash, blob signature), and the delta list (u32 count + str).
  rsf::FeedFetch feed;

  bool operator==(const Response&) const = default;
};

// Encoders produce a framed-codec message (type kRequest / kResponse).
net::Message encode_request(const Request& request);
net::Message encode_response(const Response& response);

// Strict decoders; err() on wrong frame type, malformed fields, unknown
// verb/error-kind bytes, or trailing payload bytes. The BytesView overloads
// decode straight out of a session read buffer (the reactor's zero-copy
// path); the Message overloads wrap them.
Result<Request> decode_request(net::MsgType type, BytesView payload);
Result<Request> decode_request(const net::Message& message);
Result<Response> decode_response(net::MsgType type, BytesView payload);
Result<Response> decode_response(const net::Message& message);

// Best-effort correlation-id peek at a payload that failed full decoding,
// so a kMalformedRequest response can still be matched by the client.
// Returns 0 when even the id field is truncated.
std::uint64_t peek_correlation_id(BytesView payload);

}  // namespace anchor::anchord
