#include "anchord/client.hpp"

#include <chrono>

#include "net/transport.hpp"

namespace anchor::anchord {

AnchordClient::AnchordClient(Conduit& conduit, int timeout_ms)
    : conduit_(conduit), timeout_ms_(timeout_ms) {}

Result<std::uint64_t> AnchordClient::send(Request request) {
  request.correlation_id = next_id_++;
  const Bytes frame = net::encode_frame(encode_request(request));
  if (!conduit_.write(BytesView(frame))) {
    return err("anchord: connection closed while sending");
  }
  return request.correlation_id;
}

Result<Response> AnchordClient::receive(std::uint64_t correlation_id) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms_);
  for (;;) {
    auto it = pending_.find(correlation_id);
    if (it != pending_.end()) {
      Response response = std::move(it->second);
      pending_.erase(it);
      return response;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return err("anchord: timed out waiting for response " +
                 std::to_string(correlation_id));
    }
    Status pumped = pump();
    if (!pumped) return err(pumped.error());
  }
}

Result<Response> AnchordClient::call(Request request) {
  auto id = send(std::move(request));
  if (!id) return err(id.error());
  return receive(id.value());
}

Status AnchordClient::pump() {
  // Decode whatever is already buffered first; read only when starved.
  for (;;) {
    auto decoded = net::decode_frame(buffer_);
    if (!decoded) {
      // The server never sends malformed frames; a decode error here means
      // the stream is unrecoverable for this client.
      return err("anchord: broken response stream: " + decoded.error());
    }
    if (!decoded.value().complete) break;
    net::Message message = std::move(decoded.value().message);
    if (message.type == net::MsgType::kAlert) {
      ++alerts_;
      last_alert_ = anchor::to_string(BytesView(message.payload));
      continue;
    }
    auto response = decode_response(message);
    if (!response) {
      return err("anchord: undecodable response: " + response.error());
    }
    Response r = std::move(response).take();
    pending_[r.correlation_id] = std::move(r);
    return Status::ok_status();
  }
  const int n = conduit_.read_some(buffer_, 4096, timeout_ms_);
  if (n < 0) return err("anchord: connection closed");
  return Status::ok_status();  // n == 0 is a timeout tick; caller re-checks
}

}  // namespace anchor::anchord
