// Verb execution for anchord. One dispatcher instance is the single
// place where a decoded wire Request turns into backend calls — the
// session server, the in-process TrustDaemon adapter, and anchorctl's
// client verbs all converge here, which is what makes "byte-identical
// verdicts between the wire path and the direct VerifyService path" a
// testable property instead of an aspiration.
#pragma once

#include <string>

#include "anchord/wire.hpp"
#include "chain/service.hpp"
#include "rsf/client.hpp"
#include "util/metrics.hpp"

namespace anchor::anchord {

class VerbDispatcher {
 public:
  struct Backends {
    chain::VerifyService* service = nullptr;         // required
    // Refreshed into the registry before a kMetrics exposition so a scrape
    // always reflects the store currently being served. Optional. Any
    // StoreReader works — a live RootStore or an mmap-backed StoreView.
    const rootstore::StoreReader* store = nullptr;
    rsf::RsfClient* feed = nullptr;                  // kFeedStatus; optional
    // kFeedFetch: the feed this daemon publishes (or re-serves) to
    // downstream pollers. Optional; Feed is internally synchronized, so
    // concurrent dispatches and a concurrent publisher are safe.
    const rsf::Feed* feed_source = nullptr;
    metrics::Registry* registry = nullptr;           // default: global()
  };

  explicit VerbDispatcher(Backends backends);

  // Executes one request and always produces a response (errors are
  // classified into ErrorKind, never thrown). Thread-safe: the backends
  // are (VerifyService serves concurrent callers; the registry locks
  // registration). `registry_override` lets TrustDaemon::metrics keep its
  // per-call registry parameter; everything else uses the backend one.
  Response dispatch(const Request& request,
                    metrics::Registry* registry_override = nullptr);

 private:
  Response do_verify(const Request& request);
  Response do_verify_batch(const Request& request);
  Response do_evaluate_gccs(const Request& request);
  Response do_metrics(const Request& request, metrics::Registry& registry);
  Response do_feed_status(const Request& request);
  Response do_feed_fetch(const Request& request);

  Backends backends_;
};

}  // namespace anchor::anchord
