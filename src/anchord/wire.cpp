#include "anchord/wire.hpp"

#include <algorithm>

namespace anchor::anchord {

namespace {

// --- encoding -------------------------------------------------------------

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(Bytes& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_str(Bytes& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_blob(Bytes& out, const Bytes& b) {
  put_u32(out, static_cast<std::uint32_t>(b.size()));
  append(out, BytesView(b));
}

void put_list(Bytes& out, const std::vector<Bytes>& items) {
  put_u32(out, static_cast<std::uint32_t>(items.size()));
  for (const Bytes& item : items) put_blob(out, item);
}

void put_hash(Bytes& out, const ctlog::Hash& hash) {
  out.insert(out.end(), hash.begin(), hash.end());
}

void put_hashes(Bytes& out, const std::vector<ctlog::Hash>& hashes) {
  put_u32(out, static_cast<std::uint32_t>(hashes.size()));
  for (const ctlog::Hash& hash : hashes) put_hash(out, hash);
}

void put_feed_fetch(Bytes& out, const rsf::FeedFetch& feed) {
  put_u64(out, feed.sth.tree_size);
  put_hash(out, feed.sth.root_hash);
  put_i64(out, feed.sth.published_at);
  put_blob(out, feed.sth.signature);
  put_hashes(out, feed.consistency);
  put_hashes(out, feed.inclusion);
  put_u32(out, static_cast<std::uint32_t>(feed.snapshots.size()));
  for (const rsf::Snapshot& snap : feed.snapshots) {
    put_u64(out, snap.sequence);
    put_i64(out, snap.published_at);
    put_str(out, snap.annotation);
    put_str(out, snap.payload);
    put_str(out, snap.payload_hash);
    put_str(out, snap.prev_hash);
    put_blob(out, snap.signature);
  }
  put_u32(out, static_cast<std::uint32_t>(feed.deltas.size()));
  for (const std::string& delta : feed.deltas) put_str(out, delta);
}

// --- decoding -------------------------------------------------------------

// Forward-only cursor over a payload. Every get_* fails sticky: once
// `failed` is set nothing more is consumed and the caller reports one
// error for the whole payload.
struct Cursor {
  BytesView data;
  std::size_t pos = 0;
  bool failed = false;

  bool take(std::size_t n) {
    if (failed || data.size() - pos < n) {
      failed = true;
      return false;
    }
    return true;
  }

  std::uint8_t get_u8() {
    if (!take(1)) return 0;
    return data[pos++];
  }

  std::uint32_t get_u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = v << 8 | data[pos++];
    return v;
  }

  std::uint64_t get_u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = v << 8 | data[pos++];
    return v;
  }

  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

  std::string get_str() {
    const std::uint32_t len = get_u32();
    if (!take(len)) return {};
    std::string s(reinterpret_cast<const char*>(data.data() + pos), len);
    pos += len;
    return s;
  }

  Bytes get_blob() {
    const std::uint32_t len = get_u32();
    if (!take(len)) return {};
    Bytes b(data.begin() + static_cast<std::ptrdiff_t>(pos),
            data.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return b;
  }

  std::vector<Bytes> get_list() {
    const std::uint32_t count = get_u32();
    std::vector<Bytes> items;
    // Cap reservation by what could plausibly fit (each entry needs its
    // 4-byte length) so a lying count cannot drive a huge allocation.
    items.reserve(std::min<std::size_t>(count, (data.size() - pos) / 4 + 1));
    for (std::uint32_t i = 0; i < count && !failed; ++i) {
      items.push_back(get_blob());
    }
    return items;
  }

  ctlog::Hash get_hash() {
    ctlog::Hash hash{};
    if (!take(hash.size())) return hash;
    std::copy_n(data.data() + pos, hash.size(), hash.begin());
    pos += hash.size();
    return hash;
  }

  std::vector<ctlog::Hash> get_hashes() {
    const std::uint32_t count = get_u32();
    std::vector<ctlog::Hash> hashes;
    // Each node is 32 raw bytes; cap the reservation by what could fit.
    hashes.reserve(std::min<std::size_t>(
        count, (data.size() - pos) / sizeof(ctlog::Hash) + 1));
    for (std::uint32_t i = 0; i < count && !failed; ++i) {
      hashes.push_back(get_hash());
    }
    return hashes;
  }

  bool done() const { return !failed && pos == data.size(); }
};

bool valid_verb(std::uint8_t v) {
  return v >= static_cast<std::uint8_t>(Verb::kVerify) &&
         v <= static_cast<std::uint8_t>(Verb::kFeedFetch);
}

}  // namespace

const char* to_string(Verb verb) {
  switch (verb) {
    case Verb::kVerify: return "verify";
    case Verb::kEvaluateGccs: return "evaluate-gccs";
    case Verb::kMetrics: return "metrics";
    case Verb::kFeedStatus: return "feed-status";
    case Verb::kVerifyBatch: return "verify-batch";
    case Verb::kFeedFetch: return "feed-fetch";
  }
  return "unknown";
}

net::Message encode_request(const Request& request) {
  net::Message message;
  message.type = net::MsgType::kRequest;
  Bytes& out = message.payload;
  put_u64(out, request.correlation_id);
  put_u8(out, static_cast<std::uint8_t>(request.verb));
  put_str(out, request.usage);
  put_i64(out, request.time);
  put_u32(out, request.max_depth);
  std::uint8_t flags = 0;
  if (request.require_ev) flags |= 1;
  if (request.check_signatures) flags |= 2;
  if (request.run_gccs) flags |= 4;
  put_u8(out, flags);
  put_str(out, request.hostname);
  put_blob(out, request.leaf_der);
  put_list(out, request.intermediates_der);
  if (request.verb == Verb::kVerifyBatch) {
    put_u32(out, static_cast<std::uint32_t>(request.batch.size()));
    for (const BatchEntry& entry : request.batch) {
      put_str(out, entry.hostname);
      put_blob(out, entry.leaf_der);
    }
  }
  if (request.verb == Verb::kFeedFetch) {
    put_u64(out, request.feed_query.from_size);
    put_u64(out, request.feed_query.to_size);
    put_u32(out, request.feed_query.max_snapshots);
    put_u64(out, request.feed_query.max_bytes);
    put_u8(out, request.feed_query.want_deltas ? 1 : 0);
  }
  return message;
}

net::Message encode_response(const Response& response) {
  net::Message message;
  message.type = net::MsgType::kResponse;
  Bytes& out = message.payload;
  put_u64(out, response.correlation_id);
  put_u8(out, static_cast<std::uint8_t>(response.verb));
  put_u8(out, static_cast<std::uint8_t>(response.kind));
  put_u8(out, response.ok ? 1 : 0);
  put_u32(out, response.stats.chain_len);
  put_u64(out, response.stats.paths_explored);
  put_u64(out, response.stats.gccs_evaluated);
  put_u64(out, response.stats.facts_encoded);
  put_u64(out, response.stats.epoch);
  put_str(out, response.detail);
  put_list(out, response.chain_der);
  if (response.verb == Verb::kVerifyBatch) {
    put_u32(out, static_cast<std::uint32_t>(response.batch.size()));
    for (const BatchVerdict& verdict : response.batch) {
      put_u8(out, static_cast<std::uint8_t>(verdict.kind));
      put_u8(out, verdict.ok ? 1 : 0);
      put_u32(out, verdict.chain_len);
      put_u64(out, verdict.paths_explored);
      put_u64(out, verdict.gccs_evaluated);
      put_u64(out, verdict.facts_encoded);
      put_str(out, verdict.detail);
    }
  }
  if (response.verb == Verb::kFeedFetch) put_feed_fetch(out, response.feed);
  return message;
}

Result<Request> decode_request(net::MsgType type, BytesView payload) {
  if (type != net::MsgType::kRequest) {
    return err("anchord: frame type is not kRequest");
  }
  Cursor cur{payload};
  Request request;
  request.correlation_id = cur.get_u64();
  const std::uint8_t verb = cur.get_u8();
  if (!cur.failed && !valid_verb(verb)) {
    return err("anchord: unknown verb " + std::to_string(verb));
  }
  request.verb = static_cast<Verb>(verb);
  request.usage = cur.get_str();
  request.time = cur.get_i64();
  request.max_depth = cur.get_u32();
  const std::uint8_t flags = cur.get_u8();
  request.require_ev = (flags & 1) != 0;
  request.check_signatures = (flags & 2) != 0;
  request.run_gccs = (flags & 4) != 0;
  request.hostname = cur.get_str();
  request.leaf_der = cur.get_blob();
  request.intermediates_der = cur.get_list();
  if (request.verb == Verb::kVerifyBatch) {
    const std::uint32_t count = cur.get_u32();
    request.batch.reserve(
        std::min<std::size_t>(count, (cur.data.size() - cur.pos) / 8 + 1));
    for (std::uint32_t i = 0; i < count && !cur.failed; ++i) {
      BatchEntry entry;
      entry.hostname = cur.get_str();
      entry.leaf_der = cur.get_blob();
      request.batch.push_back(std::move(entry));
    }
  }
  if (request.verb == Verb::kFeedFetch) {
    request.feed_query.from_size = cur.get_u64();
    request.feed_query.to_size = cur.get_u64();
    request.feed_query.max_snapshots = cur.get_u32();
    request.feed_query.max_bytes = cur.get_u64();
    const std::uint8_t feed_flags = cur.get_u8();
    if (!cur.failed && feed_flags > 1) {
      return err("anchord: feed-fetch flags byte must be 0 or 1");
    }
    request.feed_query.want_deltas = (feed_flags & 1) != 0;
  }
  if (cur.failed) return err("anchord: truncated request payload");
  if (!cur.done()) return err("anchord: trailing bytes after request");
  return request;
}

Result<Request> decode_request(const net::Message& message) {
  return decode_request(message.type, BytesView(message.payload));
}

Result<Response> decode_response(net::MsgType type, BytesView payload) {
  if (type != net::MsgType::kResponse) {
    return err("anchord: frame type is not kResponse");
  }
  Cursor cur{payload};
  Response response;
  response.correlation_id = cur.get_u64();
  const std::uint8_t verb = cur.get_u8();
  if (!cur.failed && !valid_verb(verb)) {
    return err("anchord: unknown verb " + std::to_string(verb));
  }
  response.verb = static_cast<Verb>(verb);
  const std::uint8_t kind = cur.get_u8();
  if (!cur.failed && kind >= chain::kErrorKindCount) {
    return err("anchord: unknown error kind " + std::to_string(kind));
  }
  response.kind = static_cast<chain::ErrorKind>(kind);
  const std::uint8_t ok = cur.get_u8();
  if (!cur.failed && ok > 1) {
    return err("anchord: verdict byte must be 0 or 1");
  }
  response.ok = ok == 1;
  response.stats.chain_len = cur.get_u32();
  response.stats.paths_explored = cur.get_u64();
  response.stats.gccs_evaluated = cur.get_u64();
  response.stats.facts_encoded = cur.get_u64();
  response.stats.epoch = cur.get_u64();
  response.detail = cur.get_str();
  response.chain_der = cur.get_list();
  if (response.verb == Verb::kVerifyBatch) {
    const std::uint32_t count = cur.get_u32();
    response.batch.reserve(
        std::min<std::size_t>(count, (cur.data.size() - cur.pos) / 34 + 1));
    for (std::uint32_t i = 0; i < count && !cur.failed; ++i) {
      BatchVerdict verdict;
      const std::uint8_t vk = cur.get_u8();
      if (!cur.failed && vk >= chain::kErrorKindCount) {
        return err("anchord: unknown batch error kind " + std::to_string(vk));
      }
      verdict.kind = static_cast<chain::ErrorKind>(vk);
      const std::uint8_t vok = cur.get_u8();
      if (!cur.failed && vok > 1) {
        return err("anchord: batch verdict byte must be 0 or 1");
      }
      verdict.ok = vok == 1;
      verdict.chain_len = cur.get_u32();
      verdict.paths_explored = cur.get_u64();
      verdict.gccs_evaluated = cur.get_u64();
      verdict.facts_encoded = cur.get_u64();
      verdict.detail = cur.get_str();
      response.batch.push_back(std::move(verdict));
    }
  }
  if (response.verb == Verb::kFeedFetch) {
    rsf::FeedFetch& feed = response.feed;
    feed.sth.tree_size = cur.get_u64();
    feed.sth.root_hash = cur.get_hash();
    feed.sth.published_at = cur.get_i64();
    feed.sth.signature = cur.get_blob();
    feed.consistency = cur.get_hashes();
    feed.inclusion = cur.get_hashes();
    const std::uint32_t snap_count = cur.get_u32();
    // Each snapshot needs at least its fixed fields (16B) plus five length
    // prefixes; cap the reservation accordingly against a lying count.
    feed.snapshots.reserve(
        std::min<std::size_t>(snap_count, (cur.data.size() - cur.pos) / 36 + 1));
    for (std::uint32_t i = 0; i < snap_count && !cur.failed; ++i) {
      rsf::Snapshot snap;
      snap.sequence = cur.get_u64();
      snap.published_at = cur.get_i64();
      snap.annotation = cur.get_str();
      snap.payload = cur.get_str();
      snap.payload_hash = cur.get_str();
      snap.prev_hash = cur.get_str();
      snap.signature = cur.get_blob();
      feed.snapshots.push_back(std::move(snap));
    }
    const std::uint32_t delta_count = cur.get_u32();
    feed.deltas.reserve(
        std::min<std::size_t>(delta_count, (cur.data.size() - cur.pos) / 4 + 1));
    for (std::uint32_t i = 0; i < delta_count && !cur.failed; ++i) {
      feed.deltas.push_back(cur.get_str());
    }
  }
  if (cur.failed) return err("anchord: truncated response payload");
  if (!cur.done()) return err("anchord: trailing bytes after response");
  return response;
}

Result<Response> decode_response(const net::Message& message) {
  return decode_response(message.type, BytesView(message.payload));
}

std::uint64_t peek_correlation_id(BytesView payload) {
  if (payload.size() < 8) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | payload[static_cast<std::size_t>(i)];
  return v;
}

}  // namespace anchor::anchord
