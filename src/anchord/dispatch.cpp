#include "anchord/dispatch.hpp"

#include <algorithm>
#include <cassert>

namespace anchor::anchord {

namespace {

Response base_response(const Request& request) {
  Response response;
  response.correlation_id = request.correlation_id;
  response.verb = request.verb;
  return response;
}

Response fail(const Request& request, chain::ErrorKind kind,
              std::string detail) {
  Response response = base_response(request);
  response.ok = false;
  response.kind = kind;
  response.detail = std::move(detail);
  return response;
}

// Maps the request's usage token onto VerifyOptions, or returns false for
// a token neither verify verb accepts.
bool parse_usage(const Request& request, chain::VerifyOptions& options) {
  if (request.usage == chain::usage_name(chain::Usage::kTls)) {
    options.usage = chain::Usage::kTls;
    return true;
  }
  if (request.usage == chain::usage_name(chain::Usage::kSmime)) {
    options.usage = chain::Usage::kSmime;
    return true;
  }
  return false;
}

chain::VerifyOptions options_from(const Request& request) {
  chain::VerifyOptions options;
  options.time = request.time;
  options.hostname = request.hostname;
  options.max_depth = request.max_depth;
  options.require_ev = request.require_ev;
  options.check_signatures = request.check_signatures;
  options.run_gccs = request.run_gccs;
  return options;
}

}  // namespace

VerbDispatcher::VerbDispatcher(Backends backends)
    : backends_(backends) {
  assert(backends_.service != nullptr);
  if (backends_.registry == nullptr) {
    backends_.registry = &metrics::Registry::global();
  }
}

Response VerbDispatcher::dispatch(const Request& request,
                                  metrics::Registry* registry_override) {
  switch (request.verb) {
    case Verb::kVerify:
      return do_verify(request);
    case Verb::kEvaluateGccs:
      return do_evaluate_gccs(request);
    case Verb::kMetrics:
      return do_metrics(request, registry_override != nullptr
                                     ? *registry_override
                                     : *backends_.registry);
    case Verb::kFeedStatus:
      return do_feed_status(request);
    case Verb::kVerifyBatch:
      return do_verify_batch(request);
    case Verb::kFeedFetch:
      return do_feed_fetch(request);
  }
  return fail(request, chain::ErrorKind::kMalformedRequest, "unknown verb");
}

Response VerbDispatcher::do_verify(const Request& request) {
  if (request.leaf_der.empty()) {
    return fail(request, chain::ErrorKind::kMalformedRequest,
                "verify: empty leaf certificate");
  }
  chain::VerifyOptions options = options_from(request);
  if (!parse_usage(request, options)) {
    return fail(request, chain::ErrorKind::kMalformedRequest,
                "verify: unknown usage '" + request.usage + "'");
  }

  chain::VerifyResult result = backends_.service->validate(
      request.leaf_der, request.intermediates_der, options);

  Response response = base_response(request);
  response.ok = result.ok;
  response.kind = result.kind;
  response.detail = result.error;
  response.stats.chain_len = static_cast<std::uint32_t>(result.chain.size());
  response.stats.paths_explored = result.paths_explored;
  response.stats.gccs_evaluated = result.gcc_verdict.gccs_evaluated;
  response.stats.facts_encoded = result.gcc_verdict.facts_encoded;
  response.stats.epoch = backends_.service->epoch();
  response.chain_der.reserve(result.chain.size());
  for (const auto& cert : result.chain) {
    response.chain_der.push_back(cert->der());
  }
  return response;
}

Response VerbDispatcher::do_verify_batch(const Request& request) {
  if (request.batch.empty()) {
    return fail(request, chain::ErrorKind::kMalformedRequest,
                "verify-batch: empty batch");
  }
  chain::VerifyOptions options = options_from(request);
  if (!parse_usage(request, options)) {
    return fail(request, chain::ErrorKind::kMalformedRequest,
                "verify-batch: unknown usage '" + request.usage + "'");
  }

  std::vector<Bytes> leaf_ders;
  std::vector<std::string> hostnames;
  leaf_ders.reserve(request.batch.size());
  hostnames.reserve(request.batch.size());
  for (const BatchEntry& entry : request.batch) {
    leaf_ders.push_back(entry.leaf_der);
    hostnames.push_back(entry.hostname);
  }
  std::vector<chain::VerifyResult> results = backends_.service->validate_batch(
      leaf_ders, hostnames, request.intermediates_der, options);

  Response response = base_response(request);
  response.ok = true;
  response.stats.epoch = backends_.service->epoch();
  response.batch.reserve(results.size());
  for (const chain::VerifyResult& result : results) {
    BatchVerdict verdict;
    verdict.kind = result.kind;
    verdict.ok = result.ok;
    verdict.chain_len = static_cast<std::uint32_t>(result.chain.size());
    verdict.paths_explored = result.paths_explored;
    verdict.gccs_evaluated = result.gcc_verdict.gccs_evaluated;
    verdict.facts_encoded = result.gcc_verdict.facts_encoded;
    verdict.detail = result.error;
    response.batch.push_back(std::move(verdict));
    // Top-level view: counters sum over entries; ok only if every entry
    // passed; kind/detail report the first failing entry.
    response.stats.chain_len += response.batch.back().chain_len;
    response.stats.paths_explored += result.paths_explored;
    response.stats.gccs_evaluated += result.gcc_verdict.gccs_evaluated;
    response.stats.facts_encoded += result.gcc_verdict.facts_encoded;
    if (!result.ok && response.ok) {
      response.ok = false;
      response.kind = result.kind;
      response.detail = result.error;
    }
  }
  return response;
}

Response VerbDispatcher::do_evaluate_gccs(const Request& request) {
  // The wire carries the caller-built chain as leaf + intermediates; the
  // service wants one leaf-first span.
  if (request.leaf_der.empty()) {
    return fail(request, chain::ErrorKind::kMalformedRequest,
                "evaluate-gccs: empty leaf certificate");
  }
  std::vector<Bytes> chain_der;
  chain_der.reserve(1 + request.intermediates_der.size());
  chain_der.push_back(request.leaf_der);
  for (const Bytes& der : request.intermediates_der) {
    chain_der.push_back(der);
  }
  chain::VerifyService::GccsOutcome outcome =
      backends_.service->evaluate_gccs_detail(chain_der, request.usage);

  Response response = base_response(request);
  response.ok = outcome.allowed;
  response.kind = outcome.kind;
  response.detail = outcome.detail;
  response.stats.chain_len = static_cast<std::uint32_t>(chain_der.size());
  response.stats.gccs_evaluated = outcome.verdict.gccs_evaluated;
  response.stats.facts_encoded = outcome.verdict.facts_encoded;
  response.stats.epoch = backends_.service->epoch();
  return response;
}

Response VerbDispatcher::do_metrics(const Request& request,
                                    metrics::Registry& registry) {
  if (backends_.store != nullptr) {
    rootstore::export_store_metrics(*backends_.store, registry);
  }
  Response response = base_response(request);
  response.ok = true;
  response.detail = registry.expose();
  response.stats.epoch = backends_.service->epoch();
  return response;
}

Response VerbDispatcher::do_feed_fetch(const Request& request) {
  if (backends_.feed_source == nullptr) {
    return fail(request, chain::ErrorKind::kUnavailable,
                "feed-fetch: no feed attached to this daemon");
  }
  // Server-side serving bounds: however greedy the query, the response
  // must fit a single wire frame (net::kMaxFrameBytes). The snapshot byte
  // budget leaves ample headroom for tree head, proofs, deltas, and frame
  // headers; a poller whose range is clamped simply polls again from its
  // new pin. A single snapshot larger than the whole budget cannot be
  // paginated — fail closed rather than emit an undecodable frame.
  constexpr std::uint32_t kMaxSnapshotsPerResponse = 512;
  constexpr std::uint64_t kSnapshotByteBudget = net::kMaxFrameBytes / 2;
  rsf::FeedFetchQuery query = request.feed_query;
  query.max_snapshots = std::min(query.max_snapshots, kMaxSnapshotsPerResponse);
  query.max_bytes = query.max_bytes == 0
                        ? kSnapshotByteBudget
                        : std::min(query.max_bytes, kSnapshotByteBudget);
  auto fetched = backends_.feed_source->feed_fetch(query);
  if (!fetched) {
    return fail(request, chain::ErrorKind::kUnavailable,
                "feed-fetch: " + fetched.error());
  }
  rsf::FeedFetch feed = std::move(fetched).take();
  if (feed.wire_size(/*include_payloads=*/true) > net::kMaxFrameBytes - 1024) {
    return fail(request, chain::ErrorKind::kOverloaded,
                "feed-fetch: snapshot range exceeds the frame budget; fetch "
                "the oversized snapshot out of band");
  }
  Response response = base_response(request);
  response.ok = true;
  response.feed = std::move(feed);
  response.stats.chain_len =
      static_cast<std::uint32_t>(response.feed.snapshots.size());
  response.stats.epoch = backends_.service->epoch();
  return response;
}

Response VerbDispatcher::do_feed_status(const Request& request) {
  if (backends_.feed == nullptr) {
    return fail(request, chain::ErrorKind::kUnavailable,
                "feed-status: no RSF client attached to this daemon");
  }
  Response response = base_response(request);
  response.ok = true;
  response.detail = backends_.feed->feed_status().to_text();
  response.stats.epoch = backends_.service->epoch();
  return response;
}

}  // namespace anchor::anchord
