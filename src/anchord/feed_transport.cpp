#include "anchord/feed_transport.hpp"

#include "util/simsig.hpp"

namespace anchor::anchord {

WireFeedTransport::WireFeedTransport(AnchordClient& client,
                                     std::string publisher)
    : client_(client),
      publisher_(std::move(publisher)),
      key_id_(SimSig::keygen("rsf-feed-" + publisher_).key_id) {}

Result<rsf::FeedFetch> WireFeedTransport::feed_fetch(
    const rsf::FeedFetchQuery& query) {
  Request request;
  request.verb = Verb::kFeedFetch;
  request.feed_query = query;
  auto response = client_.call(std::move(request));
  if (!response) return err(response.error());
  if (!response.value().ok) {
    return err(response.value().detail.empty()
                   ? "feed-fetch: daemon refused the request"
                   : response.value().detail);
  }
  return std::move(response.value().feed);
}

Result<std::uint64_t> WireFeedTransport::head_sequence() {
  rsf::FeedFetchQuery probe;
  probe.max_snapshots = 0;  // tree head only
  auto fetched = feed_fetch(probe);
  if (!fetched) return err(fetched.error());
  return fetched.value().sth.tree_size;
}

Result<std::vector<rsf::Snapshot>> WireFeedTransport::fetch_since(
    std::uint64_t /*after_sequence*/) {
  return err(
      "feed-fetch transport serves only the authenticated Merkle path; "
      "use PollPath::kAuto");
}

Result<std::string> WireFeedTransport::fetch_delta(
    std::uint64_t /*sequence*/) {
  return err(
      "feed-fetch transport carries deltas inline; "
      "use PollPath::kAuto");
}

}  // namespace anchor::anchord
