// Client side of the anchord wire protocol: assigns correlation ids,
// frames requests, and matches responses back to ids regardless of the
// order the server answers in (responses to pipelined requests may
// interleave arbitrarily).
//
// Not thread-safe — one AnchordClient per thread/connection, which matches
// how anchorctl and the bench use it. kAlert frames from the server are
// recorded (last_alert()) and skipped, mirroring the server's own
// keep-the-session-alive stance.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "anchord/conduit.hpp"
#include "anchord/wire.hpp"

namespace anchor::anchord {

class AnchordClient {
 public:
  // `conduit` must outlive the client. `timeout_ms` bounds each receive
  // wait (err on expiry, the connection stays usable).
  explicit AnchordClient(Conduit& conduit, int timeout_ms = 5000);

  // Fire-and-forget send for pipelining; returns the assigned correlation
  // id (overwriting whatever id the caller set). err if the peer closed.
  Result<std::uint64_t> send(Request request);

  // Blocks until the response with `correlation_id` arrives, buffering any
  // other responses that land first.
  Result<Response> receive(std::uint64_t correlation_id);

  // Convenience: send + receive.
  Result<Response> call(Request request);

  std::size_t pending() const { return pending_.size(); }
  const std::string& last_alert() const { return last_alert_; }
  std::uint64_t alerts() const { return alerts_; }

 private:
  // Reads until at least one frame decodes or the timeout expires.
  Status pump();

  Conduit& conduit_;
  int timeout_ms_;
  std::uint64_t next_id_ = 1;
  Bytes buffer_;
  std::map<std::uint64_t, Response> pending_;  // arrived, not yet claimed
  std::string last_alert_;
  std::uint64_t alerts_ = 0;
};

}  // namespace anchor::anchord
