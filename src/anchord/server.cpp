#include "anchord/server.hpp"

#include <algorithm>
#include <chrono>
#include <deque>

namespace anchor::anchord {

// Per-connection state, shared_ptr-owned: the reactor loop, the worker
// pool, and the serve() caller all hold references, so the session outlives
// whichever of them finishes last. One mutex guards the write queue and the
// lifecycle counters; the read buffer needs no lock because exactly one
// thread ever reads a given conduit (the reactor loop, or the blocking
// serve() thread — never both).
struct AnchordServer::Session : Reactor::Handler,
                                std::enable_shared_from_this<Session> {
  AnchordServer* server = nullptr;
  Conduit* conduit = nullptr;
  int write_fd = -1;  // conduit->writable_fd(); -1 = writes never stall

  // Read state — single-threaded by construction (see struct comment).
  Bytes buffer;
  std::size_t skip_remaining = 0;

  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;     // admitted handlers not yet completed
  bool read_done = false;          // no more frames will be decoded
  bool torn_down = false;          // framing broke: close after final flush
  std::deque<Bytes> write_queue;   // frames awaiting the peer
  std::size_t write_offset = 0;    // bytes of the front frame already sent
  bool write_armed = false;        // EPOLLOUT interest requested
  bool write_failed = false;       // stream died mid-write: drop the rest

  // Enqueues one whole frame and flushes as far as the peer allows.
  // Frames from concurrently-finishing handlers interleave whole, never
  // byte-wise, because the queue append and the flush share `mu`.
  bool send(Bytes frame) {
    std::lock_guard<std::mutex> lock(mu);
    if (write_failed) return false;
    write_queue.push_back(std::move(frame));
    flush_locked();
    return !write_failed;
  }

  // Callers hold `mu`. Drains the queue with non-blocking writes; a
  // flow-controlled peer (write_some == 0) leaves the remainder queued and
  // arms EPOLLOUT so the reactor resumes the flush on writability.
  void flush_locked() {
    while (!write_queue.empty()) {
      const Bytes& front = write_queue.front();
      const BytesView rest(front.data() + write_offset,
                           front.size() - write_offset);
      const int n = conduit->write_some(rest);
      if (n < 0) {
        write_failed = true;
        write_queue.clear();
        write_offset = 0;
        break;
      }
      if (n == 0) {
        if (write_fd >= 0 && server->reactor_.ok()) {
          if (!write_armed) {
            write_armed = true;
            server->reactor_.arm_write(write_fd, shared_from_this());
          }
          return;  // the reactor finishes this flush
        }
        // No writability events available: fall back to one blocking
        // write for the remainder (the pre-reactor semantics).
        if (!conduit->write(rest)) {
          write_failed = true;
          write_queue.clear();
          write_offset = 0;
          break;
        }
        write_queue.pop_front();
        write_offset = 0;
        continue;
      }
      write_offset += static_cast<std::size_t>(n);
      if (write_offset == front.size()) {
        write_queue.pop_front();
        write_offset = 0;
      }
    }
    cv.notify_all();  // queue may have just drained: finish() may hold now
  }

  // --- Reactor::Handler ----------------------------------------------------

  bool on_readable() override {
    // Loop to exhaustion: the memory conduit clears its readiness signal
    // on every read_some(…, 0), so stopping early with bytes still
    // buffered would strand them until the next (possibly never) append.
    for (;;) {
      const int n = conduit->read_some(buffer, server->config_.read_chunk, 0);
      if (n < 0) return read_finished(/*teardown=*/false);  // peer closed
      if (n == 0) return true;                              // drained for now
      server->m_bytes_read_.add(static_cast<std::uint64_t>(n));
      if (!server->drain_session(*this)) return read_finished(true);
      if (buffer.size() > server->config_.max_buffer_bytes) {
        server->send_alert(*this, "anchord: session buffer limit exceeded");
        return read_finished(true);
      }
    }
  }

  bool on_writable() override {
    std::lock_guard<std::mutex> lock(mu);
    flush_locked();
    if (!write_queue.empty() && !write_failed) return true;  // still parked
    write_armed = false;
    return false;
  }

  // --- lifecycle -----------------------------------------------------------

  // Marks the read side finished; returns false so the reactor drops read
  // interest. No conduit access happens after the notify: the serve()
  // caller may wake, return, and invalidate the conduit immediately.
  bool read_finished(bool teardown) {
    std::lock_guard<std::mutex> lock(mu);
    read_done = true;
    if (teardown) torn_down = true;
    cv.notify_all();
    return false;
  }

  void begin() {
    std::lock_guard<std::mutex> lock(mu);
    ++outstanding;
  }

  // Notify under the lock: serve() may destroy its references the moment
  // the finish predicate holds, so the notify must complete before this
  // thread releases `mu`.
  void done() {
    std::lock_guard<std::mutex> lock(mu);
    --outstanding;
    cv.notify_all();
  }

  // True once the session owes the peer nothing more: reading is over,
  // every admitted handler has completed, and its responses have left the
  // write queue (or the stream died and took them).
  void wait_finished() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] {
      return read_done && outstanding == 0 &&
             (write_queue.empty() || write_failed);
    });
  }
};

AnchordServer::AnchordServer(VerbDispatcher::Backends backends,
                             AnchordConfig config,
                             metrics::Registry& registry)
    : dispatcher_(backends),
      config_(std::move(config)),
      pool_(config_.workers),
      m_connections_(registry.counter("anchor_anchord_connections_total")),
      m_req_verify_(registry.counter("anchor_anchord_requests_total",
                                     {{"verb", "verify"}})),
      m_req_gccs_(registry.counter("anchor_anchord_requests_total",
                                   {{"verb", "evaluate-gccs"}})),
      m_req_metrics_(registry.counter("anchor_anchord_requests_total",
                                      {{"verb", "metrics"}})),
      m_req_feed_(registry.counter("anchor_anchord_requests_total",
                                   {{"verb", "feed-status"}})),
      m_req_batch_(registry.counter("anchor_anchord_requests_total",
                                    {{"verb", "verify-batch"}})),
      m_req_feedfetch_(registry.counter("anchor_anchord_requests_total",
                                        {{"verb", "feed-fetch"}})),
      m_overloads_(registry.counter("anchor_anchord_overloads_total")),
      m_timeouts_(registry.counter("anchor_anchord_timeouts_total")),
      m_malformed_(registry.counter("anchor_anchord_malformed_total")),
      m_alerts_(registry.counter("anchor_anchord_alerts_total")),
      m_bytes_read_(registry.counter("anchor_anchord_bytes_read_total")),
      m_bytes_written_(registry.counter("anchor_anchord_bytes_written_total")),
      m_in_flight_(registry.gauge("anchor_anchord_in_flight")),
      m_queue_depth_(registry.gauge("anchor_anchord_queue_depth")),
      m_serve_latency_(registry.histogram("anchor_anchord_serve_seconds")) {}

void AnchordServer::serve(Conduit& conduit) {
  m_connections_.add();
  auto session = std::make_shared<Session>();
  session->server = this;
  session->conduit = &conduit;
  session->write_fd = conduit.writable_fd();

  const int rfd = conduit.readiness_fd();
  if (!reactor_.ok() || rfd < 0 || !reactor_.add(rfd, session)) {
    serve_blocking(conduit, session);
  } else {
    session->wait_finished();
    reactor_.forget(rfd, session);
    if (session->write_fd != rfd) reactor_.forget(session->write_fd, session);
  }
  if (session->torn_down) conduit.close();
}

void AnchordServer::serve_blocking(Conduit& conduit,
                                   const std::shared_ptr<Session>& session) {
  bool teardown = false;
  for (;;) {
    const int n = conduit.read_some(session->buffer, config_.read_chunk,
                                    config_.idle_poll_ms);
    if (n < 0) break;      // peer closed and drained
    if (n == 0) continue;  // idle tick
    m_bytes_read_.add(static_cast<std::uint64_t>(n));
    if (!drain_session(*session)) {
      teardown = true;
      break;
    }
    if (session->buffer.size() > config_.max_buffer_bytes) {
      send_alert(*session, "anchord: session buffer limit exceeded");
      teardown = true;
      break;
    }
  }
  session->read_finished(teardown);
  session->wait_finished();
}

bool AnchordServer::drain_session(Session& session) {
  Bytes& buffer = session.buffer;
  std::size_t pos = 0;
  bool alive = true;
  for (;;) {
    if (session.skip_remaining > 0) {
      // Discard mode: eat the remainder of a frame we alerted on.
      const std::size_t n =
          std::min(session.skip_remaining, buffer.size() - pos);
      pos += n;
      session.skip_remaining -= n;
      if (session.skip_remaining > 0) break;  // more to discard as it arrives
    }
    const BytesView rest(buffer.data() + pos, buffer.size() - pos);
    auto view = net::decode_frame_view(rest);
    if (!view) {
      // The codec consumed nothing, so the 5-byte header is still at the
      // front. Two failure classes, very different trust levels:
      if (rest.size() < 5) break;  // defensive; decode can't fail here
      std::uint32_t length = 0;
      for (std::size_t i = 1; i <= 4; ++i) length = length << 8 | rest[i];
      send_alert(session, view.error());
      if (static_cast<std::size_t>(length) > net::kMaxFrameBytes) {
        // The declared length is over the codec cap, i.e. garbage from an
        // untrusted header. Trusting it as a skip count would discard up
        // to ~4 GiB of whatever valid frames follow — tear down instead.
        alive = false;
        break;
      }
      // Unknown frame type with a credible length: skip exactly that
      // frame (the skip is bounded by the cap check above) and resync.
      session.skip_remaining = 5 + static_cast<std::size_t>(length);
      continue;
    }
    if (!view.value().complete) break;
    // Zero-copy dispatch: the payload view borrows from `buffer`, which is
    // stable until the single erase below — on_frame copies only what the
    // request decoder keeps.
    on_frame(session, view.value().type, view.value().payload);
    pos += view.value().consumed;
  }
  if (pos > 0) {
    buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return alive;
}

void AnchordServer::on_frame(Session& session, net::MsgType type,
                             BytesView payload) {
  if (type != net::MsgType::kRequest) {
    // A well-framed message that is not a request (a stray handshake
    // frame, a response echoed back): protocol violation, session lives.
    send_alert(session, "anchord: unexpected frame type " +
                            std::to_string(static_cast<int>(type)));
    return;
  }
  auto request = decode_request(type, payload);
  if (!request) {
    m_malformed_.add();
    Response response;
    response.correlation_id = peek_correlation_id(payload);
    response.kind = chain::ErrorKind::kMalformedRequest;
    response.detail = request.error();
    Bytes frame = net::encode_frame(encode_response(response));
    m_bytes_written_.add(frame.size());
    session.send(std::move(frame));
    return;
  }
  admit(session, std::move(request).take());
}

void AnchordServer::admit(Session& session, Request request) {
  const std::size_t admitted =
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (admitted >= config_.max_in_flight) {
    // Fail closed, synchronously: the client gets an explicit kOverloaded
    // verdict it can retry on, not a stalled or dropped request.
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    m_overloads_.add();
    Response response;
    response.correlation_id = request.correlation_id;
    response.verb = request.verb;
    response.kind = chain::ErrorKind::kOverloaded;
    response.detail = "anchord: in-flight bound (" +
                      std::to_string(config_.max_in_flight) + ") reached";
    Bytes frame = net::encode_frame(encode_response(response));
    m_bytes_written_.add(frame.size());
    session.send(std::move(frame));
    return;
  }
  // Gauge moves by the same ±1 the atomic does — never set() from a
  // re-read of the counter, which publishes stale values under concurrent
  // admits/completions and can leave the gauge stuck non-zero at idle.
  m_in_flight_.add(1);
  switch (request.verb) {
    case Verb::kVerify: m_req_verify_.add(); break;
    case Verb::kEvaluateGccs: m_req_gccs_.add(); break;
    case Verb::kMetrics: m_req_metrics_.add(); break;
    case Verb::kFeedStatus: m_req_feed_.add(); break;
    case Verb::kVerifyBatch: m_req_batch_.add(); break;
    case Verb::kFeedFetch: m_req_feedfetch_.add(); break;
  }
  const auto deadline =
      config_.request_timeout_ms > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::milliseconds(config_.request_timeout_ms)
          : std::chrono::steady_clock::time_point::max();
  session.begin();
  // The worker keeps the session alive on its own: serve() may only have
  // returned after done(), but the shared_ptr makes that robust rather
  // than load-bearing.
  auto self = session.shared_from_this();
  pool_.post([this, self = std::move(self), request = std::move(request),
              deadline] {
    if (config_.handler_gate) config_.handler_gate();
    Response response;
    if (std::chrono::steady_clock::now() >= deadline) {
      m_timeouts_.add();
      response.correlation_id = request.correlation_id;
      response.verb = request.verb;
      response.kind = chain::ErrorKind::kTimeout;
      response.detail = "anchord: deadline expired before execution";
    } else {
      metrics::ScopedTimer timer(m_serve_latency_);
      response = dispatcher_.dispatch(request);
    }
    Bytes frame = net::encode_frame(encode_response(response));
    m_bytes_written_.add(frame.size());
    self->send(std::move(frame));
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    m_in_flight_.add(-1);
    self->done();
  });
  m_queue_depth_.set(static_cast<std::int64_t>(pool_.queue_depth()));
}

void AnchordServer::send_alert(Session& session, const std::string& reason) {
  m_alerts_.add();
  net::Message message;
  message.type = net::MsgType::kAlert;
  message.payload = to_bytes(reason);
  Bytes frame = net::encode_frame(message);
  m_bytes_written_.add(frame.size());
  session.send(std::move(frame));
}

}  // namespace anchor::anchord
