#include "anchord/server.hpp"

#include <algorithm>
#include <chrono>

namespace anchor::anchord {

namespace {
const metrics::Labels kNoLabels;
}  // namespace

// Per-connection state, living on serve()'s stack: a write lock so
// concurrently-finishing handlers interleave whole frames (never bytes),
// and an outstanding-count that serve() drains before returning so the
// stack frame outlives every handler that references it.
struct AnchordServer::Session {
  Conduit* conduit = nullptr;
  std::mutex write_mu;
  std::mutex idle_mu;
  std::condition_variable idle_cv;
  std::size_t outstanding = 0;  // guarded by idle_mu

  bool send(const Bytes& frame) {
    std::lock_guard<std::mutex> lock(write_mu);
    return conduit->write(BytesView(frame));
  }
  void begin() {
    std::lock_guard<std::mutex> lock(idle_mu);
    ++outstanding;
  }
  void done() {
    // Notify under the lock: the session is destroyed the moment
    // wait_idle() observes outstanding == 0, so the notify must complete
    // before this thread releases idle_mu (a post-unlock notify races the
    // destructor).
    std::lock_guard<std::mutex> lock(idle_mu);
    --outstanding;
    idle_cv.notify_all();
  }
  void wait_idle() {
    std::unique_lock<std::mutex> lock(idle_mu);
    idle_cv.wait(lock, [&] { return outstanding == 0; });
  }
};

AnchordServer::AnchordServer(VerbDispatcher::Backends backends,
                             AnchordConfig config,
                             metrics::Registry& registry)
    : dispatcher_(backends),
      config_(std::move(config)),
      pool_(config_.workers),
      m_connections_(registry.counter("anchor_anchord_connections_total")),
      m_req_verify_(registry.counter("anchor_anchord_requests_total",
                                     {{"verb", "verify"}})),
      m_req_gccs_(registry.counter("anchor_anchord_requests_total",
                                   {{"verb", "evaluate-gccs"}})),
      m_req_metrics_(registry.counter("anchor_anchord_requests_total",
                                      {{"verb", "metrics"}})),
      m_req_feed_(registry.counter("anchor_anchord_requests_total",
                                   {{"verb", "feed-status"}})),
      m_overloads_(registry.counter("anchor_anchord_overloads_total")),
      m_timeouts_(registry.counter("anchor_anchord_timeouts_total")),
      m_malformed_(registry.counter("anchor_anchord_malformed_total")),
      m_alerts_(registry.counter("anchor_anchord_alerts_total")),
      m_bytes_read_(registry.counter("anchor_anchord_bytes_read_total")),
      m_bytes_written_(registry.counter("anchor_anchord_bytes_written_total")),
      m_in_flight_(registry.gauge("anchor_anchord_in_flight")),
      m_queue_depth_(registry.gauge("anchor_anchord_queue_depth")),
      m_serve_latency_(registry.histogram("anchor_anchord_serve_seconds")) {}

void AnchordServer::serve(Conduit& conduit) {
  m_connections_.add();
  Session session;
  session.conduit = &conduit;
  Bytes buffer;
  std::size_t skip_remaining = 0;
  for (;;) {
    const int n =
        conduit.read_some(buffer, config_.read_chunk, config_.idle_poll_ms);
    if (n < 0) break;    // peer closed and drained
    if (n == 0) continue;  // idle tick
    m_bytes_read_.add(static_cast<std::uint64_t>(n));
    if (!drain_buffer(session, buffer, skip_remaining)) break;
    if (buffer.size() > config_.max_buffer_bytes) {
      // Unframed backlog beyond the cap: framing can no longer be
      // trusted, and this is the one condition that tears a session down.
      send_alert(session, "anchord: session buffer limit exceeded");
      break;
    }
  }
  session.wait_idle();
}

bool AnchordServer::drain_buffer(Session& session, Bytes& buffer,
                                 std::size_t& skip_remaining) {
  for (;;) {
    if (skip_remaining > 0) {
      // Discard mode: eat the remainder of a frame we alerted on.
      const std::size_t n = std::min(skip_remaining, buffer.size());
      buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(n));
      skip_remaining -= n;
      if (skip_remaining > 0) return true;  // more to discard as it arrives
    }
    auto decoded = net::decode_frame(buffer);
    if (!decoded) {
      // decode_frame consumed nothing, so the 5-byte header is still at
      // the front: its declared length tells us exactly how many bytes to
      // skip to stay in sync, whatever was wrong with the frame.
      if (buffer.size() < 5) return true;  // defensive; decode can't fail here
      std::uint32_t length = 0;
      for (std::size_t i = 1; i <= 4; ++i) length = length << 8 | buffer[i];
      send_alert(session, decoded.error());
      skip_remaining = 5 + static_cast<std::size_t>(length);
      continue;
    }
    if (!decoded.value().complete) return true;
    on_message(session, std::move(decoded.value().message));
  }
}

void AnchordServer::on_message(Session& session, net::Message message) {
  if (message.type != net::MsgType::kRequest) {
    // A well-framed message that is not a request (a stray handshake
    // frame, a response echoed back): protocol violation, session lives.
    send_alert(session, "anchord: unexpected frame type " +
                            std::to_string(static_cast<int>(message.type)));
    return;
  }
  auto request = decode_request(message);
  if (!request) {
    m_malformed_.add();
    Response response;
    response.correlation_id = peek_correlation_id(BytesView(message.payload));
    response.kind = chain::ErrorKind::kMalformedRequest;
    response.detail = request.error();
    const Bytes frame = net::encode_frame(encode_response(response));
    m_bytes_written_.add(frame.size());
    session.send(frame);
    return;
  }
  admit(session, std::move(request).take());
}

void AnchordServer::admit(Session& session, Request request) {
  const std::size_t admitted =
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (admitted >= config_.max_in_flight) {
    // Fail closed, synchronously: the client gets an explicit kOverloaded
    // verdict it can retry on, not a stalled or dropped request.
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    m_overloads_.add();
    Response response;
    response.correlation_id = request.correlation_id;
    response.verb = request.verb;
    response.kind = chain::ErrorKind::kOverloaded;
    response.detail = "anchord: in-flight bound (" +
                      std::to_string(config_.max_in_flight) + ") reached";
    const Bytes frame = net::encode_frame(encode_response(response));
    m_bytes_written_.add(frame.size());
    session.send(frame);
    return;
  }
  m_in_flight_.set(static_cast<std::int64_t>(admitted + 1));
  switch (request.verb) {
    case Verb::kVerify: m_req_verify_.add(); break;
    case Verb::kEvaluateGccs: m_req_gccs_.add(); break;
    case Verb::kMetrics: m_req_metrics_.add(); break;
    case Verb::kFeedStatus: m_req_feed_.add(); break;
  }
  const auto deadline =
      config_.request_timeout_ms > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::milliseconds(config_.request_timeout_ms)
          : std::chrono::steady_clock::time_point::max();
  session.begin();
  pool_.post([this, &session, request = std::move(request), deadline] {
    if (config_.handler_gate) config_.handler_gate();
    Response response;
    if (std::chrono::steady_clock::now() >= deadline) {
      m_timeouts_.add();
      response.correlation_id = request.correlation_id;
      response.verb = request.verb;
      response.kind = chain::ErrorKind::kTimeout;
      response.detail = "anchord: deadline expired before execution";
    } else {
      metrics::ScopedTimer timer(m_serve_latency_);
      response = dispatcher_.dispatch(request);
    }
    const Bytes frame = net::encode_frame(encode_response(response));
    m_bytes_written_.add(frame.size());
    session.send(frame);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    m_in_flight_.set(static_cast<std::int64_t>(
        in_flight_.load(std::memory_order_relaxed)));
    session.done();
  });
  m_queue_depth_.set(static_cast<std::int64_t>(pool_.queue_depth()));
}

void AnchordServer::send_alert(Session& session, const std::string& reason) {
  m_alerts_.add();
  net::Message message;
  message.type = net::MsgType::kAlert;
  message.payload = to_bytes(reason);
  const Bytes frame = net::encode_frame(message);
  m_bytes_written_.add(frame.size());
  session.send(frame);
}

}  // namespace anchor::anchord
