// Deployment-model simulation for §3.1 of the paper, which weighs three
// options for who executes GCCs:
//
//   1. user-agent execution  — ChainVerifier's default in-process hook;
//   2. platform execution    — a trustd-style daemon with an IPC interface
//                              that "accepts certificates and returns a
//                              Boolean";
//   3. complete redesign     — the daemon performs full chain construction
//                              (the Hammurabi model).
//
// TrustDaemon models options 2 and 3 in-process but honestly — more
// honestly than its first incarnation: every call is now marshalled
// through the real anchord wire codec (encode_request → frame → decode →
// dispatch → encode_response → frame → decode), so the serialization cost
// a deployed daemon would pay is the serialization cost the bench
// measures, and request/response limits are the codec's limits. A
// configurable spin-wait per leg stands in for kernel round-trip latency;
// bench E9 sweeps it.
//
// With a VerifyService attached the daemon is a thin adapter over
// VerbDispatcher — the same execution path AnchordServer serves over a
// Conduit — and is safe for concurrent callers. Without one it falls back
// to uncached in-process execution (fresh parse per call), preserving the
// E9 "cold daemon" baseline.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "anchord/dispatch.hpp"
#include "anchord/wire.hpp"
#include "chain/service.hpp"

namespace anchor::anchord {

struct TrustDaemonConfig {
  // Required. Any StoreReader: a live RootStore, or an mmap-backed
  // snapshot StoreView when the daemon warm-starts from --snapshot.
  const rootstore::StoreReader* store = nullptr;
  const SignatureScheme* scheme = nullptr;       // required
  // Simulated IPC latency added per call leg (0 = colocated daemon).
  std::uint64_t latency_ns = 0;
  // Shared machine-wide service; null selects the uncached fallback.
  chain::VerifyService* service = nullptr;
  // RSF client behind the feed-status verb; null answers kUnavailable.
  rsf::RsfClient* feed = nullptr;
  // Feed served by the feed-fetch verb; null answers kUnavailable.
  const rsf::Feed* feed_source = nullptr;
  // Per-call marshalled-size limit; requests or responses whose encoded
  // frame exceeds it fail closed as kMalformedRequest / are truncated to a
  // diagnostic, mirroring the codec cap a real transport enforces.
  std::size_t max_frame_bytes = net::kMaxFrameBytes;
};

class TrustDaemon {
 public:
  explicit TrustDaemon(TrustDaemonConfig config);

  // Option 2: the user-agent built a candidate chain; the daemon executes
  // the GCCs attached to its root. Input is the chain as DER blobs
  // (leaf-first), as they cross the wire.
  bool evaluate_gccs(std::span<const Bytes> chain_der, std::string_view usage);

  // Option 3: full validation inside the daemon. The accepted path comes
  // back as DER and is re-parsed into VerifyResult::chain; rejected-path
  // diagnostics do not cross the wire (kind/error do).
  chain::VerifyResult validate(const Bytes& leaf_der,
                               std::span<const Bytes> intermediates_der,
                               const chain::VerifyOptions& options);

  // Observability verb: `anchorctl metrics`-style scrape over the same
  // wire surface, refreshed with the daemon's store gauges first.
  std::string metrics(
      metrics::Registry& registry = metrics::Registry::global());

  // RSF liveness over the wire surface; kUnavailable without a feed.
  Response feed_status();

  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  void simulate_ipc_latency() const;
  // Marshals through the frame codec (the honesty mechanism); err when the
  // encoded frame exceeds the configured cap or fails to re-decode.
  Result<Request> marshal_request(const Request& request) const;
  Result<Response> marshal_response(const Response& response) const;
  // Runs a decoded request: dispatcher when a service is attached,
  // uncached in-process execution otherwise.
  Response execute(const Request& request, metrics::Registry* registry);
  Response execute_fallback(const Request& request,
                            metrics::Registry* registry);
  // Full wire round trip: request leg, execute, response leg.
  Response roundtrip(const Request& request,
                     metrics::Registry* registry = nullptr);

  TrustDaemonConfig config_;
  std::atomic<std::uint64_t> calls_{0};
  core::GccExecutor executor_;  // fallback mode only
  std::optional<VerbDispatcher> dispatcher_;
};

}  // namespace anchor::anchord
