#include "anchord/daemon.hpp"

#include <cassert>
#include <chrono>

namespace anchor::anchord {

namespace {

Response base_response(const Request& request) {
  Response response;
  response.correlation_id = request.correlation_id;
  response.verb = request.verb;
  return response;
}

// Rebuilds the caller-facing VerifyResult from what crossed the wire. The
// accepted path is re-parsed from DER; rejected-path diagnostics and the
// GCC stats breakdown stay daemon-side by design.
chain::VerifyResult to_verify_result(const Response& response) {
  chain::VerifyResult result;
  result.ok = response.ok;
  result.kind = response.kind;
  result.error = response.detail;
  result.paths_explored = response.stats.paths_explored;
  result.gcc_verdict.gccs_evaluated = response.stats.gccs_evaluated;
  result.gcc_verdict.facts_encoded = response.stats.facts_encoded;
  result.gcc_verdict.allowed =
      response.kind != chain::ErrorKind::kGccDenied;
  if (response.kind == chain::ErrorKind::kGccDenied &&
      response.detail.rfind("gcc:", 0) == 0) {
    result.gcc_verdict.failed_gcc = response.detail.substr(4);
  }
  result.chain.reserve(response.chain_der.size());
  for (const Bytes& der : response.chain_der) {
    auto cert = x509::Certificate::parse(BytesView(der));
    if (cert) result.chain.push_back(std::move(cert).take());
  }
  return result;
}

}  // namespace

TrustDaemon::TrustDaemon(TrustDaemonConfig config) : config_(config) {
  assert(config_.store != nullptr && config_.scheme != nullptr);
  if (config_.service != nullptr) {
    VerbDispatcher::Backends backends;
    backends.service = config_.service;
    backends.store = config_.store;
    backends.feed = config_.feed;
    backends.feed_source = config_.feed_source;
    dispatcher_.emplace(backends);
  }
}

void TrustDaemon::simulate_ipc_latency() const {
  if (config_.latency_ns == 0) return;
  auto start = std::chrono::steady_clock::now();
  auto target = std::chrono::nanoseconds(config_.latency_ns);
  while (std::chrono::steady_clock::now() - start < target) {
    // Spin: models a synchronous kernel round trip without descheduling
    // noise that would make the E9 sweep unstable.
  }
}

Result<Request> TrustDaemon::marshal_request(const Request& request) const {
  Bytes frame = net::encode_frame(encode_request(request));
  if (frame.size() > 5 + config_.max_frame_bytes) {
    return err("anchord: request frame (" + std::to_string(frame.size()) +
               " bytes) exceeds the " +
               std::to_string(config_.max_frame_bytes) + "-byte cap");
  }
  auto decoded = net::decode_frame(frame);
  if (!decoded) return err(decoded.error());
  if (!decoded.value().complete) {
    return err("anchord: request frame failed to round-trip");
  }
  return decode_request(decoded.value().message);
}

Result<Response> TrustDaemon::marshal_response(const Response& response) const {
  Bytes frame = net::encode_frame(encode_response(response));
  if (frame.size() > 5 + config_.max_frame_bytes) {
    return err("anchord: response frame (" + std::to_string(frame.size()) +
               " bytes) exceeds the " +
               std::to_string(config_.max_frame_bytes) + "-byte cap");
  }
  auto decoded = net::decode_frame(frame);
  if (!decoded) return err(decoded.error());
  if (!decoded.value().complete) {
    return err("anchord: response frame failed to round-trip");
  }
  return decode_response(decoded.value().message);
}

Response TrustDaemon::roundtrip(const Request& request,
                                metrics::Registry* registry) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  simulate_ipc_latency();  // request leg

  Response response;
  auto wire_request = marshal_request(request);
  if (!wire_request) {
    response = base_response(request);
    response.kind = chain::ErrorKind::kMalformedRequest;
    response.detail = wire_request.error();
  } else {
    response = execute(wire_request.value(), registry);
  }

  auto wire_response = marshal_response(response);
  simulate_ipc_latency();  // response leg
  if (!wire_response) {
    // The verdict could not be carried back across the wire: fail closed
    // rather than hand the caller a response the transport would not have
    // delivered.
    Response failure = base_response(request);
    failure.kind = chain::ErrorKind::kInternal;
    failure.detail = wire_response.error();
    return failure;
  }
  return std::move(wire_response).take();
}

Response TrustDaemon::execute(const Request& request,
                              metrics::Registry* registry) {
  if (dispatcher_.has_value()) return dispatcher_->dispatch(request, registry);
  return execute_fallback(request, registry);
}

Response TrustDaemon::execute_fallback(const Request& request,
                                       metrics::Registry* registry) {
  Response response = base_response(request);
  switch (request.verb) {
    case Verb::kVerify: {
      chain::VerifyOptions options;
      if (request.usage == chain::usage_name(chain::Usage::kTls)) {
        options.usage = chain::Usage::kTls;
      } else if (request.usage == chain::usage_name(chain::Usage::kSmime)) {
        options.usage = chain::Usage::kSmime;
      } else {
        response.kind = chain::ErrorKind::kMalformedRequest;
        response.detail = "verify: unknown usage '" + request.usage + "'";
        return response;
      }
      options.time = request.time;
      options.hostname = request.hostname;
      options.max_depth = request.max_depth;
      options.require_ev = request.require_ev;
      options.check_signatures = request.check_signatures;
      options.run_gccs = request.run_gccs;

      // Deserialize fresh: the uncached daemon's marshaling cost is the
      // point of this mode.
      auto leaf = x509::Certificate::parse(BytesView(request.leaf_der));
      if (!leaf) {
        response.kind = chain::ErrorKind::kMalformedRequest;
        response.detail = "daemon: " + leaf.error();
        return response;
      }
      chain::CertificatePool pool;
      for (const Bytes& der : request.intermediates_der) {
        auto cert = x509::Certificate::parse(BytesView(der));
        if (!cert) {
          response.kind = chain::ErrorKind::kMalformedRequest;
          response.detail = "daemon: " + cert.error();
          return response;
        }
        pool.add(std::move(cert).take());
      }
      chain::ChainVerifier verifier(*config_.store, *config_.scheme);
      chain::VerifyResult result = verifier.verify(leaf.value(), pool, options);
      response.ok = result.ok;
      response.kind = result.kind;
      response.detail = result.error;
      response.stats.chain_len =
          static_cast<std::uint32_t>(result.chain.size());
      response.stats.paths_explored = result.paths_explored;
      response.stats.gccs_evaluated = result.gcc_verdict.gccs_evaluated;
      response.stats.facts_encoded = result.gcc_verdict.facts_encoded;
      response.stats.epoch = config_.store->epoch();
      response.chain_der.reserve(result.chain.size());
      for (const auto& cert : result.chain) {
        response.chain_der.push_back(cert->der());
      }
      return response;
    }
    case Verb::kEvaluateGccs: {
      core::Chain chain;
      chain.reserve(1 + request.intermediates_der.size());
      auto push = [&](const Bytes& der) {
        auto cert = x509::Certificate::parse(BytesView(der));
        if (!cert) {
          response.kind = chain::ErrorKind::kMalformedRequest;
          response.detail = cert.error();
          return false;
        }
        chain.push_back(std::move(cert).take());
        return true;
      };
      if (!push(request.leaf_der)) return response;
      for (const Bytes& der : request.intermediates_der) {
        if (!push(der)) return response;
      }
      response.stats.chain_len = static_cast<std::uint32_t>(chain.size());
      response.stats.epoch = config_.store->epoch();
      const auto gccs =
          config_.store->gccs_for_root(chain.back()->fingerprint_hex());
      response.ok = true;
      if (!gccs.empty()) {
        core::GccVerdict verdict =
            executor_.evaluate(chain, request.usage, gccs);
        response.stats.gccs_evaluated = verdict.gccs_evaluated;
        response.stats.facts_encoded = verdict.facts_encoded;
        if (!verdict.allowed) {
          response.ok = false;
          response.kind = chain::ErrorKind::kGccDenied;
          response.detail = "gcc:" + verdict.failed_gcc;
        }
      }
      return response;
    }
    case Verb::kMetrics: {
      metrics::Registry& target =
          registry != nullptr ? *registry : metrics::Registry::global();
      rootstore::export_store_metrics(*config_.store, target);
      response.ok = true;
      response.detail = target.expose();
      response.stats.epoch = config_.store->epoch();
      return response;
    }
    case Verb::kFeedStatus: {
      if (config_.feed == nullptr) {
        response.kind = chain::ErrorKind::kUnavailable;
        response.detail = "feed-status: no RSF client attached to this daemon";
        return response;
      }
      response.ok = true;
      response.detail = config_.feed->feed_status().to_text();
      response.stats.epoch = config_.store->epoch();
      return response;
    }
    case Verb::kVerifyBatch: {
      // The fallback path exists for daemons wired without a VerifyService;
      // batch verification leans on the service's shared-arena path, so
      // without one the verb is simply not served.
      response.kind = chain::ErrorKind::kUnavailable;
      response.detail = "verify-batch: requires an attached VerifyService";
      return response;
    }
    case Verb::kFeedFetch: {
      response.kind = chain::ErrorKind::kUnavailable;
      response.detail = "feed-fetch: requires an attached VerifyService";
      return response;
    }
  }
  response.kind = chain::ErrorKind::kMalformedRequest;
  response.detail = "unknown verb";
  return response;
}

bool TrustDaemon::evaluate_gccs(std::span<const Bytes> chain_der,
                                std::string_view usage) {
  Request request;
  request.correlation_id = 1;
  request.verb = Verb::kEvaluateGccs;
  request.usage = std::string(usage);
  if (!chain_der.empty()) {
    request.leaf_der = chain_der.front();
    request.intermediates_der.assign(chain_der.begin() + 1, chain_der.end());
  }
  return roundtrip(request).ok;
}

chain::VerifyResult TrustDaemon::validate(
    const Bytes& leaf_der, std::span<const Bytes> intermediates_der,
    const chain::VerifyOptions& options) {
  Request request;
  request.correlation_id = 1;
  request.verb = Verb::kVerify;
  request.usage = chain::usage_name(options.usage);
  request.time = options.time;
  request.hostname = options.hostname;
  request.max_depth = static_cast<std::uint32_t>(options.max_depth);
  request.require_ev = options.require_ev;
  request.check_signatures = options.check_signatures;
  request.run_gccs = options.run_gccs;
  request.leaf_der = leaf_der;
  request.intermediates_der.assign(intermediates_der.begin(),
                                   intermediates_der.end());
  return to_verify_result(roundtrip(request));
}

std::string TrustDaemon::metrics(metrics::Registry& registry) {
  Request request;
  request.correlation_id = 1;
  request.verb = Verb::kMetrics;
  return roundtrip(request, &registry).detail;
}

Response TrustDaemon::feed_status() {
  Request request;
  request.correlation_id = 1;
  request.verb = Verb::kFeedStatus;
  return roundtrip(request);
}

}  // namespace anchor::anchord
