// Readiness-driven event loop for anchord sessions (DESIGN.md "anchord
// reactor"). One Reactor owns one epoll instance and one loop thread; any
// number of sessions register a level-triggered readiness fd and get their
// on_readable()/on_writable() callbacks invoked from the loop thread.
//
// Division of labour with AnchordServer:
//   * the Reactor knows fds and interest sets — it never decodes a frame;
//   * the server's Session (a Reactor::Handler) owns the read buffer,
//     frame decoding, and the write-ready flush queue.
//
// Threading contract:
//   * on_readable()/on_writable() run on the loop thread only, never
//     concurrently with each other for the same handler, and never with
//     the Reactor's internal mutex held (handlers may call back into
//     arm_write from inside a callback, or from any other thread);
//   * add()/arm_write() are safe from any thread: epoll_ctl is kernel-
//     thread-safe and the interest-set bookkeeping takes the mutex;
//   * a handler is kept alive by shared_ptr for as long as it is
//     registered; once both read and write interest are gone the entry is
//     dropped and the loop never touches the handler again.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace anchor::anchord {

class Reactor {
 public:
  class Handler {
   public:
    virtual ~Handler() = default;
    // The registered fd reported readable (or the peer hung up). Return
    // false to drop read interest — the session's read side is over.
    virtual bool on_readable() = 0;
    // The registered fd reported writable after arm_write(). Return false
    // to drop write interest (the flush queue drained or the peer died).
    virtual bool on_writable() = 0;
  };

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // False when epoll/eventfd setup failed at construction; callers should
  // then serve sessions on their blocking path instead.
  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  // Registers `fd` for read readiness on behalf of `handler`. One fd maps
  // to one handler; re-adding an fd that is still registered fails.
  bool add(int fd, std::shared_ptr<Handler> handler);

  // Requests on_writable() callbacks for `fd` until on_writable() returns
  // false. If the fd's entry is gone (the read side already closed), the
  // fd is re-registered for write interest only — a handler flushing a
  // backpressured response after peer-EOF still gets its callbacks.
  bool arm_write(int fd, std::shared_ptr<Handler> handler);

  // Drops `fd`'s registration iff it still belongs to `handler` (an fd
  // reused by a newer session is left alone). Sessions call this once
  // finished so an entry whose fd died before its last event fired cannot
  // linger and shadow a future session on the recycled fd.
  void forget(int fd, const std::shared_ptr<Handler>& handler);

  // Instantaneous registered-session count (observability).
  std::size_t sessions() const;

 private:
  struct Entry {
    std::shared_ptr<Handler> handler;
    std::uint32_t events = 0;  // EPOLLIN / EPOLLOUT interest currently set
    // Bumped by every arm_write: the loop refuses to drop EPOLLOUT when a
    // re-arm raced its in-flight on_writable() == false (the classic
    // arm/disarm lost-wakeup).
    std::uint64_t write_gen = 0;
  };

  void loop();
  void wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  mutable std::mutex mu_;
  std::unordered_map<int, Entry> entries_;
  std::uint64_t arm_seq_ = 0;  // guarded by mu_; feeds Entry::write_gen
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace anchor::anchord
