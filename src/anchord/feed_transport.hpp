// rsf::FeedTransport over the anchord wire protocol: turns a connected
// AnchordClient into the transport an RsfClient polls, so one anchord
// instance can fan the authenticated feed out to downstream pollers
// (DESIGN.md "Authenticated feed distribution").
//
// Only the Merkle poll path is served. head_sequence() is answered with a
// tree-head-only probe (max_snapshots = 0), which is what keeps a
// no-change poll O(1) bytes on the wire; fetch_since/fetch_delta — the
// legacy unauthenticated path — deliberately err so a misconfigured
// RsfClient pinned to PollPath::kLegacy fails loudly instead of silently
// trusting unproven snapshots from a remote daemon.
#pragma once

#include <string>

#include "anchord/client.hpp"
#include "rsf/transport.hpp"

namespace anchor::anchord {

class WireFeedTransport : public rsf::FeedTransport {
 public:
  // `client` must outlive the transport; same single-thread contract as
  // AnchordClient itself. `publisher` names the upstream feed — the
  // poller's key registry derives the expected signing key from it out of
  // band, exactly as with a local transport, so the daemon in the middle
  // holds no trust: tampering shows up as a signature or proof failure.
  WireFeedTransport(AnchordClient& client, std::string publisher);

  const std::string& name() const override { return publisher_; }
  const Bytes& key_id() const override { return key_id_; }

  bool supports_feed_fetch() const override { return true; }
  Result<rsf::FeedFetch> feed_fetch(
      const rsf::FeedFetchQuery& query) override;
  Result<std::uint64_t> head_sequence() override;

  Result<std::vector<rsf::Snapshot>> fetch_since(
      std::uint64_t after_sequence) override;
  Result<std::string> fetch_delta(std::uint64_t sequence) override;

 private:
  AnchordClient& client_;
  std::string publisher_;
  Bytes key_id_;
};

}  // namespace anchor::anchord
