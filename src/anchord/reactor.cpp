#include "anchord/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>

namespace anchor::anchord {

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (!ok()) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  thread_ = std::thread([this] { loop(); });
}

Reactor::~Reactor() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake();
    thread_.join();
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void Reactor::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

bool Reactor::add(int fd, std::shared_ptr<Handler> handler) {
  if (!ok() || fd < 0 || handler == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(fd);
  if (!inserted) return false;
  it->second.handler = std::move(handler);
  it->second.events = EPOLLIN;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    entries_.erase(it);
    return false;
  }
  return true;
}

bool Reactor::arm_write(int fd, std::shared_ptr<Handler> handler) {
  if (!ok() || fd < 0 || handler == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fd);
  if (it == entries_.end()) {
    // Read side already gone: re-register for write interest alone so the
    // flush queue can still drain.
    Entry entry;
    entry.handler = std::move(handler);
    entry.events = EPOLLOUT;
    entry.write_gen = ++arm_seq_;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
    entries_.emplace(fd, std::move(entry));
    return true;
  }
  it->second.write_gen = ++arm_seq_;
  if ((it->second.events & EPOLLOUT) != 0) return true;  // already armed
  it->second.events |= EPOLLOUT;
  epoll_event ev{};
  ev.events = it->second.events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Reactor::forget(int fd, const std::shared_ptr<Handler>& handler) {
  if (!ok() || fd < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fd);
  if (it == entries_.end() || it->second.handler != handler) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  entries_.erase(it);
}

std::size_t Reactor::sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void Reactor::loop() {
  std::array<epoll_event, 64> events;
  for (;;) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll itself failed: nothing sane left to do
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t what = events[static_cast<std::size_t>(i)].events;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drained, sizeof drained);
        continue;
      }
      // Snapshot the handler outside the lock for the callback; a stale
      // event for an fd that was dropped (and possibly reused) since the
      // epoll_wait returned just misses the lookup and is skipped.
      std::shared_ptr<Handler> handler;
      std::uint32_t interest = 0;
      std::uint64_t gen = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(fd);
        if (it == entries_.end()) continue;
        handler = it->second.handler;
        interest = it->second.events;
        gen = it->second.write_gen;
      }
      std::uint32_t still = interest;
      // EPOLLHUP/EPOLLERR surface through the read path: read_some reports
      // end-of-stream and the handler winds the session down.
      if ((interest & EPOLLIN) != 0 &&
          (what & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        if (!handler->on_readable()) still &= ~EPOLLIN;
      }
      if ((interest & EPOLLOUT) != 0 &&
          (what & (EPOLLOUT | EPOLLHUP | EPOLLERR)) != 0) {
        if (!handler->on_writable()) still &= ~EPOLLOUT;
      }
      if (still == interest) continue;
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(fd);
      if (it == entries_.end() || it->second.handler != handler) continue;
      // An arm_write that raced the callback (handler enqueued more bytes
      // after on_writable() decided the queue was dry) bumped write_gen:
      // honour the newer arm instead of the stale disarm.
      if (it->second.write_gen != gen) still |= interest & EPOLLOUT;
      if (still == interest) continue;
      // Merge with any interest armed concurrently during the callbacks:
      // drop only the bits the callbacks released.
      it->second.events &= ~(interest & ~still);
      if (it->second.events == 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        entries_.erase(it);
        continue;
      }
      epoll_event ev{};
      ev.events = it->second.events;
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    }
  }
}

}  // namespace anchor::anchord
