#include "anchord/conduit.hpp"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

namespace anchor::anchord {

namespace {

// --- in-memory pair -------------------------------------------------------

// One direction of the pipe. Writers append under the lock; readers wait
// on the condvar. `closed` means no more bytes will ever arrive (either
// endpoint closed), but already-buffered bytes still drain.
//
// `event_fd` is the reader-side readiness signal for the epoll reactor: the
// writer bumps it after every append (and on close) under the same lock
// that guards the buffer, so a reader that drains the eventfd before
// checking the buffer can never miss a wakeup. -1 when eventfd creation
// failed at pair construction (the endpoint then reports no readiness fd
// and servers fall back to blocking reads).
struct PipeDir {
  std::mutex mu;
  std::condition_variable cv;
  Bytes buf;
  bool closed = false;
  int event_fd = -1;

  ~PipeDir() {
    if (event_fd >= 0) ::close(event_fd);
  }

  // Callers hold `mu`.
  void signal_locked() {
    if (event_fd < 0) return;
    const std::uint64_t one = 1;
    // EFD_NONBLOCK write can only fail at counter saturation (2^64-2),
    // unreachable while readers drain; ignore the result either way.
    [[maybe_unused]] ssize_t n = ::write(event_fd, &one, sizeof one);
  }

  // Callers hold `mu`. Zeroes the counter so level-triggered epoll stops
  // reporting readiness once the buffer is drained.
  void clear_signal_locked() {
    if (event_fd < 0) return;
    std::uint64_t count = 0;
    [[maybe_unused]] ssize_t n = ::read(event_fd, &count, sizeof count);
  }
};

class MemoryEndpoint final : public Conduit {
 public:
  MemoryEndpoint(std::shared_ptr<PipeDir> incoming,
                 std::shared_ptr<PipeDir> outgoing)
      : incoming_(std::move(incoming)), outgoing_(std::move(outgoing)) {}

  ~MemoryEndpoint() override { close(); }

  bool write(BytesView data) override {
    std::lock_guard<std::mutex> lock(outgoing_->mu);
    if (outgoing_->closed) return false;
    append(outgoing_->buf, data);
    outgoing_->signal_locked();
    outgoing_->cv.notify_all();
    return true;
  }

  int read_some(Bytes& out, std::size_t max, int timeout_ms) override {
    std::unique_lock<std::mutex> lock(incoming_->mu);
    if (timeout_ms == 0) {
      // Event-driven caller: reset the readiness signal before inspecting
      // the buffer (writers signal under this lock, so any append after
      // the reset re-signals and epoll fires again — no lost wakeups).
      incoming_->clear_signal_locked();
    } else {
      incoming_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
        return !incoming_->buf.empty() || incoming_->closed;
      });
    }
    if (incoming_->buf.empty()) return incoming_->closed ? -1 : 0;
    const std::size_t n = std::min(max, incoming_->buf.size());
    out.insert(out.end(), incoming_->buf.begin(),
               incoming_->buf.begin() + static_cast<std::ptrdiff_t>(n));
    incoming_->buf.erase(incoming_->buf.begin(),
                         incoming_->buf.begin() + static_cast<std::ptrdiff_t>(n));
    return static_cast<int>(n);
  }

  void close() override {
    for (const auto& dir : {incoming_, outgoing_}) {
      std::lock_guard<std::mutex> lock(dir->mu);
      dir->closed = true;
      dir->signal_locked();
      dir->cv.notify_all();
    }
  }

  int readiness_fd() const override { return incoming_->event_fd; }

  // write() appends to an unbounded in-memory buffer: it either takes
  // everything or the pipe is closed, so the default write_some (delegate
  // to write) is exact and writable_fd() stays -1.

 private:
  std::shared_ptr<PipeDir> incoming_;
  std::shared_ptr<PipeDir> outgoing_;
};

// --- socketpair pair ------------------------------------------------------

class FdEndpoint final : public Conduit {
 public:
  explicit FdEndpoint(int fd) : fd_(fd) {}

  ~FdEndpoint() override {
    close();
    ::close(fd_);  // shutdown() in close() already unblocked any poller
  }

  bool write(BytesView data) override {
    std::size_t sent = 0;
    while (sent < data.size()) {
      // MSG_NOSIGNAL: a closed peer must surface as false, not SIGPIPE.
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  int read_some(Bytes& out, std::size_t max, int timeout_ms) override {
    struct pollfd pfd {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) return 0;                       // timeout
    if (rc < 0) return errno == EINTR ? 0 : -1;  // treat EINTR as a tick
    Bytes chunk(max);
    const ssize_t n = ::recv(fd_, chunk.data(), max, 0);
    if (n <= 0) return -1;  // EOF or error: end-of-stream either way
    out.insert(out.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(n));
    return static_cast<int>(n);
  }

  void close() override {
    bool expected = false;
    if (shut_.compare_exchange_strong(expected, true)) {
      // shutdown, not ::close: the fd stays valid (a concurrent poll()er
      // must never see it recycled); the descriptor is released in the
      // destructor only.
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  int readiness_fd() const override { return fd_; }

  int write_some(BytesView data) override {
    for (;;) {
      const ssize_t n = ::send(fd_, data.data(), data.size(),
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n >= 0) return static_cast<int>(n);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
      return -1;
    }
  }

  int writable_fd() const override { return fd_; }

 private:
  const int fd_;
  std::atomic<bool> shut_{false};
};

}  // namespace

ConduitPair make_memory_conduit() {
  auto a_to_b = std::make_shared<PipeDir>();
  auto b_to_a = std::make_shared<PipeDir>();
  // Best-effort readiness fds: on eventfd exhaustion the pair still works,
  // it just reports no readiness_fd and servers use their blocking path.
  a_to_b->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  b_to_a->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  return {std::make_unique<MemoryEndpoint>(b_to_a, a_to_b),
          std::make_unique<MemoryEndpoint>(a_to_b, b_to_a)};
}

Result<ConduitPair> make_socketpair_conduit() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return err(std::string("anchord: socketpair: ") + std::strerror(errno));
  }
  return ConduitPair{std::make_unique<FdEndpoint>(fds[0]),
                     std::make_unique<FdEndpoint>(fds[1])};
}

}  // namespace anchor::anchord
