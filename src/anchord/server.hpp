// The anchord serving layer: readiness-driven sessions speaking the framed
// wire protocol over a Conduit, executing verbs on a worker pool.
//
// Serving semantics (each has a dedicated test in anchord_test.cpp):
//
//   * Event-driven sessions — one epoll Reactor drives every connection
//     whose Conduit exposes a readiness fd: frames are decoded zero-copy
//     out of the session's read buffer (net::decode_frame_view), handler
//     completions enqueue their response and flush with non-blocking
//     writes, and a flow-controlled peer parks the frame on the session's
//     write queue until the reactor reports writability — no thread ever
//     blocks inside a session. Conduits without a readiness fd are served
//     on the legacy blocking per-session loop with identical semantics.
//   * Pipelining — a session decodes frames as bytes arrive and admits
//     every complete request immediately; responses are written as their
//     handlers finish, in any order, matched by correlation id.
//   * Fail-closed overload — admissions are bounded by
//     `max_in_flight` across the whole daemon. A request over the bound is
//     answered *synchronously* with kOverloaded (and counted), never
//     silently dropped and never queued unboundedly: a trust daemon that
//     stalls silently under load turns every client timeout into a policy
//     decision made by nobody.
//   * Request timeouts — with `request_timeout_ms` set, a request whose
//     deadline passed before its handler ran is answered kTimeout without
//     touching the verifier (the work it would do is already worthless).
//   * Session robustness — an unknown-type frame with a credible declared
//     length is answered with a kAlert frame and skipped, keeping the
//     session alive. A frame whose declared length exceeds the codec cap
//     is different: that length is attacker-controlled garbage, and using
//     it as a skip count would silently swallow up to 4 GiB of valid
//     frames — so the session is alerted and torn down instead. The same
//     teardown applies when buffered-but-unframed bytes exceed
//     `max_buffer_bytes`, because at that point framing can't be trusted.
//   * Bounded reads — bytes are pulled `read_chunk` at a time and complete
//     frames are consumed eagerly, so one connection cannot force the
//     server to buffer more than `max_buffer_bytes` + one chunk.
//
// Threading: serve() blocks for the life of one connection and is safe to
// call concurrently from many threads (one per connection, as the tests
// and bench do); under the reactor it is a registration + wait, not a
// loop. Handler execution is shared: all sessions submit to one worker
// pool. serve() returns only after every response it admitted has been
// written (or the stream died), so the caller may destroy the Conduit as
// soon as serve() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "anchord/conduit.hpp"
#include "anchord/dispatch.hpp"
#include "anchord/reactor.hpp"
#include "anchord/wire.hpp"
#include "util/metrics.hpp"
#include "util/threadpool.hpp"

namespace anchor::anchord {

struct AnchordConfig {
  std::size_t workers = 4;             // handler pool size
  std::size_t max_in_flight = 64;      // daemon-wide admission bound
  int request_timeout_ms = 0;          // 0 = no deadline
  std::size_t read_chunk = 4096;       // per-read_some byte cap
  std::size_t max_buffer_bytes = 1 << 22;  // unframed-bytes cap per session
  int idle_poll_ms = 50;               // blocking-path read_some granularity
  // Test seam: runs at the start of every handler, before the deadline
  // check. Lets the robustness tests hold requests in flight (overload)
  // or past their deadline (timeout) deterministically.
  std::function<void()> handler_gate;
};

class AnchordServer {
 public:
  AnchordServer(VerbDispatcher::Backends backends, AnchordConfig config = {},
                metrics::Registry& registry = metrics::Registry::global());

  AnchordServer(const AnchordServer&) = delete;
  AnchordServer& operator=(const AnchordServer&) = delete;

  // Serves one connection until the peer closes (or the session is torn
  // down); returns after all admitted responses are written. The Conduit
  // must outlive the call. Destroy the server only after every serve()
  // call has returned.
  void serve(Conduit& conduit);

  // Instantaneous admission level (load signal for tests and anchorctl).
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  struct Session;

  // Legacy per-session pump for conduits with no readiness fd (or when
  // reactor setup failed): blocks in read_some, shares every other code
  // path with the reactor.
  void serve_blocking(Conduit& conduit, const std::shared_ptr<Session>& session);

  // Decodes and handles every complete frame buffered on `session`,
  // zero-copy, with one batched erase of the consumed prefix. Returns
  // false when the session must be torn down.
  bool drain_session(Session& session);
  void on_frame(Session& session, net::MsgType type, BytesView payload);
  void admit(Session& session, Request request);
  void send_alert(Session& session, const std::string& reason);

  VerbDispatcher dispatcher_;
  AnchordConfig config_;
  ThreadPool pool_;
  Reactor reactor_;
  std::atomic<std::size_t> in_flight_{0};

  metrics::Counter& m_connections_;
  metrics::Counter& m_req_verify_;
  metrics::Counter& m_req_gccs_;
  metrics::Counter& m_req_metrics_;
  metrics::Counter& m_req_feed_;
  metrics::Counter& m_req_batch_;
  metrics::Counter& m_req_feedfetch_;
  metrics::Counter& m_overloads_;
  metrics::Counter& m_timeouts_;
  metrics::Counter& m_malformed_;
  metrics::Counter& m_alerts_;
  metrics::Counter& m_bytes_read_;
  metrics::Counter& m_bytes_written_;
  metrics::Gauge& m_in_flight_;
  metrics::Gauge& m_queue_depth_;
  metrics::Histogram& m_serve_latency_;
};

}  // namespace anchor::anchord
