// The anchord serving layer: a concurrent session loop speaking the framed
// wire protocol over a Conduit, executing verbs on a worker pool.
//
// Serving semantics (each has a dedicated test in anchord_test.cpp):
//
//   * Pipelining — a session decodes frames as bytes arrive and admits
//     every complete request immediately; responses are written as their
//     handlers finish, in any order, matched by correlation id.
//   * Fail-closed overload — admissions are bounded by
//     `max_in_flight` across the whole daemon. A request over the bound is
//     answered *synchronously* with kOverloaded (and counted), never
//     silently dropped and never queued unboundedly: a trust daemon that
//     stalls silently under load turns every client timeout into a policy
//     decision made by nobody.
//   * Request timeouts — with `request_timeout_ms` set, a request whose
//     deadline passed before its handler ran is answered kTimeout without
//     touching the verifier (the work it would do is already worthless).
//   * Session robustness — an oversized or unknown-type frame is answered
//     with a kAlert frame and *skipped* (the declared length tells the
//     loop how many bytes to discard), keeping the session alive; only a
//     session whose buffered-but-unframed bytes exceed `max_buffer_bytes`
//     is torn down, because at that point framing itself can't be trusted.
//   * Bounded reads — bytes are pulled `read_chunk` at a time and complete
//     frames are consumed eagerly, so one connection cannot force the
//     server to buffer more than `max_buffer_bytes` + one chunk.
//
// Threading: serve() blocks for the life of one connection and is safe to
// call concurrently from many threads (one per connection, as the tests
// and bench do). Handler execution is shared: all sessions submit to one
// worker pool. serve() returns only after every response it admitted has
// been written, so per-session state lives on serve()'s stack.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "anchord/conduit.hpp"
#include "anchord/dispatch.hpp"
#include "anchord/wire.hpp"
#include "util/metrics.hpp"
#include "util/threadpool.hpp"

namespace anchor::anchord {

struct AnchordConfig {
  std::size_t workers = 4;             // handler pool size
  std::size_t max_in_flight = 64;      // daemon-wide admission bound
  int request_timeout_ms = 0;          // 0 = no deadline
  std::size_t read_chunk = 4096;       // per-read_some byte cap
  std::size_t max_buffer_bytes = 1 << 22;  // unframed-bytes cap per session
  int idle_poll_ms = 50;               // read_some timeout granularity
  // Test seam: runs at the start of every handler, before the deadline
  // check. Lets the robustness tests hold requests in flight (overload)
  // or past their deadline (timeout) deterministically.
  std::function<void()> handler_gate;
};

class AnchordServer {
 public:
  AnchordServer(VerbDispatcher::Backends backends, AnchordConfig config = {},
                metrics::Registry& registry = metrics::Registry::global());

  AnchordServer(const AnchordServer&) = delete;
  AnchordServer& operator=(const AnchordServer&) = delete;

  // Serves one connection until the peer closes (or the session is torn
  // down); returns after all admitted responses are written. The Conduit
  // must outlive the call. Destroy the server only after every serve()
  // call has returned.
  void serve(Conduit& conduit);

  // Instantaneous admission level (load signal for tests and anchorctl).
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  struct Session;

  // Decodes and handles every complete frame in `buffer`. Returns false
  // when the session must be torn down.
  bool drain_buffer(Session& session, Bytes& buffer,
                    std::size_t& skip_remaining);
  void on_message(Session& session, net::Message message);
  void admit(Session& session, Request request);
  void send_alert(Session& session, const std::string& reason);

  VerbDispatcher dispatcher_;
  AnchordConfig config_;
  ThreadPool pool_;
  std::atomic<std::size_t> in_flight_{0};

  metrics::Counter& m_connections_;
  metrics::Counter& m_req_verify_;
  metrics::Counter& m_req_gccs_;
  metrics::Counter& m_req_metrics_;
  metrics::Counter& m_req_feed_;
  metrics::Counter& m_overloads_;
  metrics::Counter& m_timeouts_;
  metrics::Counter& m_malformed_;
  metrics::Counter& m_alerts_;
  metrics::Counter& m_bytes_read_;
  metrics::Counter& m_bytes_written_;
  metrics::Gauge& m_in_flight_;
  metrics::Gauge& m_queue_depth_;
  metrics::Histogram& m_serve_latency_;
};

}  // namespace anchor::anchord
