// Byte-stream endpoints for anchord sessions. The server's session loop
// and the client speak to a Conduit, never to a socket API, so the same
// code serves an in-memory pipe (fast, deterministic, what the tests and
// bench use by default) and a real AF_UNIX socketpair (what a deployed
// anchord would hand out; exercised by the socketpair round-trip test).
//
// A Conduit is a reliable, ordered, bidirectional byte stream — framing is
// entirely the codec's job (net/transport.hpp). Endpoints come in
// connected pairs; closing either endpoint eventually surfaces as
// end-of-stream (-1) on both sides, after buffered bytes drain.
#pragma once

#include <memory>
#include <utility>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace anchor::anchord {

class Conduit {
 public:
  virtual ~Conduit() = default;

  // Writes all of `data`, blocking as needed. Returns false once the
  // stream is closed (bytes may have been partially delivered first).
  virtual bool write(BytesView data) = 0;

  // Appends up to `max` available bytes to `out`, blocking up to
  // `timeout_ms`. Returns the byte count (> 0), 0 on timeout with the
  // stream still open, or -1 on end-of-stream with all buffered bytes
  // already drained.
  virtual int read_some(Bytes& out, std::size_t max, int timeout_ms) = 0;

  // Half-close is not modelled: close() ends both directions. Idempotent
  // and safe to call concurrently with a blocked read (which unblocks).
  virtual void close() = 0;

  // --- event-driven hooks (anchord's epoll reactor) -----------------------
  //
  // A readiness-driven server never blocks in read_some/write; instead it
  // epolls readiness_fd() and drains with read_some(..., timeout_ms=0)
  // until 0 is returned. The fd is level-triggered in spirit: it reads
  // ready whenever bytes *may* be available or the stream has closed
  // (spurious wakeups are allowed; lost wakeups are not). Endpoints that
  // cannot supply one return -1 and the server falls back to its blocking
  // per-session loop.
  virtual int readiness_fd() const { return -1; }

  // Non-blocking write: accepts up to data.size() bytes and returns the
  // count actually taken (0 = flow-controlled, try again on writability),
  // or -1 once the stream is closed. The default delegates to the blocking
  // write(), which is correct for endpoints whose writes cannot block.
  virtual int write_some(BytesView data) {
    return write(data) ? static_cast<int>(data.size()) : -1;
  }

  // Fd to watch (EPOLLOUT) after a short write_some; -1 when writes never
  // flow-control (in-memory pipes), in which case write_some always takes
  // everything or fails.
  virtual int writable_fd() const { return -1; }
};

using ConduitPair = std::pair<std::unique_ptr<Conduit>, std::unique_ptr<Conduit>>;

// A connected pair of in-memory endpoints (mutex + condvar byte queues).
ConduitPair make_memory_conduit();

// A connected pair over an AF_UNIX socketpair(2): real file descriptors,
// poll(2)-based read timeouts. err() if the kernel refuses the pair.
Result<ConduitPair> make_socketpair_conduit();

}  // namespace anchor::anchord
