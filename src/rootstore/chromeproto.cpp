#include "rootstore/chromeproto.hpp"

#include <cctype>
#include <cstdint>
#include <unordered_set>

namespace anchor::rootstore::chromeproto {

const char* to_string(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::kSyntax: return "syntax";
    case ErrorClass::kUnknownField: return "unknown-field";
    case ErrorClass::kDuplicateField: return "duplicate-field";
    case ErrorClass::kBadHex: return "bad-hex";
    case ErrorClass::kOutOfRange: return "out-of-range";
    case ErrorClass::kBadVersion: return "bad-version";
    case ErrorClass::kBadDnsName: return "bad-dns-name";
    case ErrorClass::kBadOid: return "bad-oid";
    case ErrorClass::kEmptyBlock: return "empty-block";
    case ErrorClass::kMissingHash: return "missing-hash";
    case ErrorClass::kDuplicateAnchor: return "duplicate-anchor";
    case ErrorClass::kLimitExceeded: return "limit-exceeded";
  }
  return "unknown";
}

std::string ParseError::to_string() const {
  return std::string(chromeproto::to_string(cls)) + " at " +
         std::to_string(line) + ":" + std::to_string(column) + ": " + message;
}

std::string Version::to_string() const {
  std::string out;
  int count = written > 0 ? written : 1;
  for (int i = 0; i < count; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(parts[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::optional<Version> Version::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  Version v;
  std::size_t i = 0;
  while (true) {
    if (v.written == 4) return std::nullopt;  // too many components
    if (i >= text.size() || !std::isdigit(static_cast<unsigned char>(text[i])))
      return std::nullopt;  // empty component / stray character
    std::uint32_t component = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      component = component * 10 + static_cast<std::uint32_t>(text[i] - '0');
      if (component >= 32768) return std::nullopt;
      ++i;
    }
    v.parts[static_cast<std::size_t>(v.written)] =
        static_cast<std::uint16_t>(component);
    ++v.written;
    if (i == text.size()) return v;
    if (text[i] != '.') return std::nullopt;
    ++i;
  }
}

namespace {

bool is_lower_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

bool valid_sha256_hex(std::string_view text) {
  if (text.size() != 64) return false;
  for (char c : text) {
    if (!is_lower_hex(c)) return false;
  }
  return true;
}

// Permitted DNS names are matched byte-for-byte against encoded SAN
// suffixes, so anything that could never match (uppercase, wildcards,
// empty labels) is rejected at ingestion instead of silently constraining
// nothing.
bool valid_dns_name(std::string_view name) {
  if (name.empty() || name.size() > 253) return false;
  if (name.front() == '.' || name.back() == '.') return false;
  bool label_start = true;
  for (char c : name) {
    if (c == '.') {
      if (label_start) return false;  // empty label
      label_start = true;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
    label_start = false;
  }
  return !label_start;
}

bool valid_oid(std::string_view text) {
  if (text.empty() || text.front() == '.' || text.back() == '.') return false;
  int components = 1;
  bool digit_seen = false;
  for (char c : text) {
    if (c == '.') {
      if (!digit_seen) return false;
      digit_seen = false;
      ++components;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    digit_seen = true;
  }
  return digit_seen && components >= 2;
}

// ---------------------------------------------------------------------------
// Lexer. Token kinds cover exactly what the schema needs; anything else is
// a syntax error with position.

enum class Tok { kIdent, kString, kInteger, kColon, kLBrace, kRBrace, kEof };

struct Token {
  Tok kind = Tok::kEof;
  std::string text;        // ident / string payload
  std::int64_t number = 0; // integer payload
  int line = 1;
  int column = 1;
};

class Parser {
 public:
  Parser(std::string_view source, const ParseLimits& limits)
      : source_(source), limits_(limits) {}

  ParseResult run() {
    StoreFile store;
    if (source_.size() > limits_.max_bytes) {
      return fail(ErrorClass::kLimitExceeded,
                  "input exceeds " + std::to_string(limits_.max_bytes) +
                      " bytes");
    }
    if (!advance()) return result_;
    while (current_.kind != Tok::kEof) {
      if (current_.kind != Tok::kIdent) {
        return fail(ErrorClass::kSyntax, "expected top-level field name");
      }
      if (current_.text == "trust_anchors") {
        if (store.trust_anchors.size() >= limits_.max_anchors) {
          return fail(ErrorClass::kLimitExceeded, "too many trust_anchors");
        }
        TrustAnchor anchor;
        anchor.line = current_.line;
        if (!advance() || !parse_anchor(anchor)) return result_;
        if (!seen_hashes_.insert(anchor.sha256_hex).second) {
          return fail_at(anchor.line, 1, ErrorClass::kDuplicateAnchor,
                         "duplicate trust_anchors entry for " +
                             anchor.sha256_hex);
        }
        store.trust_anchors.push_back(std::move(anchor));
      } else if (current_.text == "additional_certs") {
        if (store.additional_certs.size() >= limits_.max_anchors) {
          return fail(ErrorClass::kLimitExceeded, "too many additional_certs");
        }
        AdditionalCert cert;
        if (!advance() || !parse_additional(cert)) return result_;
        store.additional_certs.push_back(std::move(cert));
      } else if (current_.text == "version_major") {
        if (store.version_major) {
          return fail(ErrorClass::kDuplicateField, "version_major repeated");
        }
        std::int64_t value = 0;
        if (!advance() || !expect_colon() || !read_integer(value)) {
          return result_;
        }
        store.version_major = value;
      } else {
        return fail(ErrorClass::kUnknownField,
                    "unknown top-level field '" + current_.text + "'");
      }
    }
    result_.store = std::move(store);
    return result_;
  }

 private:
  // --- lexing -----------------------------------------------------------
  bool lex_error(const std::string& message) {
    result_.error = ParseError{ErrorClass::kSyntax, line_, column_, message};
    return false;
  }

  void bump(char c) {
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  // Loads the next token into current_; false (with error recorded) on a
  // lexical failure.
  bool advance() {
    while (pos_ < source_.size()) {
      char c = source_[pos_];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        bump(c);
        continue;
      }
      if (c == '#') {
        while (pos_ < source_.size() && source_[pos_] != '\n') bump(source_[pos_]);
        continue;
      }
      break;
    }
    current_ = Token{};
    current_.line = line_;
    current_.column = column_;
    if (pos_ >= source_.size()) {
      current_.kind = Tok::kEof;
      return true;
    }
    char c = source_[pos_];
    if (c == ':') {
      current_.kind = Tok::kColon;
      bump(c);
      return true;
    }
    if (c == '{') {
      current_.kind = Tok::kLBrace;
      bump(c);
      return true;
    }
    if (c == '}') {
      current_.kind = Tok::kRBrace;
      bump(c);
      return true;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '_')) {
        bump(source_[pos_]);
      }
      current_.kind = Tok::kIdent;
      current_.text = std::string(source_.substr(start, pos_ - start));
      return true;
    }
    if (c == '"') {
      bump(c);
      std::string text;
      while (pos_ < source_.size()) {
        char d = source_[pos_];
        if (d == '"') {
          bump(d);
          current_.kind = Tok::kString;
          current_.text = std::move(text);
          return true;
        }
        if (d == '\n') return lex_error("newline in string literal");
        if (d == '\\') {
          bump(d);
          if (pos_ >= source_.size()) break;
          char e = source_[pos_];
          // Only the escapes the deployed files use; anything else is a
          // hole an attacker could hide bytes in.
          if (e == '"' || e == '\\') {
            text.push_back(e);
            bump(e);
            continue;
          }
          return lex_error(std::string("unsupported escape '\\") + e + "'");
        }
        text.push_back(d);
        bump(d);
      }
      return lex_error("unterminated string literal");
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Decimal or 0x hex, non-negative, must fit int64.
      std::uint64_t value = 0;
      bool hex = false;
      if (c == '0' && pos_ + 1 < source_.size() &&
          (source_[pos_ + 1] == 'x' || source_[pos_ + 1] == 'X')) {
        hex = true;
        bump(source_[pos_]);
        bump(source_[pos_]);
        if (pos_ >= source_.size() ||
            !std::isxdigit(static_cast<unsigned char>(source_[pos_]))) {
          return lex_error("malformed hex integer");
        }
      }
      bool any = false;
      while (pos_ < source_.size()) {
        char d = source_[pos_];
        std::uint64_t digit;
        if (std::isdigit(static_cast<unsigned char>(d))) {
          digit = static_cast<std::uint64_t>(d - '0');
        } else if (hex && std::isxdigit(static_cast<unsigned char>(d))) {
          digit = static_cast<std::uint64_t>(
              10 + (std::tolower(static_cast<unsigned char>(d)) - 'a'));
        } else {
          break;
        }
        const std::uint64_t base = hex ? 16 : 10;
        if (value > (static_cast<std::uint64_t>(INT64_MAX) - digit) / base) {
          result_.error = ParseError{ErrorClass::kOutOfRange, line_, column_,
                                     "integer overflows int64"};
          return false;
        }
        value = value * base + digit;
        any = true;
        bump(d);
      }
      if (!any) return lex_error("malformed integer");
      current_.kind = Tok::kInteger;
      current_.number = static_cast<std::int64_t>(value);
      return true;
    }
    if (c == '-') {
      result_.error = ParseError{ErrorClass::kOutOfRange, line_, column_,
                                 "negative values are not part of the schema"};
      return false;
    }
    return lex_error(std::string("unexpected character '") + c + "'");
  }

  // --- error plumbing ---------------------------------------------------
  ParseResult fail(ErrorClass cls, const std::string& message) {
    result_.error =
        ParseError{cls, current_.line, current_.column, message};
    return result_;
  }
  ParseResult fail_at(int line, int column, ErrorClass cls,
                      const std::string& message) {
    result_.error = ParseError{cls, line, column, message};
    return result_;
  }
  // bool-returning variant for use inside parse_* helpers.
  bool reject(ErrorClass cls, const std::string& message) {
    result_.error =
        ParseError{cls, current_.line, current_.column, message};
    return false;
  }

  // --- parsing helpers --------------------------------------------------
  bool expect_colon() {
    if (current_.kind != Tok::kColon) return reject(ErrorClass::kSyntax, "expected ':'");
    return advance();
  }

  // `field: {` and `field {` are both legal textproto for messages.
  bool open_block() {
    if (current_.kind == Tok::kColon && !advance()) return false;
    if (current_.kind != Tok::kLBrace) {
      return reject(ErrorClass::kSyntax, "expected '{'");
    }
    return advance();
  }

  bool read_string(std::string& out) {
    if (current_.kind != Tok::kString) {
      return reject(ErrorClass::kSyntax, "expected quoted string");
    }
    out = current_.text;
    return advance();
  }

  bool read_integer(std::int64_t& out) {
    if (current_.kind != Tok::kInteger) {
      return reject(ErrorClass::kSyntax, "expected integer");
    }
    out = current_.number;
    return advance();
  }

  bool read_bool(bool& out) {
    if (current_.kind != Tok::kIdent ||
        (current_.text != "true" && current_.text != "false")) {
      return reject(ErrorClass::kSyntax, "expected true or false");
    }
    out = current_.text == "true";
    return advance();
  }

  // --- message parsers --------------------------------------------------
  bool parse_anchor(TrustAnchor& anchor) {
    if (!open_block()) return false;
    bool seen_eutl = false;
    while (current_.kind != Tok::kRBrace) {
      if (current_.kind != Tok::kIdent) {
        return reject(ErrorClass::kSyntax, "expected field name");
      }
      const std::string field = current_.text;
      if (field == "sha256_hex") {
        if (!anchor.sha256_hex.empty()) {
          return reject(ErrorClass::kDuplicateField, "sha256_hex repeated");
        }
        std::string hex;
        if (!advance() || !expect_colon() || !read_string(hex)) return false;
        if (!valid_sha256_hex(hex)) {
          return reject(ErrorClass::kBadHex,
                        "sha256_hex must be 64 lowercase hex chars (got " +
                            std::to_string(hex.size()) + ")");
        }
        anchor.sha256_hex = std::move(hex);
      } else if (field == "ev_policy_oids") {
        if (anchor.ev_policy_oids.size() >= limits_.max_list_entries) {
          return reject(ErrorClass::kLimitExceeded, "too many ev_policy_oids");
        }
        std::string oid;
        if (!advance() || !expect_colon() || !read_string(oid)) return false;
        if (!valid_oid(oid)) {
          return reject(ErrorClass::kBadOid,
                        "ev_policy_oids entry is not a dotted OID: '" + oid +
                            "'");
        }
        anchor.ev_policy_oids.push_back(std::move(oid));
      } else if (field == "eutl") {
        if (seen_eutl) return reject(ErrorClass::kDuplicateField, "eutl repeated");
        seen_eutl = true;
        if (!advance() || !expect_colon() || !read_bool(anchor.eutl)) {
          return false;
        }
      } else if (field == "constraints") {
        if (anchor.constraints.size() >= limits_.max_blocks_per_anchor) {
          return reject(ErrorClass::kLimitExceeded,
                        "too many constraints blocks");
        }
        const int block_line = current_.line;
        ConstraintBlock block;
        if (!advance() || !parse_constraints(block)) return false;
        if (block.empty()) {
          result_.error = ParseError{
              ErrorClass::kEmptyBlock, block_line, 1,
              "empty constraints block would make the anchor unconditionally "
              "trusted via OR semantics"};
          return false;
        }
        anchor.constraints.push_back(std::move(block));
      } else {
        return reject(ErrorClass::kUnknownField,
                      "unknown trust_anchors field '" + field + "'");
      }
    }
    if (anchor.sha256_hex.empty()) {
      return reject(ErrorClass::kMissingHash,
                    "trust_anchors entry without sha256_hex");
    }
    return advance();  // consume '}'
  }

  bool parse_constraints(ConstraintBlock& block) {
    if (!open_block()) return false;
    bool seen_expiry = false;
    bool seen_anchor_constraints = false;
    while (current_.kind != Tok::kRBrace) {
      if (current_.kind != Tok::kIdent) {
        return reject(ErrorClass::kSyntax, "expected field name");
      }
      const std::string field = current_.text;
      if (field == "sct_not_after_sec" || field == "sct_all_after_sec") {
        auto& slot = field == "sct_not_after_sec" ? block.sct_not_after_sec
                                                  : block.sct_all_after_sec;
        if (slot) return reject(ErrorClass::kDuplicateField, field + " repeated");
        std::int64_t value = 0;
        if (!advance() || !expect_colon() || !read_integer(value)) {
          return false;
        }
        slot = value;
      } else if (field == "permitted_dns_names") {
        if (block.permitted_dns_names.size() >= limits_.max_list_entries) {
          return reject(ErrorClass::kLimitExceeded,
                        "too many permitted_dns_names");
        }
        std::string name;
        if (!advance() || !expect_colon() || !read_string(name)) return false;
        if (!valid_dns_name(name)) {
          return reject(ErrorClass::kBadDnsName,
                        "permitted_dns_names entry rejected: '" + name + "'");
        }
        block.permitted_dns_names.push_back(std::move(name));
      } else if (field == "min_version" || field == "max_version_exclusive") {
        auto& slot = field == "min_version" ? block.min_version
                                            : block.max_version_exclusive;
        if (slot) return reject(ErrorClass::kDuplicateField, field + " repeated");
        std::string text;
        if (!advance() || !expect_colon() || !read_string(text)) return false;
        auto version = Version::parse(text);
        if (!version) {
          return reject(ErrorClass::kBadVersion,
                        field + " is not a dotted version: '" + text + "'");
        }
        slot = *version;
      } else if (field == "enforce_anchor_expiry" ||
                 field == "enforce_anchor_constraints") {
        const bool is_expiry = field == "enforce_anchor_expiry";
        bool& seen = is_expiry ? seen_expiry : seen_anchor_constraints;
        if (seen) return reject(ErrorClass::kDuplicateField, field + " repeated");
        seen = true;
        bool value = false;
        if (!advance() || !expect_colon() || !read_bool(value)) return false;
        // `enforce_...: false` is indistinguishable from absence: accepted,
        // contributes nothing.
        (is_expiry ? block.enforce_anchor_expiry
                   : block.enforce_anchor_constraints) = value;
      } else {
        return reject(ErrorClass::kUnknownField,
                      "unknown constraints field '" + field + "'");
      }
    }
    return advance();  // consume '}'
  }

  bool parse_additional(AdditionalCert& cert) {
    if (!open_block()) return false;
    bool seen_eutl = false;
    while (current_.kind != Tok::kRBrace) {
      if (current_.kind != Tok::kIdent) {
        return reject(ErrorClass::kSyntax, "expected field name");
      }
      const std::string field = current_.text;
      if (field == "sha256_hex") {
        if (!cert.sha256_hex.empty()) {
          return reject(ErrorClass::kDuplicateField, "sha256_hex repeated");
        }
        std::string hex;
        if (!advance() || !expect_colon() || !read_string(hex)) return false;
        if (!valid_sha256_hex(hex)) {
          return reject(ErrorClass::kBadHex,
                        "sha256_hex must be 64 lowercase hex chars");
        }
        cert.sha256_hex = std::move(hex);
      } else if (field == "eutl") {
        if (seen_eutl) return reject(ErrorClass::kDuplicateField, "eutl repeated");
        seen_eutl = true;
        if (!advance() || !expect_colon() || !read_bool(cert.eutl)) {
          return false;
        }
      } else {
        return reject(ErrorClass::kUnknownField,
                      "unknown additional_certs field '" + field + "'");
      }
    }
    if (cert.sha256_hex.empty()) {
      return reject(ErrorClass::kMissingHash,
                    "additional_certs entry without sha256_hex");
    }
    return advance();
  }

  std::string_view source_;
  const ParseLimits& limits_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  Token current_;
  std::unordered_set<std::string> seen_hashes_;
  ParseResult result_;
};

}  // namespace

ParseResult parse_store(std::string_view text, const ParseLimits& limits) {
  return Parser(text, limits).run();
}

}  // namespace anchor::rootstore::chromeproto
