#include "rootstore/constraint_compile.hpp"

#include "datalog/value.hpp"

namespace anchor::rootstore {

using datalog::Value;

void ChainContext::append_facts(const std::string& chain_id,
                                core::FactSet& out) const {
  Value chain(chain_id);
  for (std::int64_t ts : sct_timestamps) {
    out.add("sctTimestamp", {chain, Value(ts)});
  }
  if (client_version) {
    out.add("clientVersion", {chain, Value(client_version->packed())});
  }
  if (validation_time) {
    out.add("validationTime", {chain, Value(*validation_time)});
  }
}

const char* to_string(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kSctNotAfter: return "sct-not-after";
    case ConstraintKind::kSctAllAfter: return "sct-all-after";
    case ConstraintKind::kPermittedDns: return "permitted-dns";
    case ConstraintKind::kMinVersion: return "min-version";
    case ConstraintKind::kMaxVersionExclusive: return "max-version-exclusive";
    case ConstraintKind::kAnchorExpiry: return "anchor-expiry";
    case ConstraintKind::kAnchorConstraints: return "anchor-constraints";
    case ConstraintKind::kEvPolicy: return "ev-policy";
  }
  return "unknown";
}

void CompileStats::merge(const CompileStats& other) {
  anchors += other.anchors;
  blocks += other.blocks;
  gccs += other.gccs;
  clauses += other.clauses;
  for (std::size_t i = 0; i < kind_counts.size(); ++i) {
    kind_counts[i] += other.kind_counts[i];
  }
}

namespace {

// Accumulates the Datalog source for one GCC: helper clauses first, the
// per-block body conjuncts collected separately, then the `valid` rules.
struct SourceBuilder {
  std::string helpers;
  std::size_t clauses = 0;

  void clause(const std::string& text) {
    helpers += text;
    helpers += '\n';
    ++clauses;
  }
};

void note_kind(CompileStats* stats, ConstraintKind kind) {
  if (stats != nullptr) {
    ++stats->kind_counts[static_cast<std::size_t>(kind)];
  }
}

// Lowers one constraints block. Returns the conjunct list for the block
// rule body (helper predicates appended to `out`).
std::string lower_block(const chromeproto::ConstraintBlock& block,
                        const std::string& bp,  // block prefix, e.g. "crsB1"
                        SourceBuilder& out, CompileStats* stats) {
  std::string body = "leaf(Chain, CrsLeaf)";
  auto conjunct = [&body](const std::string& literal) {
    body += ", ";
    body += literal;
  };

  // SCT time bounds. sct_not_after_sec is an existence bound (some SCT at
  // or before the instant); sct_all_after_sec demands a non-empty SCT set
  // with nothing at or before the instant.
  if (block.sct_not_after_sec) {
    note_kind(stats, ConstraintKind::kSctNotAfter);
    conjunct("sctTimestamp(Chain, CrsSctNa), CrsSctNa <= " +
             std::to_string(*block.sct_not_after_sec));
  }
  if (block.sct_all_after_sec) {
    note_kind(stats, ConstraintKind::kSctAllAfter);
    out.clause(bp + "SctAny(Chain) :- sctTimestamp(Chain, _).");
    out.clause(bp + "SctOld(Chain) :- sctTimestamp(Chain, CrsT), CrsT <= " +
               std::to_string(*block.sct_all_after_sec) + ".");
    conjunct(bp + "SctAny(Chain), \\+" + bp + "SctOld(Chain)");
  }

  // DNS name permits: every leaf SAN must have a dot-suffix among the
  // permitted names (nameSuffix facts already enumerate the suffixes,
  // with a leading "*." label stripped — see core/facts.cpp).
  if (!block.permitted_dns_names.empty()) {
    note_kind(stats, ConstraintKind::kPermittedDns);
    for (const std::string& name : block.permitted_dns_names) {
      out.clause(bp + "Permit(\"" + name + "\").");
    }
    out.clause(bp +
               "Covered(Chain, CrsN) :- leaf(Chain, CrsL), "
               "nameSuffix(CrsL, CrsN, CrsSfx), " +
               bp + "Permit(CrsSfx).");
    out.clause(bp +
               "DnsBad(Chain) :- leaf(Chain, CrsL), san(CrsL, CrsN), \\+" +
               bp + "Covered(Chain, CrsN).");
    conjunct("\\+" + bp + "DnsBad(Chain)");
  }

  // Version ranges over the packed clientVersion context fact. Absent
  // context fails closed: no clientVersion fact, no satisfied block.
  if (block.min_version || block.max_version_exclusive) {
    conjunct("clientVersion(Chain, CrsCv)");
    if (block.min_version) {
      note_kind(stats, ConstraintKind::kMinVersion);
      conjunct("CrsCv >= " + std::to_string(block.min_version->packed()));
    }
    if (block.max_version_exclusive) {
      note_kind(stats, ConstraintKind::kMaxVersionExclusive);
      conjunct("CrsCv < " +
               std::to_string(block.max_version_exclusive->packed()));
    }
  }

  // Anchor expiry: the validation instant must fall inside the root
  // certificate's own validity window (inclusive ends, matching
  // Certificate::valid_at).
  if (block.enforce_anchor_expiry) {
    note_kind(stats, ConstraintKind::kAnchorExpiry);
    conjunct(
        "root(Chain, CrsAeR), notBefore(CrsAeR, CrsAeNb), "
        "notAfter(CrsAeR, CrsAeNa), validationTime(Chain, CrsAeT), "
        "CrsAeT >= CrsAeNb, CrsAeT <= CrsAeNa");
  }

  // Anchor constraints: apply the root's own X.509 constraints to the
  // chain — permitted/excluded name constraints against the leaf's SANs
  // (suffix semantics, same vocabulary as permitted_dns_names) and the
  // root's pathLenConstraint against the chain length (a chain of length
  // L carries L-2 intermediates).
  if (block.enforce_anchor_constraints) {
    note_kind(stats, ConstraintKind::kAnchorConstraints);
    out.clause(bp +
               "AcCovered(Chain, CrsN) :- root(Chain, CrsR), "
               "leaf(Chain, CrsL), nameSuffix(CrsL, CrsN, CrsSfx), "
               "permittedDNS(CrsR, CrsSfx).");
    out.clause(bp +
               "AcNameBad(Chain) :- root(Chain, CrsR), "
               "permittedDNS(CrsR, _), leaf(Chain, CrsL), san(CrsL, CrsN), "
               "\\+" +
               bp + "AcCovered(Chain, CrsN).");
    out.clause(bp +
               "AcExclBad(Chain) :- root(Chain, CrsR), "
               "excludedDNS(CrsR, CrsSfx), leaf(Chain, CrsL), "
               "nameSuffix(CrsL, CrsN, CrsSfx).");
    out.clause(bp +
               "AcPathBad(Chain) :- root(Chain, CrsR), pathLen(CrsR, CrsP), "
               "chainLength(Chain, CrsLen), CrsLen > CrsP + 2.");
    conjunct("\\+" + bp + "AcNameBad(Chain), \\+" + bp +
             "AcExclBad(Chain), \\+" + bp + "AcPathBad(Chain)");
  }

  return body;
}

}  // namespace

Result<std::vector<core::Gcc>> compile_anchor(
    const chromeproto::TrustAnchor& anchor, const CompileOptions& options,
    CompileStats* stats) {
  std::vector<core::Gcc> gccs;
  const std::string tag =
      options.name_prefix + "-" + anchor.sha256_hex.substr(0, 12);

  CompileStats local;
  local.anchors = 1;
  local.blocks = anchor.constraints.size();

  // The OR-of-blocks constraints program.
  if (!anchor.constraints.empty()) {
    SourceBuilder source;
    source.helpers =
        "% compiled from Chrome Root Store textproto; anchor " +
        anchor.sha256_hex + "\n";
    std::vector<std::string> block_heads;
    for (std::size_t i = 0; i < anchor.constraints.size(); ++i) {
      const std::string bp = "crsB" + std::to_string(i + 1);
      const std::string body =
          lower_block(anchor.constraints[i], bp, source, &local);
      source.clause(bp + "(Chain) :- " + body + ".");
      block_heads.push_back(bp);
    }
    for (const std::string& head : block_heads) {
      source.clause("valid(Chain, _) :- " + head + "(Chain).");
    }
    auto gcc = core::Gcc::create(tag + "-constraints", anchor.sha256_hex,
                                 source.helpers, options.justification);
    if (!gcc) {
      return err("compile_anchor " + anchor.sha256_hex + ": " + gcc.error());
    }
    gccs.push_back(std::move(gcc).take());
    local.clauses += source.clauses;
    ++local.gccs;
  }

  // The EV-policy program: a leaf claiming EV must carry one of the
  // anchor's EV policy OIDs; non-EV leaves are untouched.
  if (!anchor.ev_policy_oids.empty()) {
    note_kind(&local, ConstraintKind::kEvPolicy);
    SourceBuilder source;
    source.helpers =
        "% compiled from Chrome Root Store textproto; anchor " +
        anchor.sha256_hex + " (ev_policy_oids)\n";
    for (const std::string& oid : anchor.ev_policy_oids) {
      source.clause("crsEvOk(Chain) :- leaf(Chain, CrsL), policy(CrsL, \"" +
                    oid + "\").");
    }
    source.clause(
        "crsEvBad(Chain) :- leaf(Chain, CrsL), ev(CrsL), \\+crsEvOk(Chain).");
    source.clause("valid(Chain, _) :- leaf(Chain, CrsL), \\+crsEvBad(Chain).");
    auto gcc = core::Gcc::create(tag + "-ev-policy", anchor.sha256_hex,
                                 source.helpers, options.justification);
    if (!gcc) {
      return err("compile_anchor " + anchor.sha256_hex + ": " + gcc.error());
    }
    gccs.push_back(std::move(gcc).take());
    local.clauses += source.clauses;
    ++local.gccs;
  }

  if (stats != nullptr) stats->merge(local);
  return gccs;
}

Result<StoreCompileResult> compile_store(const chromeproto::StoreFile& file,
                                         const CertResolver& resolve,
                                         RootStore& out,
                                         const CompileOptions& options) {
  StoreCompileResult result;
  for (const chromeproto::TrustAnchor& anchor : file.trust_anchors) {
    x509::CertPtr cert = resolve ? resolve(anchor.sha256_hex) : nullptr;
    if (cert != nullptr) {
      RootMetadata metadata;
      metadata.ev_allowed = !anchor.ev_policy_oids.empty();
      metadata.justification = options.justification;
      Status added = out.add_trusted(cert, metadata);
      if (!added.ok()) {
        return err("compile_store: " + added.error());
      }
      ++result.anchors_with_cert;
    } else {
      // GCCs attach by hash, so the constraint travels even before the
      // certificate itself is distributed.
      ++result.anchors_without_cert;
    }
    auto gccs = compile_anchor(anchor, options, &result.stats);
    if (!gccs) return err(gccs.error());
    for (core::Gcc& gcc : gccs.value()) {
      out.attach_gcc(std::move(gcc));
    }
  }
  return result;
}

}  // namespace anchor::rootstore
