// Serialization grammar (line-oriented; values that may contain arbitrary
// bytes are base64):
//
//   anchor-root-store/v1
//   trusted <hash>
//   ev <0|1>
//   tls-distrust-after <unix>          (optional)
//   smime-distrust-after <unix>        (optional)
//   justification-b64 <b64>            (optional)
//   -----BEGIN CERTIFICATE----- ...    (the root itself)
//   distrusted <hash>
//   justification-b64 <b64>            (optional)
//   gcc <hash>
//   name-b64 <b64>
//   justification-b64 <b64>            (optional)
//   source-b64 <b64>
//   crlite-b64 <b64>                   (optional, at most one: the
//                                       store-distributed revocation filter)
//
// Sections may repeat; ordering is canonical (roots and distrust entries
// sorted by hash, GCCs by root hash) so stores with equal *content*
// serialize identically regardless of insertion history — delta replay,
// merging and the RSF content hash all rely on this.
#include "rootstore/store.hpp"

#include <algorithm>
#include <sstream>

#include "revocation/crlite.hpp"
#include "util/base64.hpp"
#include "util/sha256.hpp"
#include "util/strings.hpp"

namespace anchor::rootstore {

Status RootStore::add_trusted(x509::CertPtr cert, RootMetadata metadata) {
  std::string hash = cert->fingerprint_hex();
  if (distrusted_.contains(hash)) {
    return err("root store: root " + hash.substr(0, 16) +
               "... is explicitly distrusted; refusing to re-trust (use "
               "add_trusted_unchecked to model non-compliant derivatives)");
  }
  add_trusted_unchecked(std::move(cert), std::move(metadata));
  return {};
}

void RootStore::add_trusted_unchecked(x509::CertPtr cert,
                                      RootMetadata metadata) {
  std::string hash = cert->fingerprint_hex();
  auto it = trusted_.find(hash);
  if (it != trusted_.end()) {
    // Same fingerprint ⇒ same certificate bytes; only a metadata change can
    // alter a verification outcome. A byte-identical re-add must not bump
    // the epoch, or redundant delta replay flushes every verdict cache
    // keyed on epoch() for nothing.
    if (it->second.metadata == metadata) return;
    it->second = RootEntry{std::move(cert), std::move(metadata)};
    ++epoch_;
    return;
  }
  trusted_order_.push_back(hash);
  trusted_[hash] = RootEntry{std::move(cert), std::move(metadata)};
  ++epoch_;
}

void RootStore::distrust(const std::string& hash_hex,
                         std::string justification) {
  bool was_trusted = trusted_.erase(hash_hex) > 0;
  if (was_trusted) std::erase(trusted_order_, hash_hex);
  auto it = distrusted_.find(hash_hex);
  if (it != distrusted_.end()) {
    // Already distrusted with the same justification (and not shadowed by a
    // trusted entry): nothing observable changed, keep the epoch stable.
    if (!was_trusted && it->second == justification) return;
    it->second = std::move(justification);
  } else {
    distrusted_order_.push_back(hash_hex);
    distrusted_[hash_hex] = std::move(justification);
  }
  ++epoch_;
}

bool RootStore::forget(const std::string& hash_hex) {
  bool was_trusted = trusted_.erase(hash_hex) > 0;
  if (was_trusted) std::erase(trusted_order_, hash_hex);
  bool was_distrusted = distrusted_.erase(hash_hex) > 0;
  if (was_distrusted) std::erase(distrusted_order_, hash_hex);
  if (was_trusted || was_distrusted) ++epoch_;
  return was_trusted || was_distrusted;
}

void RootStore::attach_gcc(core::Gcc gcc) {
  if (gccs_.attach(std::move(gcc))) ++epoch_;
}

bool RootStore::detach_gcc(const std::string& root_hash_hex,
                           const std::string& name) {
  if (!gccs_.detach(root_hash_hex, name)) return false;
  ++epoch_;
  return true;
}

void RootStore::set_revocation_filter(
    std::shared_ptr<const revocation::CompressedRevocationSet> filter) {
  const bool same =
      (filter == nullptr && revocation_filter_ == nullptr) ||
      (filter != nullptr && revocation_filter_ != nullptr &&
       *filter == *revocation_filter_);
  revocation_filter_ = std::move(filter);
  if (!same) ++epoch_;
}

TrustState RootStore::state_of(const std::string& hash_hex) const {
  if (trusted_.contains(hash_hex)) return TrustState::kTrusted;
  if (distrusted_.contains(hash_hex)) return TrustState::kDistrusted;
  return TrustState::kUnknown;
}

const RootEntry* RootStore::find(const std::string& hash_hex) const {
  auto it = trusted_.find(hash_hex);
  return it == trusted_.end() ? nullptr : &it->second;
}

std::vector<const RootEntry*> RootStore::trusted() const {
  std::vector<const RootEntry*> out;
  out.reserve(trusted_order_.size());
  for (const auto& hash : trusted_order_) {
    auto it = trusted_.find(hash);
    if (it != trusted_.end()) out.push_back(&it->second);
  }
  return out;
}

std::string RootStore::serialize() const {
  // Canonical form: entries sorted by hash, so equal *content* serializes
  // identically regardless of insertion history (delta replay, merges and
  // feed payload comparison all rely on this).
  std::vector<std::string> trusted_sorted = trusted_order_;
  std::sort(trusted_sorted.begin(), trusted_sorted.end());
  std::vector<std::string> distrusted_sorted = distrusted_order_;
  std::sort(distrusted_sorted.begin(), distrusted_sorted.end());

  std::ostringstream out;
  out << "anchor-root-store/v1\n";
  for (const auto& hash : trusted_sorted) {
    const RootEntry& entry = trusted_.at(hash);
    out << "trusted " << hash << "\n";
    out << "ev " << (entry.metadata.ev_allowed ? 1 : 0) << "\n";
    if (entry.metadata.tls_distrust_after) {
      out << "tls-distrust-after " << *entry.metadata.tls_distrust_after << "\n";
    }
    if (entry.metadata.smime_distrust_after) {
      out << "smime-distrust-after " << *entry.metadata.smime_distrust_after
          << "\n";
    }
    if (!entry.metadata.justification.empty()) {
      out << "justification-b64 "
          << base64_encode(BytesView(to_bytes(entry.metadata.justification)))
          << "\n";
    }
    out << entry.cert->to_pem();
  }
  for (const auto& hash : distrusted_sorted) {
    out << "distrusted " << hash << "\n";
    const std::string& justification = distrusted_.at(hash);
    if (!justification.empty()) {
      out << "justification-b64 "
          << base64_encode(BytesView(to_bytes(justification))) << "\n";
    }
  }
  for (const auto& root : gccs_.roots_sorted()) {
    for (const core::Gcc& gcc : gccs_.for_root(root)) {
      out << "gcc " << root << "\n";
      out << "name-b64 " << base64_encode(BytesView(to_bytes(gcc.name())))
          << "\n";
      if (!gcc.justification().empty()) {
        out << "justification-b64 "
            << base64_encode(BytesView(to_bytes(gcc.justification()))) << "\n";
      }
      out << "source-b64 " << base64_encode(BytesView(to_bytes(gcc.source())))
          << "\n";
    }
  }
  if (revocation_filter_ != nullptr) {
    out << "crlite-b64 "
        << base64_encode(BytesView(to_bytes(revocation_filter_->serialize())))
        << "\n";
  }
  return out.str();
}

namespace {

Result<std::string> decode_b64_field(std::string_view value) {
  Bytes decoded;
  if (!base64_decode(value, decoded)) {
    return err("root store: bad base64 field");
  }
  return to_string(BytesView(decoded));
}

}  // namespace

Result<RootStore> RootStore::deserialize(std::string_view text) {
  std::vector<std::string> lines = split(text, '\n');
  if (lines.empty() || lines[0] != "anchor-root-store/v1") {
    return err("root store: missing anchor-root-store/v1 header");
  }

  RootStore store;
  std::size_t i = 1;

  auto parse_int = [](const std::string& s, std::int64_t& out) {
    if (s.empty()) return false;
    std::size_t pos = 0;
    bool negative = s[0] == '-';
    if (negative) pos = 1;
    std::int64_t v = 0;
    for (; pos < s.size(); ++pos) {
      if (s[pos] < '0' || s[pos] > '9') return false;
      v = v * 10 + (s[pos] - '0');
    }
    out = negative ? -v : v;
    return true;
  };

  while (i < lines.size()) {
    std::string line = std::string(trim(lines[i]));
    if (line.empty()) {
      ++i;
      continue;
    }
    std::size_t space = line.find(' ');
    std::string keyword = line.substr(0, space);
    std::string arg = space == std::string::npos ? "" : line.substr(space + 1);

    if (keyword == "trusted") {
      ++i;
      RootMetadata metadata;
      // Metadata lines until the PEM block.
      while (i < lines.size() && !starts_with(lines[i], "-----BEGIN")) {
        std::string meta_line = std::string(trim(lines[i]));
        if (meta_line.empty()) {
          ++i;
          continue;
        }
        std::size_t sp = meta_line.find(' ');
        if (sp == std::string::npos) {
          return err("root store: malformed metadata line '" + meta_line + "'");
        }
        std::string key = meta_line.substr(0, sp);
        std::string value = meta_line.substr(sp + 1);
        if (key == "ev") {
          metadata.ev_allowed = value == "1";
        } else if (key == "tls-distrust-after") {
          std::int64_t t;
          if (!parse_int(value, t)) return err("root store: bad timestamp");
          metadata.tls_distrust_after = t;
        } else if (key == "smime-distrust-after") {
          std::int64_t t;
          if (!parse_int(value, t)) return err("root store: bad timestamp");
          metadata.smime_distrust_after = t;
        } else if (key == "justification-b64") {
          auto decoded = decode_b64_field(value);
          if (!decoded) return err(decoded.error());
          metadata.justification = std::move(decoded).take();
        } else {
          return err("root store: unknown metadata key '" + key + "'");
        }
        ++i;
      }
      // PEM block: gather until END line inclusive.
      std::string pem;
      while (i < lines.size()) {
        pem += lines[i];
        pem += '\n';
        bool end = starts_with(lines[i], "-----END");
        ++i;
        if (end) break;
      }
      auto cert = x509::Certificate::parse_pem(pem);
      if (!cert) return err("root store: " + cert.error());
      std::string actual_hash = cert.value()->fingerprint_hex();
      if (actual_hash != arg) {
        return err("root store: trusted hash mismatch for " + arg);
      }
      store.add_trusted_unchecked(std::move(cert).take(), std::move(metadata));
    } else if (keyword == "distrusted") {
      ++i;
      std::string justification;
      if (i < lines.size() && starts_with(lines[i], "justification-b64 ")) {
        auto decoded = decode_b64_field(std::string_view(lines[i]).substr(18));
        if (!decoded) return err(decoded.error());
        justification = std::move(decoded).take();
        ++i;
      }
      if (arg.size() != 64) return err("root store: bad distrusted hash");
      store.distrust(arg, std::move(justification));
    } else if (keyword == "gcc") {
      ++i;
      std::string name;
      std::string justification;
      std::string source;
      while (i < lines.size()) {
        std::string field_line = std::string(trim(lines[i]));
        if (starts_with(field_line, "name-b64 ")) {
          auto decoded = decode_b64_field(std::string_view(field_line).substr(9));
          if (!decoded) return err(decoded.error());
          name = std::move(decoded).take();
        } else if (starts_with(field_line, "justification-b64 ")) {
          auto decoded =
              decode_b64_field(std::string_view(field_line).substr(18));
          if (!decoded) return err(decoded.error());
          justification = std::move(decoded).take();
        } else if (starts_with(field_line, "source-b64 ")) {
          auto decoded =
              decode_b64_field(std::string_view(field_line).substr(11));
          if (!decoded) return err(decoded.error());
          source = std::move(decoded).take();
          ++i;
          break;  // source-b64 terminates a gcc section
        } else {
          return err("root store: unexpected line in gcc section: '" +
                     field_line + "'");
        }
        ++i;
      }
      auto gcc = core::Gcc::create(name, arg, source, justification);
      if (!gcc) return err("root store: " + gcc.error());
      store.attach_gcc(std::move(gcc).take());
    } else if (keyword == "crlite-b64") {
      ++i;
      auto decoded = decode_b64_field(arg);
      if (!decoded) return err(decoded.error());
      auto filter =
          revocation::CompressedRevocationSet::deserialize(decoded.value());
      if (!filter) return err("root store: " + filter.error());
      store.set_revocation_filter(
          std::make_shared<const revocation::CompressedRevocationSet>(
              std::move(filter).take()));
    } else {
      return err("root store: unknown section '" + keyword + "'");
    }
  }
  return store;
}

std::string RootStore::content_hash_hex() const {
  std::string serialized = serialize();
  return Sha256::hash_hex(BytesView(to_bytes(serialized)));
}

void export_store_metrics(const StoreReader& store,
                          metrics::Registry& registry,
                          const std::string& instance) {
  metrics::Labels labels;
  if (!instance.empty()) labels.emplace_back("store", instance);
  registry.gauge("anchor_store_trusted_roots", labels)
      .set(static_cast<std::int64_t>(store.trusted_count()));
  registry.gauge("anchor_store_distrusted_roots", labels)
      .set(static_cast<std::int64_t>(store.distrusted_count()));
  registry.gauge("anchor_store_gccs", labels)
      .set(static_cast<std::int64_t>(store.gcc_count()));
  registry.gauge("anchor_store_epoch", labels)
      .set(static_cast<std::int64_t>(store.epoch()));
}

}  // namespace anchor::rootstore
