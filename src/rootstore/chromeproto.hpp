// Chrome Root Store textproto ingestion (ROADMAP item 3). The deployed
// Chrome root store ships as a protobuf text file of the shape
//
//   trust_anchors {
//     sha256_hex: "...64 lowercase hex chars..."
//     ev_policy_oids: "2.23.140.1.1"          # repeated
//     constraints {                            # repeated; blocks are OR'd
//       sct_not_after_sec: 0x5AF
//       sct_all_after_sec: 9593
//       permitted_dns_names: "foo.example.com" # repeated
//       min_version: "128"
//       max_version_exclusive: "125.0.6368.2"
//       enforce_anchor_expiry: true
//       enforce_anchor_constraints: true
//     }
//   }
//   additional_certs { sha256_hex: "..." }
//
// This parser is deliberately fail-closed: unknown fields, duplicate
// scalar fields, malformed or oversized hex, out-of-range timestamps,
// malformed versions/OIDs/DNS names and empty constraint blocks are all
// hard rejections with a classified error — a root store is a trust
// decision, and a field the ingester does not understand might be the
// field that was supposed to constrain an anchor.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace anchor::rootstore::chromeproto {

// Rejection taxonomy. Tests (and `anchorctl compile-store`) branch on the
// class, not the message text.
enum class ErrorClass {
  kSyntax,          // lexical/structural textproto error
  kUnknownField,    // field name the schema does not define
  kDuplicateField,  // singular field written twice in one message
  kBadHex,          // sha256_hex not exactly 64 lowercase hex chars
  kOutOfRange,      // integer overflow / negative where unsigned expected
  kBadVersion,      // version string not 1-4 dotted components < 32768
  kBadDnsName,      // empty / uppercase / wildcard / malformed DNS name
  kBadOid,          // ev_policy_oids entry not a dotted OID
  kEmptyBlock,      // constraints {} with no fields (would OR-in "always")
  kMissingHash,     // trust_anchors/additional_certs without sha256_hex
  kDuplicateAnchor, // two trust_anchors with the same sha256_hex
  kLimitExceeded,   // input or repeated-field count above ParseLimits
};

const char* to_string(ErrorClass cls);

struct ParseError {
  ErrorClass cls = ErrorClass::kSyntax;
  int line = 0;
  int column = 0;
  std::string message;

  // "bad-hex at 12:3: sha256_hex must be 64 lowercase hex chars"
  std::string to_string() const;
};

// A dotted browser version, e.g. "125.0.6368.2". At most 4 components,
// each < 32768 so the packed form (15 bits per component, missing
// components zero) fits signed 64-bit Datalog integers with room to
// spare; comparison on packed() is exactly lexicographic comparison on
// the zero-extended quad.
struct Version {
  std::array<std::uint16_t, 4> parts{};
  int written = 0;  // how many components the source spelled out

  std::int64_t packed() const {
    return (static_cast<std::int64_t>(parts[0]) << 45) |
           (static_cast<std::int64_t>(parts[1]) << 30) |
           (static_cast<std::int64_t>(parts[2]) << 15) |
           static_cast<std::int64_t>(parts[3]);
  }
  std::string to_string() const;
  bool operator==(const Version&) const = default;

  // nullopt on malformed input (empty, >4 components, non-digit,
  // component >= 32768, leading '+'/'-', empty component).
  static std::optional<Version> parse(std::string_view text);
};

// One `constraints { ... }` block. Within a block every present field
// must hold (AND); across blocks on the same anchor any block suffices
// (OR) — the deployed Chrome semantics.
struct ConstraintBlock {
  std::optional<std::int64_t> sct_not_after_sec;
  std::optional<std::int64_t> sct_all_after_sec;
  std::vector<std::string> permitted_dns_names;
  std::optional<Version> min_version;
  std::optional<Version> max_version_exclusive;
  bool enforce_anchor_expiry = false;
  bool enforce_anchor_constraints = false;

  bool empty() const {
    return !sct_not_after_sec && !sct_all_after_sec &&
           permitted_dns_names.empty() && !min_version &&
           !max_version_exclusive && !enforce_anchor_expiry &&
           !enforce_anchor_constraints;
  }
};

struct TrustAnchor {
  std::string sha256_hex;  // required, 64 lowercase hex chars
  std::vector<std::string> ev_policy_oids;
  bool eutl = false;
  std::vector<ConstraintBlock> constraints;
  int line = 0;  // source line of the opening `trust_anchors`
};

struct AdditionalCert {
  std::string sha256_hex;
  bool eutl = false;
};

struct StoreFile {
  std::optional<std::int64_t> version_major;
  std::vector<TrustAnchor> trust_anchors;
  std::vector<AdditionalCert> additional_certs;
};

// Hard resource bounds; exceeding any is kLimitExceeded, not best-effort
// truncation.
struct ParseLimits {
  std::size_t max_bytes = 4u << 20;
  std::size_t max_anchors = 8192;
  std::size_t max_blocks_per_anchor = 64;
  std::size_t max_list_entries = 512;  // per repeated string field
};

struct ParseResult {
  std::optional<StoreFile> store;
  ParseError error;  // meaningful iff !ok()

  bool ok() const { return store.has_value(); }
};

ParseResult parse_store(std::string_view text, const ParseLimits& limits = {});

}  // namespace anchor::rootstore::chromeproto
