// Lowering Chrome Root Store constraints to GCCs (ROADMAP item 3): each
// parsed `trust_anchors` entry compiles to at most two `core::Gcc`
// Datalog programs that ride the existing compiled-evaluation fast path
// (Gcc::create interns and slot-resolves at build time, PR 3).
//
//   * "<prefix>-<hash12>-constraints" — the OR over `constraints` blocks,
//     each block an AND over its fields (deployed Chrome semantics);
//   * "<prefix>-<hash12>-ev-policy"   — EV leaves must carry one of the
//     anchor's ev_policy_oids.
//
// Lowering table (one rule group per constraint kind; DESIGN.md
// "Constraint ingestion & compilation" documents the full grammar):
//
//   sct_not_after_sec S      ∃ SCT with T <= S            (inclusive)
//   sct_all_after_sec S      ≥1 SCT and none with T <= S  (exclusive)
//   permitted_dns_names P*   every leaf SAN has a dot-suffix in P*
//   min_version V            clientVersion present and >= packed(V)
//   max_version_exclusive V  clientVersion present and <  packed(V)
//   enforce_anchor_expiry    validationTime within the root's validity
//   enforce_anchor_constraints  root's own name constraints cover every
//       leaf SAN, no SAN inside an excluded name, and chain length
//       respects the root's pathLenConstraint
//
// Chain-external inputs (SCTs, the client's version, the validation
// instant) are not X.509 fields, so they arrive as *context facts*
// encoded per chain by `ChainContext`:
//
//   sctTimestamp(Chain, T)    one per SCT, Unix seconds
//   clientVersion(Chain, V)   packed dotted version (Version::packed)
//   validationTime(Chain, T)  Unix seconds
//
// Absent context fails closed: a version-gated block rejects when no
// clientVersion fact is supplied, an expiry-enforcing block rejects
// without validationTime, and sct_* blocks reject a chain with no SCTs.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/facts.hpp"
#include "core/gcc.hpp"
#include "rootstore/chromeproto.hpp"
#include "rootstore/store.hpp"
#include "util/result.hpp"

namespace anchor::rootstore {

// Per-chain validation context; everything the Chrome constraint
// vocabulary references that is not derivable from the certificates.
struct ChainContext {
  std::vector<std::int64_t> sct_timestamps;  // Unix seconds, one per SCT
  std::optional<chromeproto::Version> client_version;
  std::optional<std::int64_t> validation_time;

  // Appends the context facts for `chain_id` (core::chain_id_of) to `out`.
  void append_facts(const std::string& chain_id, core::FactSet& out) const;
  core::FactSet to_facts(const std::string& chain_id) const {
    core::FactSet facts;
    append_facts(chain_id, facts);
    return facts;
  }
};

enum class ConstraintKind {
  kSctNotAfter = 0,
  kSctAllAfter,
  kPermittedDns,
  kMinVersion,
  kMaxVersionExclusive,
  kAnchorExpiry,
  kAnchorConstraints,
  kEvPolicy,
};
inline constexpr std::size_t kConstraintKindCount = 8;

const char* to_string(ConstraintKind kind);

struct CompileStats {
  std::size_t anchors = 0;
  std::size_t blocks = 0;
  std::size_t gccs = 0;
  std::size_t clauses = 0;
  // How many times each constraint kind was lowered.
  std::array<std::size_t, kConstraintKindCount> kind_counts{};

  void merge(const CompileStats& other);
};

struct CompileOptions {
  // GCC names are "<prefix>-<first 12 hash chars>-constraints|-ev-policy".
  std::string name_prefix = "crs";
  std::string justification = "chrome-root-store textproto";
};

// Lowers one anchor. Returns 0, 1 or 2 GCCs (an unconstrained anchor
// compiles to nothing). Fails only if a generated program fails Gcc
// validation — which would be a compiler bug, never a data-shape issue:
// every data-shape rejection already happened in chromeproto::parse_store.
Result<std::vector<core::Gcc>> compile_anchor(
    const chromeproto::TrustAnchor& anchor, const CompileOptions& options = {},
    CompileStats* stats = nullptr);

// Compiles a whole parsed store onto `out`: anchors whose certificate the
// resolver knows are added as trusted roots (EV bit from ev_policy_oids);
// every anchor's GCCs attach by hash either way, so constraints are never
// dropped just because the certificate has not arrived yet.
struct StoreCompileResult {
  CompileStats stats;
  std::size_t anchors_with_cert = 0;
  std::size_t anchors_without_cert = 0;
};

using CertResolver = std::function<x509::CertPtr(const std::string& sha256_hex)>;

Result<StoreCompileResult> compile_store(const chromeproto::StoreFile& file,
                                         const CertResolver& resolve,
                                         RootStore& out,
                                         const CompileOptions& options = {});

}  // namespace anchor::rootstore
