// Root stores with negative inclusion (§4 of the paper): "root stores
// [should] be composed of two sets of certificates: those that are
// explicitly trusted and those that are explicitly distrusted." A root is
// therefore in one of three states — trusted, distrusted, or unknown
// (never added) — and the distinction matters for RSF merging.
//
// Trusted roots carry the systematic partial-distrust metadata NSS uses
// (§2.2: per-root date-usage cutoffs for TLS and S/MIME, and the EV bit)
// plus any number of attached GCCs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gcc.hpp"
#include "util/metrics.hpp"
#include "util/result.hpp"
#include "x509/certificate.hpp"

namespace anchor::revocation {
class CompressedRevocationSet;
}  // namespace anchor::revocation

namespace anchor::rootstore {

// NSS-style systematic constraints (distinct from ad hoc GCCs).
struct RootMetadata {
  // Leaf certificates with notBefore at/after this instant are distrusted
  // for the usage. nullopt = no cutoff.
  std::optional<std::int64_t> tls_distrust_after;
  std::optional<std::int64_t> smime_distrust_after;
  // Whether the root may anchor EV certificates.
  bool ev_allowed = false;
  // Free-form provenance (Bugzilla link, incident id, ...).
  std::string justification;

  bool operator==(const RootMetadata&) const = default;
};

struct RootEntry {
  x509::CertPtr cert;
  RootMetadata metadata;
};

enum class TrustState { kTrusted, kDistrusted, kUnknown };

// The read surface chain::ChainVerifier (and anything else on the verdict
// path) needs from a root store. Two implementations exist: the mutable
// heap `RootStore` below, and the mmap-backed `StoreView`
// (rootstore/snapshot/view.hpp) that serves the same answers out of a
// flat snapshot without per-worker parsing or GCC recompilation. The
// pinned contract: for equal content, both implementations return the
// same entries in the same order — `trusted()` in insertion order,
// `gccs_for_root()` in attachment order — so verdicts computed through
// either are byte-identical.
class StoreReader {
 public:
  virtual ~StoreReader() = default;

  virtual TrustState state_of(const std::string& hash_hex) const = 0;
  virtual const RootEntry* find(const std::string& hash_hex) const = 0;
  // Insertion order — path search tries candidate roots in this order, so
  // the order is part of the verdict contract (first accepted path wins).
  virtual std::vector<const RootEntry*> trusted() const = 0;
  // Attachment order (all must hold, but diagnostics name the first
  // failure, so order is observable).
  virtual std::span<const core::Gcc> gccs_for_root(
      const std::string& hash_hex) const = 0;

  virtual std::size_t trusted_count() const = 0;
  virtual std::size_t distrusted_count() const = 0;
  virtual std::size_t gcc_count() const = 0;
  virtual std::uint64_t epoch() const = 0;

  // Optional store-distributed compressed revocation filter (CRLite-style,
  // revocation/crlite.hpp), carried inside serialization/snapshots so RSF
  // adoption delivers revocation updates alongside trust changes.
  // ChainVerifier registers a non-null filter as a revocation source
  // automatically. Defaults to "none" so ad hoc StoreReader fakes in tests
  // keep compiling.
  virtual std::shared_ptr<const revocation::CompressedRevocationSet>
  revocation_filter() const {
    return nullptr;
  }
};

class RootStore : public StoreReader {
 public:
  // Adds (or updates) an explicitly trusted root. A root currently in the
  // distrusted set is *not* silently resurrected: the call fails, the same
  // condition RSF merging flags (§4, "RSF merging").
  Status add_trusted(x509::CertPtr cert, RootMetadata metadata = {});

  // Moves a root into the explicitly-distrusted set (removing it from the
  // trusted set if present). Distrust by hash also works for roots the
  // store never carried.
  void distrust(const std::string& hash_hex, std::string justification = "");

  // Forgets a root entirely (back to kUnknown) — e.g. expired housekeeping.
  // Distinct from distrust. Returns true if it was present in either set.
  bool forget(const std::string& hash_hex);

  // Force-adds a trusted root even if distrusted (used by merge tooling to
  // model derivative stores that re-add removed roots, as Amazon Linux did).
  void add_trusted_unchecked(x509::CertPtr cert, RootMetadata metadata = {});

  TrustState state_of(const std::string& hash_hex) const override;
  const RootEntry* find(const std::string& hash_hex) const override;

  std::vector<const RootEntry*> trusted() const override;
  const std::unordered_map<std::string, std::string>& distrusted() const {
    return distrusted_;  // hash -> justification
  }

  std::size_t trusted_count() const override { return trusted_.size(); }
  std::size_t distrusted_count() const override { return distrusted_.size(); }
  std::size_t gcc_count() const override { return gccs_.total(); }

  // Attaches a GCC (replacing any same-named GCC on the same root) and
  // bumps the epoch. Attaching a byte-identical copy of a GCC already
  // present is a no-op that leaves the epoch unchanged — the same
  // redundant-delta-replay guarantee add_trusted_unchecked/distrust give.
  void attach_gcc(core::Gcc gcc);
  // Removes the named GCC from the given root; returns true (and bumps the
  // epoch) only if it existed.
  bool detach_gcc(const std::string& root_hash_hex, const std::string& name);

  // Attaches (or replaces) the store-distributed compressed revocation
  // filter; nullptr clears it. Bumps the epoch unless the new filter is
  // content-identical to the current one — the same redundant-delta-replay
  // guarantee the other mutators give.
  void set_revocation_filter(
      std::shared_ptr<const revocation::CompressedRevocationSet> filter);
  std::shared_ptr<const revocation::CompressedRevocationSet>
  revocation_filter() const override {
    return revocation_filter_;
  }

  // Read-only: all GCC mutation routes through attach_gcc/detach_gcc so
  // the epoch counter below sees every effective change. (A mutable
  // accessor used to exist; it let callers swap the GccStore wholesale,
  // which could pair a higher epoch_ with a lower GccStore version and
  // repeat a composite epoch value — silently reviving stale verdict-cache
  // entries.)
  const core::GccStore& gccs() const { return gccs_; }
  std::span<const core::Gcc> gccs_for_root(
      const std::string& hash_hex) const override {
    return gccs_.for_root(hash_hex);
  }

  // Single strictly-monotonic mutation counter: every change that can
  // alter a verification outcome — add_trusted, add_trusted_unchecked,
  // distrust, forget, attach_gcc, detach_gcc — advances it. Verdict caches
  // key on the epoch so a feed update invalidates stale entries without
  // any cross-thread bookkeeping (chain::VerifyService). Byte-identical
  // no-op mutations (re-adding a root with equal metadata, re-distrusting
  // with the same justification, re-attaching an identical GCC) leave it
  // unchanged, so redundant delta replay keeps caches warm.
  std::uint64_t epoch() const override { return epoch_; }

  // Forces epoch() strictly past `floor`. Used when a store is replaced
  // wholesale (RSF snapshot adoption) so observers never see the counter
  // move backwards.
  void advance_epoch_past(std::uint64_t floor) {
    if (epoch_ <= floor) epoch_ = floor + 1;
  }

  // Deterministic text serialization (see store.cpp header comment for the
  // grammar); round-trips through deserialize.
  std::string serialize() const;
  static Result<RootStore> deserialize(std::string_view text);

  // Content hash of the serialized form — RSF snapshots chain over this.
  std::string content_hash_hex() const;

 private:
  // hash -> entry, plus insertion order for deterministic serialization.
  std::unordered_map<std::string, RootEntry> trusted_;
  std::vector<std::string> trusted_order_;
  std::unordered_map<std::string, std::string> distrusted_;
  std::vector<std::string> distrusted_order_;
  core::GccStore gccs_;
  // Immutable once built, so copies of the store share one filter.
  std::shared_ptr<const revocation::CompressedRevocationSet>
      revocation_filter_;
  std::uint64_t epoch_ = 0;
};

// Publishes the store's current shape into `registry` as gauges
// (anchor_store_trusted_roots, anchor_store_distrusted_roots,
// anchor_store_gccs, anchor_store_epoch), labeled {store=<instance>} when
// `instance` is non-empty. RootStore is a value type that is copied and
// merged freely, so it cannot own series itself; long-lived holders
// (VerifyService on snapshot publish, anchorctl/daemon on demand) call this
// at well-defined points instead. Takes the read interface so mmap-backed
// StoreViews export the same series.
void export_store_metrics(const StoreReader& store,
                          metrics::Registry& registry,
                          const std::string& instance = "");

}  // namespace anchor::rootstore
