#include "rootstore/snapshot/format.hpp"

#include <cstring>

#include "util/sha256.hpp"

namespace anchor::rootstore::snapshot {

const char* to_string(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::kIo: return "io";
    case ErrorClass::kTruncated: return "truncated";
    case ErrorClass::kBadMagic: return "bad-magic";
    case ErrorClass::kBadEndian: return "bad-endian";
    case ErrorClass::kBadVersion: return "bad-version";
    case ErrorClass::kChecksumMismatch: return "checksum-mismatch";
    case ErrorClass::kLimitExceeded: return "limit-exceeded";
    case ErrorClass::kMalformed: return "malformed";
  }
  return "unknown";
}

std::string SnapshotError::to_string() const {
  std::string out = snapshot::to_string(cls);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

void reseal(Bytes& bytes) {
  if (bytes.size() < kHeaderSize) return;
  const std::size_t digest_off = offsetof(Header, digest);
  std::memset(bytes.data() + digest_off, 0, Sha256::kDigestSize);
  const Sha256::Digest digest = Sha256::hash(BytesView(bytes));
  std::memcpy(bytes.data() + digest_off, digest.data(), digest.size());
}

}  // namespace anchor::rootstore::snapshot
