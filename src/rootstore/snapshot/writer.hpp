// Snapshot writer: serializes a live RootStore (or a loaded StoreView —
// the round-trip tests re-emit views and demand byte equality) into the
// flat container format.hpp describes.
#pragma once

#include <string>

#include "rootstore/snapshot/format.hpp"
#include "rootstore/store.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace anchor::rootstore::snapshot {

// Complete snapshot image, header sealed (digest computed). Deterministic:
// equal store content and epoch produce identical bytes.
Bytes write_snapshot(const RootStore& store);

Status write_snapshot_file(const RootStore& store, const std::string& path);

}  // namespace anchor::rootstore::snapshot
