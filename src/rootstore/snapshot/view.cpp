#include "rootstore/snapshot/view.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "revocation/crlite.hpp"
#include "rootstore/snapshot/writer.hpp"
#include "util/sha256.hpp"

namespace anchor::rootstore::snapshot {

namespace {

// Bounds-checked reader over the mapped image. Every length and offset in
// the file is untrusted until it has passed through one of these.
class Cursor {
 public:
  Cursor(BytesView bytes, std::size_t pos) : bytes_(bytes), pos_(pos) {}

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool seek(std::size_t pos) {
    if (pos > bytes_.size()) return false;
    pos_ = pos;
    return true;
  }

  bool u8(std::uint8_t& v) { return raw(&v, sizeof v); }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  bool i64(std::int64_t& v) { return raw(&v, sizeof v); }
  bool str(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len) || remaining() < len) return false;
    s.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  bool blob(BytesView& out) {
    std::uint32_t len = 0;
    if (!u32(len) || remaining() < len) return false;
    out = bytes_.subspan(pos_, len);
    pos_ += len;
    return true;
  }

 private:
  bool raw(void* p, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  BytesView bytes_;
  std::size_t pos_;
};

constexpr std::uint8_t kFlagTls = 1;
constexpr std::uint8_t kFlagSmime = 2;
constexpr std::uint8_t kFlagEv = 4;
constexpr std::uint8_t kKnownFlags = kFlagTls | kFlagSmime | kFlagEv;

}  // namespace

StoreView::~StoreView() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

StoreView::OpenResult StoreView::open(const std::string& path) {
  OpenResult result;
  auto fail = [&result](ErrorClass cls, std::string message) {
    result.error = SnapshotError{cls, std::move(message)};
    return result;
  };
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return fail(ErrorClass::kIo, "cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return fail(ErrorClass::kIo, "cannot stat " + path);
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < kHeaderSize) {
    ::close(fd);
    return fail(ErrorClass::kTruncated,
                path + " is shorter than the snapshot header");
  }
  if (size > kMaxSnapshotBytes) {
    ::close(fd);
    return fail(ErrorClass::kLimitExceeded, path + " exceeds the size cap");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return fail(ErrorClass::kIo, "mmap failed: " + path);

  std::shared_ptr<StoreView> view(new StoreView());
  view->map_ = map;
  view->map_size_ = size;
  SnapshotError error;
  if (!view->load(BytesView(static_cast<const std::uint8_t*>(map), size),
                  error)) {
    result.error = std::move(error);  // view unmaps on destruction
    return result;
  }
  view->info_.source = "mmap:" + path;
  result.view = std::move(view);
  return result;
}

StoreView::OpenResult StoreView::from_bytes(Bytes bytes) {
  OpenResult result;
  std::shared_ptr<StoreView> view(new StoreView());
  view->owned_ = std::move(bytes);
  SnapshotError error;
  if (!view->load(BytesView(view->owned_), error)) {
    result.error = std::move(error);
    return result;
  }
  view->info_.source = "memory";
  result.view = std::move(view);
  return result;
}

bool StoreView::load(BytesView bytes, SnapshotError& error) {
  auto fail = [&error](ErrorClass cls, std::string message) {
    error = SnapshotError{cls, std::move(message)};
    return false;
  };

  if (bytes.size() < kHeaderSize) {
    return fail(ErrorClass::kTruncated, "image shorter than the header");
  }
  Header header{};
  std::memcpy(&header, bytes.data(), sizeof header);
  if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0) {
    return fail(ErrorClass::kBadMagic, "not a root-store snapshot");
  }
  if (header.endian_tag != kEndianTag) {
    return fail(ErrorClass::kBadEndian,
                "snapshot was written on a foreign-endian machine");
  }
  if (header.format_version != kFormatVersion) {
    return fail(ErrorClass::kBadVersion,
                "format version " + std::to_string(header.format_version) +
                    " (reader speaks " + std::to_string(kFormatVersion) + ")");
  }
  if (header.header_size != kHeaderSize) {
    return fail(ErrorClass::kMalformed, "unexpected header size");
  }
  if (header.file_size > bytes.size()) {
    return fail(ErrorClass::kTruncated,
                "image is " + std::to_string(bytes.size()) + " bytes, header" +
                    " declares " + std::to_string(header.file_size));
  }
  if (header.file_size < bytes.size()) {
    return fail(ErrorClass::kMalformed, "trailing bytes after declared size");
  }

  // Whole-file digest with the digest field zeroed: any single flipped bit
  // — header or payload — fails here unless a later structural check
  // catches it first.
  {
    Sha256 hasher;
    const std::size_t digest_off = offsetof(Header, digest);
    static const std::uint8_t kZeros[Sha256::kDigestSize] = {};
    hasher.update(bytes.subspan(0, digest_off));
    hasher.update(BytesView(kZeros, Sha256::kDigestSize));
    hasher.update(bytes.subspan(digest_off + Sha256::kDigestSize));
    const Sha256::Digest actual = hasher.finish();
    if (std::memcmp(actual.data(), header.digest, actual.size()) != 0) {
      return fail(ErrorClass::kChecksumMismatch,
                  "snapshot digest does not match file contents");
    }
  }

  if (header.trusted_count > kMaxRecords ||
      header.distrusted_count > kMaxRecords ||
      header.gcc_count > kMaxRecords) {
    return fail(ErrorClass::kLimitExceeded, "record count above reader cap");
  }
  if (header.revocation_count > 1) {
    return fail(ErrorClass::kMalformed,
                "snapshot declares more than one revocation filter");
  }

  Cursor cursor(bytes, kHeaderSize);

  // Walks one framed section, validating the offset table against the
  // records actually parsed: every record must start exactly where the
  // table says it does and the last must end exactly at the section end.
  auto section = [&](std::uint32_t kind, std::uint32_t count,
                     auto&& record_fn) {
    std::uint32_t actual_kind = 0, actual_count = 0;
    std::uint64_t body = 0;
    if (!cursor.u32(actual_kind) || actual_kind != kind) {
      return fail(ErrorClass::kMalformed, "section out of order");
    }
    if (!cursor.u32(actual_count) || actual_count != count) {
      return fail(ErrorClass::kMalformed,
                  "section count disagrees with header");
    }
    if (!cursor.u64(body) || body > cursor.remaining()) {
      return fail(ErrorClass::kTruncated, "section body out of bounds");
    }
    const std::uint64_t table_bytes =
        std::uint64_t{count} * sizeof(std::uint64_t);
    if (body < table_bytes) {
      return fail(ErrorClass::kMalformed, "section smaller than offset table");
    }
    const std::size_t section_end = cursor.pos() + body;
    std::vector<std::uint64_t> offsets(count);
    for (std::uint64_t& offset : offsets) {
      if (!cursor.u64(offset)) {
        return fail(ErrorClass::kTruncated, "offset table out of bounds");
      }
    }
    const std::size_t records_base = cursor.pos();
    for (std::uint32_t i = 0; i < count; ++i) {
      if (cursor.pos() - records_base != offsets[i]) {
        return fail(ErrorClass::kMalformed, "offset table mismatch");
      }
      if (!record_fn(cursor)) return false;  // record_fn filled `error`
      if (cursor.pos() > section_end) {
        return fail(ErrorClass::kTruncated, "record crosses section end");
      }
    }
    if (cursor.pos() != section_end) {
      return fail(ErrorClass::kMalformed, "section size mismatch");
    }
    return true;
  };

  trusted_order_.reserve(header.trusted_count);
  entries_.reserve(header.trusted_count);
  if (!section(kSectionTrusted, header.trusted_count, [&](Cursor& c) {
        std::uint8_t flags = 0;
        RootMetadata md;
        if (!c.u8(flags) || (flags & ~kKnownFlags) != 0) {
          return fail(ErrorClass::kMalformed, "bad trusted-root flags");
        }
        std::int64_t t = 0;
        if ((flags & kFlagTls) != 0) {
          if (!c.i64(t)) return fail(ErrorClass::kTruncated, "trusted record");
          md.tls_distrust_after = t;
        }
        if ((flags & kFlagSmime) != 0) {
          if (!c.i64(t)) return fail(ErrorClass::kTruncated, "trusted record");
          md.smime_distrust_after = t;
        }
        md.ev_allowed = (flags & kFlagEv) != 0;
        BytesView der;
        if (!c.str(md.justification) || !c.blob(der)) {
          return fail(ErrorClass::kTruncated, "trusted record");
        }
        auto cert = x509::Certificate::parse(der);
        if (!cert) {
          return fail(ErrorClass::kMalformed,
                      "trusted root DER: " + cert.error());
        }
        std::string hash = cert.value()->fingerprint_hex();
        if (!by_hash_.emplace(hash, entries_.size()).second) {
          return fail(ErrorClass::kMalformed, "duplicate trusted root " + hash);
        }
        trusted_order_.push_back(std::move(hash));
        entries_.push_back(RootEntry{std::move(cert).take(), std::move(md)});
        return true;
      })) {
    return false;
  }

  std::string prev_hash;
  if (!section(kSectionDistrusted, header.distrusted_count, [&](Cursor& c) {
        std::string hash, justification;
        if (!c.str(hash) || !c.str(justification)) {
          return fail(ErrorClass::kTruncated, "distrusted record");
        }
        // Canonical order is part of the format: sorted, no duplicates.
        if (!distrusted_.empty() && hash <= prev_hash) {
          return fail(ErrorClass::kMalformed, "distrusted entries unsorted");
        }
        prev_hash = hash;
        distrusted_.emplace(std::move(hash), std::move(justification));
        return true;
      })) {
    return false;
  }

  std::string current_root;
  if (!section(kSectionGccs, header.gcc_count, [&](Cursor& c) {
        std::string root, name, justification, source;
        BytesView blob;
        if (!c.str(root) || !c.str(name) || !c.str(justification) ||
            !c.str(source) || !c.blob(blob)) {
          return fail(ErrorClass::kTruncated, "gcc record");
        }
        if (root != current_root) {
          // Groups sorted ascending, each root appearing exactly once.
          if (root < current_root || gccs_by_root_.contains(root)) {
            return fail(ErrorClass::kMalformed, "gcc groups unsorted");
          }
          current_root = root;
        }
        auto program = datalog::CompiledProgram::deserialize(blob);
        if (!program) {
          return fail(ErrorClass::kMalformed,
                      "gcc '" + name + "': " + program.error());
        }
        auto gcc = core::Gcc::from_compiled(
            std::move(name), root, std::move(source), std::move(justification),
            std::make_shared<const datalog::CompiledProgram>(
                std::move(program).take()));
        if (!gcc) return fail(ErrorClass::kMalformed, gcc.error());
        auto& list = gccs_by_root_[root];
        for (const core::Gcc& existing : list) {
          if (existing.name() == gcc.value().name()) {
            return fail(ErrorClass::kMalformed,
                        "duplicate gcc name on root " + root);
          }
        }
        list.push_back(std::move(gcc).take());
        ++gcc_total_;
        return true;
      })) {
    return false;
  }

  if (!section(kSectionRevocation, header.revocation_count, [&](Cursor& c) {
        std::string text;
        if (!c.str(text)) {
          return fail(ErrorClass::kTruncated, "revocation record");
        }
        auto filter = revocation::CompressedRevocationSet::deserialize(text);
        if (!filter) {
          return fail(ErrorClass::kMalformed,
                      "revocation filter: " + filter.error());
        }
        revocation_filter_ =
            std::make_shared<const revocation::CompressedRevocationSet>(
                std::move(filter).take());
        return true;
      })) {
    return false;
  }

  if (cursor.remaining() != 0) {
    return fail(ErrorClass::kMalformed, "bytes after the last section");
  }

  info_.format_version = header.format_version;
  info_.epoch = header.epoch;
  info_.file_size = header.file_size;
  info_.trusted_count = header.trusted_count;
  info_.distrusted_count = header.distrusted_count;
  info_.gcc_count = header.gcc_count;
  info_.revocation_count = header.revocation_count;
  info_.digest_hex =
      to_hex(BytesView(header.digest, Sha256::kDigestSize));
  return true;
}

TrustState StoreView::state_of(const std::string& hash_hex) const {
  if (by_hash_.contains(hash_hex)) return TrustState::kTrusted;
  if (distrusted_.contains(hash_hex)) return TrustState::kDistrusted;
  return TrustState::kUnknown;
}

const RootEntry* StoreView::find(const std::string& hash_hex) const {
  auto it = by_hash_.find(hash_hex);
  return it == by_hash_.end() ? nullptr : &entries_[it->second];
}

std::vector<const RootEntry*> StoreView::trusted() const {
  std::vector<const RootEntry*> out;
  out.reserve(entries_.size());
  for (const RootEntry& entry : entries_) out.push_back(&entry);
  return out;
}

std::span<const core::Gcc> StoreView::gccs_for_root(
    const std::string& hash_hex) const {
  auto it = gccs_by_root_.find(hash_hex);
  if (it == gccs_by_root_.end()) return {};
  return it->second;
}

RootStore StoreView::materialize() const {
  RootStore out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.add_trusted_unchecked(entries_[i].cert, entries_[i].metadata);
  }
  std::vector<std::string> hashes;
  hashes.reserve(distrusted_.size());
  for (const auto& [hash, justification] : distrusted_) {
    hashes.push_back(hash);
  }
  std::sort(hashes.begin(), hashes.end());
  for (const std::string& hash : hashes) {
    out.distrust(hash, distrusted_.at(hash));
  }
  std::vector<std::string> roots;
  roots.reserve(gccs_by_root_.size());
  for (const auto& [root, list] : gccs_by_root_) roots.push_back(root);
  std::sort(roots.begin(), roots.end());
  for (const std::string& root : roots) {
    for (const core::Gcc& gcc : gccs_by_root_.at(root)) {
      out.attach_gcc(gcc);
    }
  }
  if (revocation_filter_ != nullptr) {
    out.set_revocation_filter(revocation_filter_);
  }
  // The rebuild above used the minimum possible mutation count, so the
  // store's own counter is at or below the snapshot epoch; pin it to
  // exactly the epoch the snapshot was written at.
  if (info_.epoch > 0) out.advance_epoch_past(info_.epoch - 1);
  return out;
}

Bytes StoreView::re_encode() const {
  // materialize() preserves content, order and epoch, and the writer is
  // deterministic — so this reproduces the loaded image byte for byte
  // (pinned by the round-trip tests).
  return write_snapshot(materialize());
}

}  // namespace anchor::rootstore::snapshot
