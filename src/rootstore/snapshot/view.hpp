// StoreView — the read side of the snapshot format: an immutable
// StoreReader over a memory-mapped (or in-memory) snapshot image. Opening
// a view is one linear validated pass: header and digest checks first
// (fail closed with a classified SnapshotError), then certificates are
// parsed once from DER and GCC programs are restored from their compiled
// serialization — no text grammar, no PEM, no Datalog recompilation. All
// daemon workers share one view through shared_ptr; VerifyService keeps
// the view alive for as long as any in-flight verification references its
// snapshot, so an epoch swap never unmaps memory under a reader.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rootstore/snapshot/format.hpp"
#include "rootstore/store.hpp"
#include "util/bytes.hpp"

namespace anchor::rootstore::snapshot {

class StoreView final : public StoreReader {
 public:
  // Header facts surfaced to operators (`anchorctl snapshot-info`).
  struct Info {
    std::uint16_t format_version = 0;
    std::uint64_t epoch = 0;
    std::uint64_t file_size = 0;
    std::uint32_t trusted_count = 0;
    std::uint32_t distrusted_count = 0;
    std::uint32_t gcc_count = 0;
    std::uint32_t revocation_count = 0;
    std::string digest_hex;
    std::string source;  // "mmap:<path>" or "memory"
  };

  struct OpenResult {
    std::shared_ptr<const StoreView> view;
    SnapshotError error;  // meaningful iff !ok()
    bool ok() const { return view != nullptr; }
  };

  // Maps `path` read-only and validates it fail-closed.
  static OpenResult open(const std::string& path);
  // Same validation over an in-memory image (tests, in-process adoption
  // straight from write_snapshot without touching disk).
  static OpenResult from_bytes(Bytes bytes);

  ~StoreView() override;
  StoreView(const StoreView&) = delete;
  StoreView& operator=(const StoreView&) = delete;

  // StoreReader — same answers, same order, as the RootStore the snapshot
  // was written from (the byte-identical-verdicts pin).
  TrustState state_of(const std::string& hash_hex) const override;
  const RootEntry* find(const std::string& hash_hex) const override;
  std::vector<const RootEntry*> trusted() const override;
  std::span<const core::Gcc> gccs_for_root(
      const std::string& hash_hex) const override;
  std::size_t trusted_count() const override { return entries_.size(); }
  std::size_t distrusted_count() const override { return distrusted_.size(); }
  std::size_t gcc_count() const override { return gcc_total_; }
  std::uint64_t epoch() const override { return info_.epoch; }
  std::shared_ptr<const revocation::CompressedRevocationSet>
  revocation_filter() const override {
    return revocation_filter_;
  }

  const std::unordered_map<std::string, std::string>& distrusted() const {
    return distrusted_;
  }
  const Info& info() const { return info_; }

  // Equivalent heap store: same content, same insertion order, same
  // epoch. Used when a view-backed service needs to mutate (the live store
  // is rebuilt from the adopted view before the mutation applies).
  RootStore materialize() const;

  // Re-emits the container; byte-equal to the image this view was loaded
  // from (write → load → re_encode is the format's round-trip pin).
  Bytes re_encode() const;

 private:
  StoreView() = default;

  // Parses and indexes `bytes`; on failure fills `error` and returns false.
  bool load(BytesView bytes, SnapshotError& error);

  Info info_;
  std::vector<std::string> trusted_order_;  // insertion order, parallel
  std::vector<RootEntry> entries_;          // to entries_
  std::unordered_map<std::string, std::size_t> by_hash_;
  std::unordered_map<std::string, std::string> distrusted_;
  std::unordered_map<std::string, std::vector<core::Gcc>> gccs_by_root_;
  std::size_t gcc_total_ = 0;
  std::shared_ptr<const revocation::CompressedRevocationSet>
      revocation_filter_;

  Bytes owned_;             // from_bytes mode
  void* map_ = nullptr;     // mmap mode
  std::size_t map_size_ = 0;
};

}  // namespace anchor::rootstore::snapshot
