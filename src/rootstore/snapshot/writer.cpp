#include "rootstore/snapshot/writer.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "revocation/crlite.hpp"

namespace anchor::rootstore::snapshot {

namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void put_u64(Bytes& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void put_i64(Bytes& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_str(Bytes& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

void put_blob(Bytes& out, const Bytes& b) {
  put_u32(out, static_cast<std::uint32_t>(b.size()));
  out.insert(out.end(), b.begin(), b.end());
}

// Accumulates records, then emits the framed section: the offset table
// makes record i addressable by computation instead of a scan.
struct SectionBuilder {
  std::vector<Bytes> records;

  void emit(Bytes& out, std::uint32_t kind) const {
    std::uint64_t body = records.size() * sizeof(std::uint64_t);
    for (const Bytes& rec : records) body += rec.size();
    put_u32(out, kind);
    put_u32(out, static_cast<std::uint32_t>(records.size()));
    put_u64(out, body);
    std::uint64_t offset = 0;
    for (const Bytes& rec : records) {
      put_u64(out, offset);
      offset += rec.size();
    }
    for (const Bytes& rec : records) {
      out.insert(out.end(), rec.begin(), rec.end());
    }
  }
};

constexpr std::uint8_t kFlagTls = 1;
constexpr std::uint8_t kFlagSmime = 2;
constexpr std::uint8_t kFlagEv = 4;

}  // namespace

Bytes write_snapshot(const RootStore& store) {
  // Trusted roots in insertion order: the order path search tries
  // candidate roots, hence part of the byte-identical-verdicts contract.
  SectionBuilder trusted;
  for (const RootEntry* entry : store.trusted()) {
    Bytes rec;
    const RootMetadata& md = entry->metadata;
    std::uint8_t flags = 0;
    if (md.tls_distrust_after) flags |= kFlagTls;
    if (md.smime_distrust_after) flags |= kFlagSmime;
    if (md.ev_allowed) flags |= kFlagEv;
    rec.push_back(flags);
    if (md.tls_distrust_after) put_i64(rec, *md.tls_distrust_after);
    if (md.smime_distrust_after) put_i64(rec, *md.smime_distrust_after);
    put_str(rec, md.justification);
    put_blob(rec, entry->cert->der());
    trusted.records.push_back(std::move(rec));
  }

  // Distrust entries sorted by hash: the set is consulted by lookup only,
  // so the canonical order makes equal content byte-equal.
  std::vector<std::string> distrusted_hashes;
  distrusted_hashes.reserve(store.distrusted().size());
  for (const auto& [hash, justification] : store.distrusted()) {
    distrusted_hashes.push_back(hash);
  }
  std::sort(distrusted_hashes.begin(), distrusted_hashes.end());
  SectionBuilder distrusted;
  for (const std::string& hash : distrusted_hashes) {
    Bytes rec;
    put_str(rec, hash);
    put_str(rec, store.distrusted().at(hash));
    distrusted.records.push_back(std::move(rec));
  }

  // GCCs grouped by root ascending, attachment order within a root.
  SectionBuilder gccs;
  for (const std::string& root : store.gccs().roots_sorted()) {
    for (const core::Gcc& gcc : store.gccs().for_root(root)) {
      Bytes rec;
      put_str(rec, root);
      put_str(rec, gcc.name());
      put_str(rec, gcc.justification());
      put_str(rec, gcc.source());
      Bytes compiled;
      gcc.compiled()->serialize(compiled);
      put_blob(rec, compiled);
      gccs.records.push_back(std::move(rec));
    }
  }

  // v2: the store-distributed revocation filter, zero or one record. The
  // section frame is always present so readers validate order
  // unconditionally.
  SectionBuilder revocation;
  if (auto filter = store.revocation_filter()) {
    Bytes rec;
    put_str(rec, filter->serialize());
    revocation.records.push_back(std::move(rec));
  }

  Bytes out(kHeaderSize, 0);
  trusted.emit(out, kSectionTrusted);
  distrusted.emit(out, kSectionDistrusted);
  gccs.emit(out, kSectionGccs);
  revocation.emit(out, kSectionRevocation);

  Header header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.endian_tag = kEndianTag;
  header.format_version = kFormatVersion;
  header.header_size = kHeaderSize;
  header.file_size = out.size();
  header.epoch = store.epoch();
  header.trusted_count = static_cast<std::uint32_t>(trusted.records.size());
  header.distrusted_count =
      static_cast<std::uint32_t>(distrusted.records.size());
  header.gcc_count = static_cast<std::uint32_t>(gccs.records.size());
  header.revocation_count =
      static_cast<std::uint32_t>(revocation.records.size());
  std::memcpy(out.data(), &header, sizeof header);
  reseal(out);
  return out;
}

Status write_snapshot_file(const RootStore& store, const std::string& path) {
  const Bytes image = write_snapshot(store);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return err("snapshot: cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  out.flush();
  if (!out.good()) return err("snapshot: short write to " + path);
  return {};
}

}  // namespace anchor::rootstore::snapshot
