// Flat snapshot container for root stores (DESIGN.md "Snapshot format &
// swap protocol"). A snapshot is everything a verifying worker needs —
// trusted roots with metadata and DER, distrusted hashes, and every GCC's
// *compiled* Datalog program — laid out flat so a daemon start is an mmap
// plus one linear validated pass: no text parsing, no PEM decoding, no GCC
// recompilation, and one in-memory image shared by all workers.
//
// Layout (all integers in the writer's native byte order — the header
// carries an endianness tag and readers reject foreign bytes rather than
// swapping them):
//
//   Header (80 bytes)
//     magic            "ANCHSNAP"                   8 bytes
//     endian_tag       0x01020304                   u32
//     format_version   2                            u16
//     header_size      80                           u16
//     file_size        total bytes incl. header     u64
//     epoch            RootStore::epoch() at write  u64
//     trusted_count                                 u32
//     distrusted_count                              u32
//     gcc_count                                     u32
//     revocation_count 0 or 1 (was reserved in v1)  u32
//     digest           SHA-256 over the whole file  32 bytes
//                      with this field zeroed
//   Section kTrusted    (records in *insertion order* — path search tries
//                        candidate roots in this order, so preserving it is
//                        what makes StoreView verdicts byte-identical to
//                        the source store's)
//   Section kDistrusted (records sorted by hash — order is not observable
//                        on the verdict path, so the canonical order wins)
//   Section kGccs       (grouped by root hash ascending; attachment order
//                        within a root — diagnostics name the first failing
//                        GCC, so per-root order is part of the contract)
//   Section kRevocation (v2: zero or one record — the store-distributed
//                        CRLite-style filter's text serialization; always
//                        framed, possibly empty, so the section order check
//                        stays unconditional)
//
// Each section is framed {kind u32, count u32, body_size u64} and its body
// opens with a u64 offset table (one entry per record, relative to the end
// of the table): record i lives at a computed address, not behind a scan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace anchor::rootstore::snapshot {

inline constexpr char kMagic[8] = {'A', 'N', 'C', 'H', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kEndianTag = 0x01020304;
inline constexpr std::uint16_t kFormatVersion = 2;
inline constexpr std::uint16_t kHeaderSize = 80;

// Section kinds, in required file order.
inline constexpr std::uint32_t kSectionTrusted = 1;
inline constexpr std::uint32_t kSectionDistrusted = 2;
inline constexpr std::uint32_t kSectionGccs = 3;
inline constexpr std::uint32_t kSectionRevocation = 4;

// Hard ceilings enforced before any count-driven allocation. The digest
// authenticates accidental corruption, not hostile files, so a reader
// never trusts a count further than these.
inline constexpr std::uint32_t kMaxRecords = 1u << 22;
inline constexpr std::uint64_t kMaxSnapshotBytes = 1ull << 32;

struct Header {
  char magic[8];
  std::uint32_t endian_tag;
  std::uint16_t format_version;
  std::uint16_t header_size;
  std::uint64_t file_size;
  std::uint64_t epoch;
  std::uint32_t trusted_count;
  std::uint32_t distrusted_count;
  std::uint32_t gcc_count;
  std::uint32_t revocation_count;  // the v1 reserved field, now meaningful
  std::uint8_t digest[32];
};
static_assert(sizeof(Header) == kHeaderSize);
static_assert(offsetof(Header, digest) == 48);

// Rejection taxonomy. Tests (and operators reading anchorctl output)
// branch on the class, not the message text.
enum class ErrorClass {
  kIo,                // open/stat/mmap failed
  kTruncated,         // shorter than the header or its declared file_size
  kBadMagic,          // not a snapshot file
  kBadEndian,         // written on a foreign-endian machine; not swizzled
  kBadVersion,        // format_version this reader does not speak
  kChecksumMismatch,  // bit rot: digest over the file does not match
  kLimitExceeded,     // a count or size above the reader's hard ceilings
  kMalformed,         // structural damage past the header
};

const char* to_string(ErrorClass cls);

struct SnapshotError {
  ErrorClass cls = ErrorClass::kMalformed;
  std::string message;

  // "checksum-mismatch: snapshot digest does not match file contents"
  std::string to_string() const;
};

// Recomputes and stores the header digest of a complete snapshot image:
// SHA-256 over all of `bytes` with the digest field zeroed. The writer
// calls this last; tests call it to re-seal deliberately patched images so
// a specific later check (bad version, bad section) is what fires.
void reseal(Bytes& bytes);

}  // namespace anchor::rootstore::snapshot
