// Scope-of-issuance analysis (§5.2 of the paper): "Starting from a given
// set of roots, the study should construct all certificate paths and then
// determine each CA certificate's scope of issuance" — the names,
// lifetimes, key usages and other fields a CA has historically issued for.
//
// The analysis consumes the corpus as a stand-in for CT logs and produces,
// per CA, the observed scope plus the aggregate TLD-concentration
// distribution that CAge reported (90% of CAs issue for <= 10 TLDs).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"

namespace anchor::preemptive {

struct ScopeOfIssuance {
  std::set<std::string> tlds;
  std::set<std::string> key_usages;          // "digitalSignature", ...
  std::set<std::string> extended_key_usages; // "id-kp-serverAuth", ...
  std::int64_t max_lifetime_seconds = 0;
  bool saw_ev = false;
  std::size_t certificates_observed = 0;
  // Per-TLD issuance counts (input to bimodal detection).
  std::map<std::string, std::size_t> tld_counts;

  bool empty() const { return certificates_observed == 0; }
};

// Folds one observed certificate into a scope (exposed for log-driven
// analyzers such as ctlog::LogMonitor).
void observe_certificate(ScopeOfIssuance& scope, const x509::Certificate& leaf);

// Per-intermediate scope, indexed like corpus.intermediates().
std::vector<ScopeOfIssuance> analyze_intermediates(const corpus::Corpus& corpus);

// Per-root scope: union over the root's subordinates (chains bottom out at
// the root, so the root's de facto scope is everything issued beneath it).
std::vector<ScopeOfIssuance> analyze_roots(const corpus::Corpus& corpus);

// CDF over distinct-TLD counts: result[k] = fraction of CAs (with >= 1
// observed certificate) issuing for <= k TLDs. result[0] unused.
std::vector<double> tld_count_cdf(const std::vector<ScopeOfIssuance>& scopes,
                                  std::size_t max_k);

// Smallest k with CDF(k) >= quantile (e.g. 0.9 -> the paper's "90% <= 10").
std::size_t tld_quantile(const std::vector<ScopeOfIssuance>& scopes,
                         double quantile);

// Bimodal-scope detection (§5.2: "if a CA exhibits a bi-modal scope of
// issuance, the CA could potentially be split into two root certificates").
// Partitions the CA's TLDs into two clusters by issuance volume (2-means on
// log counts); returns the split when both clusters are substantial and
// well separated.
struct BimodalSplit {
  std::set<std::string> heavy;  // high-volume cluster
  std::set<std::string> light;
  double separation = 0;  // ratio of cluster means (log domain distance)
};

std::optional<BimodalSplit> detect_bimodal(const ScopeOfIssuance& scope,
                                           double min_separation = 2.0,
                                           std::size_t min_cluster = 2);

}  // namespace anchor::preemptive
