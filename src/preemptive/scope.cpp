#include "preemptive/scope.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace anchor::preemptive {

void observe_certificate(ScopeOfIssuance& scope,
                         const x509::Certificate& leaf) {
  ++scope.certificates_observed;
  if (leaf.subject_alt_name()) {
    for (const auto& name : leaf.subject_alt_name()->dns_names) {
      std::string tld = tld_of(name);
      scope.tlds.insert(tld);
      ++scope.tld_counts[tld];
    }
  }
  if (leaf.key_usage()) {
    for (const auto& usage : leaf.key_usage()->names()) {
      scope.key_usages.insert(usage);
    }
  }
  if (leaf.extended_key_usage()) {
    for (const auto& usage : leaf.extended_key_usage()->names()) {
      scope.extended_key_usages.insert(usage);
    }
  }
  scope.max_lifetime_seconds =
      std::max(scope.max_lifetime_seconds, leaf.lifetime_seconds());
  scope.saw_ev = scope.saw_ev || leaf.is_ev();
}

namespace {
// Local alias used by the corpus-indexed analyzers below.
void observe(ScopeOfIssuance& scope, const x509::Certificate& leaf) {
  observe_certificate(scope, leaf);
}
}  // namespace

std::vector<ScopeOfIssuance> analyze_intermediates(
    const corpus::Corpus& corpus) {
  std::vector<ScopeOfIssuance> scopes(corpus.intermediates().size());
  for (const corpus::LeafRecord& record : corpus.leaves()) {
    observe(scopes[static_cast<std::size_t>(record.issuer_intermediate)],
            *record.cert);
  }
  return scopes;
}

std::vector<ScopeOfIssuance> analyze_roots(const corpus::Corpus& corpus) {
  std::vector<ScopeOfIssuance> scopes(corpus.roots().size());
  for (const corpus::LeafRecord& record : corpus.leaves()) {
    const corpus::CaProfile& intermediate =
        corpus.intermediates()[static_cast<std::size_t>(
            record.issuer_intermediate)];
    observe(scopes[static_cast<std::size_t>(intermediate.parent_root)],
            *record.cert);
  }
  return scopes;
}

std::vector<double> tld_count_cdf(const std::vector<ScopeOfIssuance>& scopes,
                                  std::size_t max_k) {
  std::size_t active = 0;
  std::vector<std::size_t> histogram(max_k + 1, 0);
  for (const auto& scope : scopes) {
    if (scope.empty()) continue;
    ++active;
    std::size_t k = std::min(scope.tlds.size(), max_k);
    ++histogram[k];
  }
  std::vector<double> cdf(max_k + 1, 0.0);
  if (active == 0) return cdf;
  std::size_t cumulative = 0;
  for (std::size_t k = 0; k <= max_k; ++k) {
    cumulative += histogram[k];
    cdf[k] = static_cast<double>(cumulative) / static_cast<double>(active);
  }
  return cdf;
}

std::size_t tld_quantile(const std::vector<ScopeOfIssuance>& scopes,
                         double quantile) {
  std::vector<std::size_t> counts;
  for (const auto& scope : scopes) {
    if (!scope.empty()) counts.push_back(scope.tlds.size());
  }
  if (counts.empty()) return 0;
  std::sort(counts.begin(), counts.end());
  std::size_t index = static_cast<std::size_t>(
      std::ceil(quantile * static_cast<double>(counts.size())));
  if (index > 0) --index;
  return counts[index];
}

std::optional<BimodalSplit> detect_bimodal(const ScopeOfIssuance& scope,
                                           double min_separation,
                                           std::size_t min_cluster) {
  if (scope.tld_counts.size() < 2 * min_cluster) return std::nullopt;

  // 1-D 2-means on log counts.
  std::vector<std::pair<std::string, double>> points;
  for (const auto& [tld, count] : scope.tld_counts) {
    points.emplace_back(tld, std::log(static_cast<double>(count) + 1.0));
  }
  std::sort(points.begin(), points.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  double lo = points.front().second;
  double hi = points.back().second;
  if (hi - lo < 1e-9) return std::nullopt;
  double center_light = lo;
  double center_heavy = hi;
  std::size_t boundary = 0;  // first index assigned to the heavy cluster

  for (int iter = 0; iter < 32; ++iter) {
    double midpoint = (center_light + center_heavy) / 2;
    std::size_t new_boundary = points.size();
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].second > midpoint) {
        new_boundary = i;
        break;
      }
    }
    if (new_boundary == 0 || new_boundary == points.size()) return std::nullopt;
    double sum_light = 0;
    double sum_heavy = 0;
    for (std::size_t i = 0; i < new_boundary; ++i) sum_light += points[i].second;
    for (std::size_t i = new_boundary; i < points.size(); ++i) {
      sum_heavy += points[i].second;
    }
    center_light = sum_light / static_cast<double>(new_boundary);
    center_heavy =
        sum_heavy / static_cast<double>(points.size() - new_boundary);
    if (new_boundary == boundary) break;
    boundary = new_boundary;
  }
  if (boundary == 0) return std::nullopt;

  BimodalSplit split;
  for (std::size_t i = 0; i < boundary; ++i) split.light.insert(points[i].first);
  for (std::size_t i = boundary; i < points.size(); ++i) {
    split.heavy.insert(points[i].first);
  }
  split.separation = std::exp(center_heavy - center_light);
  if (split.separation < min_separation || split.light.size() < min_cluster ||
      split.heavy.size() < min_cluster) {
    return std::nullopt;
  }
  return split;
}

}  // namespace anchor::preemptive
