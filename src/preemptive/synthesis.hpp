// Pre-emptive GCC synthesis (§5.2): "Operators could then construct a GCC
// for each CA certificate that limits future issuance to its current
// scope — e.g., if the CA tries to issue a certificate for a key usage it
// has never used before, the GCC would cause the certificate to be
// rejected."
//
// synthesize() turns an observed ScopeOfIssuance into Datalog source in the
// style of the paper's Listing 3 and wraps it as a core::Gcc bound to the
// root. The generated program rejects a chain when the leaf:
//   * carries a SAN under a TLD the CA never issued for,
//   * uses a key usage or extended key usage never observed, or
//   * exceeds the maximum observed lifetime (with configurable slack).
#pragma once

#include <string>

#include "core/gcc.hpp"
#include "preemptive/scope.hpp"

namespace anchor::preemptive {

struct SynthesisOptions {
  // Multiplier on the observed max lifetime (operators leave headroom).
  double lifetime_slack = 1.10;
  bool constrain_tlds = true;
  bool constrain_key_usage = true;
  bool constrain_eku = true;
  bool constrain_lifetime = true;
};

// Renders the Datalog source for a scope (exposed separately for tests and
// for the CAge comparison, which uses constrain_tlds only).
std::string render_scope_program(const ScopeOfIssuance& scope,
                                 const SynthesisOptions& options);

// Builds the GCC bound to `root`. Fails only if the scope is empty (an
// operator cannot constrain a CA they have never observed).
Result<core::Gcc> synthesize(const std::string& name,
                             const x509::Certificate& root,
                             const ScopeOfIssuance& scope,
                             const SynthesisOptions& options = {});

// The CAge baseline (Kasten et al., FC'13) as described in §5.2: name/TLD
// constraints only, enforced directly (no GCC machinery). "Using CAge, if
// a CA issued a certificate for a new TLD for which it has not issued a
// certificate before, browsers would reject that certificate."
class CageFilter {
 public:
  explicit CageFilter(const ScopeOfIssuance& scope);

  // True iff every SAN of the leaf falls under an observed TLD.
  bool allows(const x509::Certificate& leaf) const;

 private:
  std::set<std::string> tlds_;
};

}  // namespace anchor::preemptive
