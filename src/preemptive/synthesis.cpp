#include "preemptive/synthesis.hpp"

#include <cmath>
#include <sstream>

#include "util/strings.hpp"

namespace anchor::preemptive {

std::string render_scope_program(const ScopeOfIssuance& scope,
                                 const SynthesisOptions& options) {
  std::ostringstream out;
  out << "% Pre-emptive scope-of-issuance constraint (auto-generated).\n";
  out << "% Observed over " << scope.certificates_observed
      << " certificates.\n";

  if (options.constrain_tlds) {
    for (const auto& tld : scope.tlds) {
      out << "allowedTLD(\"" << tld << "\").\n";
    }
    out << "badName(Leaf) :- sanTLD(Leaf, T), \\+allowedTLD(T).\n";
  }
  if (options.constrain_key_usage) {
    for (const auto& usage : scope.key_usages) {
      out << "allowedKU(\"" << usage << "\").\n";
    }
    out << "badKU(Leaf) :- keyUsage(Leaf, U), \\+allowedKU(U).\n";
  }
  if (options.constrain_eku) {
    for (const auto& usage : scope.extended_key_usages) {
      out << "allowedEKU(\"" << usage << "\").\n";
    }
    out << "badEKU(Leaf) :- extendedKeyUsage(Leaf, U), \\+allowedEKU(U).\n";
  }
  if (options.constrain_lifetime) {
    auto limit = static_cast<std::int64_t>(
        std::llround(static_cast<double>(scope.max_lifetime_seconds) *
                     options.lifetime_slack));
    out << "lifetimeLimit(" << limit << ").\n";
    out << "badLifetime(Leaf) :- lifetime(Leaf, L), lifetimeLimit(Max), "
           "L > Max.\n";
  }

  out << "valid(Chain, _) :-\n  leaf(Chain, Leaf)";
  if (options.constrain_tlds) out << ",\n  \\+badName(Leaf)";
  if (options.constrain_key_usage) out << ",\n  \\+badKU(Leaf)";
  if (options.constrain_eku) out << ",\n  \\+badEKU(Leaf)";
  if (options.constrain_lifetime) out << ",\n  \\+badLifetime(Leaf)";
  out << ".\n";
  return out.str();
}

Result<core::Gcc> synthesize(const std::string& name,
                             const x509::Certificate& root,
                             const ScopeOfIssuance& scope,
                             const SynthesisOptions& options) {
  if (scope.empty()) {
    return err("preemptive: no observed issuance for '" +
               root.subject().common_name() + "'; cannot synthesize");
  }
  std::string source = render_scope_program(scope, options);
  return core::Gcc::for_certificate(
      name, root, std::move(source),
      "auto-generated pre-emptive scope constraint");
}

CageFilter::CageFilter(const ScopeOfIssuance& scope) : tlds_(scope.tlds) {}

bool CageFilter::allows(const x509::Certificate& leaf) const {
  if (!leaf.subject_alt_name()) return true;  // no names to judge
  for (const auto& name : leaf.subject_alt_name()->dns_names) {
    if (!tlds_.contains(tld_of(name))) return false;
  }
  return true;
}

}  // namespace anchor::preemptive
