// The paper's three listings as Datalog source, verbatim where possible
// (comments and `\+EV(Cert)` notation included). Tests parse and execute
// these exactly as printed; the Symantec listing takes the exempt hashes as
// parameters since the paper elides them ("exempt(...).").
#pragma once

#include <string>
#include <vector>

namespace anchor::incidents {

// Listing 1: constraints on the TrustCor root in NSS — S/MIME valid only
// for leaves issued before Nov 30 2022; TLS additionally requires non-EV.
std::string listing1_trustcor();

// Listing 2: NSS constraints on Symantec roots as of May 2018 — valid if
// the leaf predates June 1 2016 or the first intermediate is exempt.
std::string listing2_symantec(const std::vector<std::string>& exempt_hashes);

// Listing 3: pre-emptive constraint — TLS only, serverAuth EKU,
// digitalSignature KU, one-month maximum lifetime.
std::string listing3_preemptive();

}  // namespace anchor::incidents
