// The six root-CA incidents of §2.2, each rebuilt as an executable
// scenario: a miniature PKI reproducing the trust topology, the partial
// distrust the primary operator actually shipped (expressed as a GCC, as
// the paper proposes), and a set of labelled test chains with the outcome
// the primary's policy dictates.
//
//   TurkTrust (2013)    — revoked intermediates + no EV from the root
//   TUBITAK (2016)      — new root admitted under a gov-TLD name pin
//   ANSSI (2013)        — revoked intermediate + root pinned to French gov
//   India CCA (2014)    — revoked intermediates + root pinned to .in
//   MCS/CNNIC (2015)    — allowlist of exempted subordinates
//   WoSign (2016)       — distrust of *new* leaves + revoked backdated SHA-1
//   Symantec (2018)     — the paper's Listing 2: date cutoff + exemptions
//   Cross-sign (2021)   — a distrusted root resurrected via a cross-sign
//                         (the Hiller et al. bane case): rejected by the
//                         graph search, silently accepted by a tree walk
//
// These double as integration tests (tests/incidents_test.cpp) and as the
// workload for the binary-vs-partial-distrust experiment (E8).
#pragma once

#include <string>
#include <vector>

#include "chain/pool.hpp"
#include "chain/verifier.hpp"
#include "rootstore/store.hpp"
#include "util/simsig.hpp"

namespace anchor::incidents {

struct IncidentCase {
  std::string label;
  x509::CertPtr leaf;
  chain::VerifyOptions options;
  // Expected verdict under the primary's (GCC-expressed) policy.
  bool expect_valid = false;
};

struct Incident {
  std::string name;
  std::string summary;
  rootstore::RootStore store;  // primary store, GCC(s) attached
  SimSig signatures;
  chain::CertificatePool pool;
  std::vector<IncidentCase> cases;
  // Hashes of the roots the incident implicates (for E8's removal model).
  std::vector<std::string> affected_roots;
};

Incident make_turktrust();
// TUBITAK (2016): not a breach response but the admission-time counterpart
// the paper pairs with TurkTrust — "Mozilla added a hard-coded name
// constraint to NSS that allows the new root to issue leaf certificates
// for Turkish government TLDs only." Expressed as a GCC at inclusion.
Incident make_tubitak();
Incident make_anssi();
Incident make_india_cca();
Incident make_cnnic();
Incident make_wosign();
Incident make_symantec();
// The cross-signing bane case: a root the store explicitly distrusts keeps
// a live cross-sign from a still-trusted root, so a path to trust exists
// that never visits the distrusted certificate itself. Production
// semantics (VerifyOptions::graph_distrust = true) collapses the root and
// its cross-sign into one poisoned logical CA and rejects with
// kDistrusted; the pre-graph tree walk (graph_distrust = false) accepts —
// the disparity bench_disparity censuses.
Incident make_cross_sign();

// All eight, in chronological order of the underlying events.
std::vector<Incident> all_incidents();

}  // namespace anchor::incidents
