#include "incidents/listings.hpp"

namespace anchor::incidents {

std::string listing1_trustcor() {
  return R"(nov30th2022(1669784400). % Unix timestamp
valid(Chain, "S/MIME") :- % Valid rule for S/MIME usage
  leaf(Chain, Cert), % Get the chain's leaf certificate
  nov30th2022(T), % Get November 30th, 2022
  notBefore(Cert, NB), % Get the leaf's notBefore date
  NB < T. % Holds if notBefore before November 30th, 2022
valid(Chain, "TLS") :- % Valid rule for TLS usage
  leaf(Chain, Cert), % Get the chain's leaf certificate
  \+EV(Cert), % Assert that leaf is not EV
  nov30th2022(T), % Get November 30th, 2022
  notBefore(Cert, NB), % Get the leaf's notBefore date
  NB < T. % Holds if notBefore before November 30th, 2022
)";
}

std::string listing2_symantec(const std::vector<std::string>& exempt_hashes) {
  std::string source = "june1st2016(1464753600). % Unix timestamp\n";
  for (const auto& hash : exempt_hashes) {
    source += "exempt(\"" + hash + "\").\n";
  }
  source += R"(valid(Chain, _) :-
  leaf(Chain, Cert), % Get the chain's leaf
  notBefore(Cert, NB), % Get the leaf's notBefore date
  june1st2016(T), % Get June 1st, 2016 date
  NB < T. % Holds if notBefore date is before June 1st, 2016
valid(Chain, _) :-
  root(Chain, Root), % Get the chain's root
  signs(Root, Int), % Get the intermediate signed by root
  hash(Int, H), % Get the intermediate's SHA-256 hash
  exempt(H). % Holds if hash is one of exempt hashes
)";
  return source;
}

std::string listing3_preemptive() {
  return R"(oneMonthInSeconds(2630000).
lifetimeValid(Leaf) :-
  notBefore(Leaf, NB), % Get the leaf's notBefore date
  notAfter(Leaf, NA), % Get the leaf's notAfter date
  Lifetime = NA - NB, % Calculate leaf's lifetime
  oneMonthInSeconds(Limit), % Get one month (in seconds)
  Lifetime <= Limit. % Holds if leaf lifetime is < one month
validUsage(Leaf) :-
  extendedKeyUsage(Leaf, "id-kp-serverAuth"),
  keyUsage(Leaf, "digitalSignature").
valid(Chain, "TLS") :- % Valid TLS usage only
  leaf(Chain, Cert), % Get the chain's leaf certificate
  lifetimeValid(Cert), % Holds if leaf lifetime is valid
  validUsage(Cert).
)";
}

}  // namespace anchor::incidents
