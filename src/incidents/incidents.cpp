#include "incidents/incidents.hpp"

#include "incidents/listings.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

namespace anchor::incidents {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::DistinguishedName;

namespace {

// Shared mini-PKI scaffolding for incident scenarios.
struct MiniPki {
  SimSig sigs;
  std::uint64_t serial = 1;

  struct Ca {
    CertPtr cert;
    SimKeyPair key;
  };

  Ca make_root(const std::string& name, const std::string& org,
               int year_from = 2005, int year_to = 2035) {
    Ca ca;
    ca.key = SimSig::keygen(name);
    ca.cert = CertificateBuilder()
                  .serial(serial++)
                  .subject(DistinguishedName::make(name, org))
                  .issuer(DistinguishedName::make(name, org))
                  .validity(unix_date(year_from, 1, 1), unix_date(year_to, 1, 1))
                  .public_key(ca.key.key_id)
                  .ca(std::nullopt)
                  .sign(ca.key)
                  .take();
    sigs.register_key(ca.key);
    return ca;
  }

  Ca make_intermediate(const std::string& name, const Ca& parent,
                       int year_from = 2008, int year_to = 2030) {
    Ca ca;
    ca.key = SimSig::keygen(name);
    ca.cert = CertificateBuilder()
                  .serial(serial++)
                  .subject(DistinguishedName::make(
                      name, parent.cert->subject().organization()))
                  .issuer(parent.cert->subject())
                  .validity(unix_date(year_from, 1, 1), unix_date(year_to, 1, 1))
                  .public_key(ca.key.key_id)
                  .ca(0)
                  .sign(parent.key)
                  .take();
    sigs.register_key(ca.key);
    return ca;
  }

  CertPtr make_leaf(const std::string& domain, const Ca& issuer,
                    std::int64_t not_before, int lifetime_days = 365,
                    bool ev = false, bool smime = false) {
    SimKeyPair key = SimSig::keygen("leaf-" + domain + std::to_string(serial));
    x509::KeyUsage ku;
    ku.set(x509::KeyUsageBit::kDigitalSignature);
    ku.set(x509::KeyUsageBit::kKeyEncipherment);
    CertificateBuilder builder;
    builder.serial(serial++)
        .subject(DistinguishedName::make(domain))
        .issuer(issuer.cert->subject())
        .validity(not_before, not_before + std::int64_t{lifetime_days} * 86400)
        .public_key(key.key_id)
        .key_usage(ku)
        .dns_names({domain, "*." + domain});
    if (smime) {
      builder.extended_key_usage({x509::oids::kp_email_protection()});
    } else {
      builder.extended_key_usage({x509::oids::kp_server_auth()});
    }
    if (ev) builder.ev();
    return builder.sign(issuer.key).take();
  }
};

chain::VerifyOptions tls_at(std::int64_t time, std::string host) {
  chain::VerifyOptions options;
  options.time = time;
  options.hostname = std::move(host);
  options.usage = chain::Usage::kTls;
  return options;
}

void attach(Incident& incident, const std::string& gcc_name,
            const CertPtr& root, const std::string& source,
            const std::string& justification) {
  auto gcc = core::Gcc::for_certificate(gcc_name, *root, source, justification);
  // Incident GCCs are library-authored; a failure here is a programming
  // error surfaced loudly in tests.
  incident.store.attach_gcc(std::move(gcc).take());
}

}  // namespace

// ---------------------------------------------------------------------------
// TurkTrust, January 2013: two mis-issued intermediate CA certificates, one
// of which signed a leaf for *.google.com. Response: revoke the
// intermediates (CRLSet/OneCRL) and stop honoring EV from the root.
Incident make_turktrust() {
  MiniPki pki;
  Incident incident;
  incident.name = "turktrust";
  incident.summary =
      "2013: TURKTRUST mis-issued intermediates; one signed *.google.com. "
      "Revocation of the intermediates + EV distrust, as a GCC.";

  auto root = pki.make_root("TURKTRUST Elektronik Sertifika Hizmet", "TURKTRUST");
  auto good_int = pki.make_intermediate("TURKTRUST Issuing CA 1", root);
  auto bad_int1 = pki.make_intermediate("e-islem.kktcmerkezbankasi.org", root);
  auto bad_int2 = pki.make_intermediate("EGO Genel Mudurlugu", root);

  incident.affected_roots.push_back(root.cert->fingerprint_hex());
  rootstore::RootMetadata metadata;
  metadata.ev_allowed = true;  // EV removal is expressed in the GCC below
  (void)incident.store.add_trusted(root.cert, metadata);
  incident.pool.add(good_int.cert);
  incident.pool.add(bad_int1.cert);
  incident.pool.add(bad_int2.cert);

  std::string source =
      "revoked(\"" + bad_int1.cert->fingerprint_hex() + "\").\n" +
      "revoked(\"" + bad_int2.cert->fingerprint_hex() + "\").\n" +
      R"(inChain(Chain, C) :- certAt(Chain, _, C).
bad(Chain) :- inChain(Chain, C), hash(C, H), revoked(H).
valid(Chain, _) :-
  leaf(Chain, L),
  \+bad(Chain),
  \+EV(L).
)";
  attach(incident, "turktrust-2013", root.cert, source,
         "https://security.googleblog.com/2013/01/enhancing-digital-certificate-security.html");

  std::int64_t t = unix_date(2013, 2, 1);
  incident.cases.push_back(
      {"legit non-EV leaf under good intermediate",
       pki.make_leaf("bankasya.com.tr", good_int, unix_date(2012, 6, 1)),
       tls_at(t, "bankasya.com.tr"), true});
  incident.cases.push_back(
      {"mis-issued google.com leaf under revoked intermediate",
       pki.make_leaf("google.com", bad_int1, unix_date(2012, 12, 1)),
       tls_at(t, "google.com"), false});
  incident.cases.push_back(
      {"EV leaf under good intermediate (EV distrusted)",
       pki.make_leaf("ev-bank.com.tr", good_int, unix_date(2012, 6, 1), 365,
                     /*ev=*/true),
       tls_at(t, "ev-bank.com.tr"), false});
  incident.signatures = pki.sigs;
  return incident;
}

// ---------------------------------------------------------------------------
// TUBITAK, 2016: a new Turkish government root applies for inclusion;
// Mozilla admits it with a hard-coded name constraint pinning issuance to
// Turkish government TLD space. The pre-emptive flavour of partial trust:
// the GCC ships with the root's very first distribution.
Incident make_tubitak() {
  MiniPki pki;
  Incident incident;
  incident.name = "tubitak";
  incident.summary =
      "2016: TUBITAK Kamu SM root admitted to NSS with a hard-coded name "
      "constraint limiting issuance to Turkish government TLD space, "
      "expressed as a GCC attached at inclusion time.";

  auto root = pki.make_root("TUBITAK Kamu SM SSL Kok Sertifikasi", "TUBITAK");
  auto issuing = pki.make_intermediate("Kamu SM SSL Sertifika Hizmetleri", root);

  incident.affected_roots.push_back(root.cert->fingerprint_hex());
  (void)incident.store.add_trusted(root.cert);
  incident.pool.add(issuing.cert);

  std::string source = R"(permitted("gov.tr").
permitted("k12.tr").
permitted("pol.tr").
permitted("mil.tr").
permitted("tsk.tr").
permitted("kep.tr").
permitted("bel.tr").
permitted("edu.tr").
goodName(L, N) :- nameSuffix(L, N, S), permitted(S).
badName(L) :- san(L, N), \+goodName(L, N).
valid(Chain, _) :-
  leaf(Chain, L),
  \+badName(L).
)";
  attach(incident, "tubitak-2016", root.cert, source,
         "https://bugzilla.mozilla.org/show_bug.cgi?id=1262809");

  std::int64_t t = unix_date(2017, 3, 1);
  incident.cases.push_back(
      {"Turkish government portal",
       pki.make_leaf("turkiye.gov.tr", issuing, unix_date(2016, 9, 1)),
       tls_at(t, "turkiye.gov.tr"), true});
  incident.cases.push_back(
      {"Turkish military domain",
       pki.make_leaf("hvkk.tsk.tr", issuing, unix_date(2016, 10, 1)),
       tls_at(t, "hvkk.tsk.tr"), true});
  incident.cases.push_back(
      {"commercial .com.tr domain (outside the pin)",
       pki.make_leaf("bank.com.tr", issuing, unix_date(2016, 11, 1)),
       tls_at(t, "bank.com.tr"), false});
  incident.cases.push_back(
      {"mis-issued google.com leaf",
       pki.make_leaf("google.com", issuing, unix_date(2016, 12, 1)),
       tls_at(t, "google.com"), false});
  incident.signatures = pki.sigs;
  return incident;
}

// ---------------------------------------------------------------------------
// ANSSI, December 2013: a French-government intermediate used to MITM
// Google domains. Response: revoke it and name-constrain the root to
// French(-government) domain space.
Incident make_anssi() {
  MiniPki pki;
  Incident incident;
  incident.name = "anssi";
  incident.summary =
      "2013: ANSSI intermediate MITMed Google domains. Revocation + root "
      "name-constrained to French TLD space, as a GCC.";

  auto root = pki.make_root("IGC/A", "ANSSI");
  auto good_int = pki.make_intermediate("ANSSI Service CA", root);
  auto bad_int = pki.make_intermediate("DG Tresor", root);

  incident.affected_roots.push_back(root.cert->fingerprint_hex());
  (void)incident.store.add_trusted(root.cert);
  incident.pool.add(good_int.cert);
  incident.pool.add(bad_int.cert);

  std::string source =
      "revoked(\"" + bad_int.cert->fingerprint_hex() + "\").\n" +
      R"(permitted("fr").
permitted("gouv.fr").
inChain(Chain, C) :- certAt(Chain, _, C).
bad(Chain) :- inChain(Chain, C), hash(C, H), revoked(H).
goodName(L, N) :- nameSuffix(L, N, S), permitted(S).
badName(L) :- san(L, N), \+goodName(L, N).
valid(Chain, _) :-
  leaf(Chain, L),
  \+bad(Chain),
  \+badName(L).
)";
  attach(incident, "anssi-2013", root.cert, source,
         "https://bugzilla.mozilla.org/show_bug.cgi?id=952572");

  std::int64_t t = unix_date(2014, 1, 15);
  incident.cases.push_back(
      {"legit French government site",
       pki.make_leaf("impots.gouv.fr", good_int, unix_date(2013, 6, 1)),
       tls_at(t, "impots.gouv.fr"), true});
  incident.cases.push_back(
      {"MITM google.com leaf under revoked intermediate",
       pki.make_leaf("google.com", bad_int, unix_date(2013, 11, 20)),
       tls_at(t, "google.com"), false});
  incident.cases.push_back(
      {"non-French domain under surviving intermediate",
       pki.make_leaf("example.com", good_int, unix_date(2013, 10, 1)),
       tls_at(t, "example.com"), false});
  incident.cases.push_back(
      {"plain .fr domain under surviving intermediate",
       pki.make_leaf("exemple.fr", good_int, unix_date(2013, 10, 1)),
       tls_at(t, "exemple.fr"), true});
  incident.signatures = pki.sigs;
  return incident;
}

// ---------------------------------------------------------------------------
// India CCA, July 2014: NIC intermediates mis-issued Google and Yahoo
// leaves. Response (Chrome): revoke the intermediates and constrain the
// root to Indian TLDs.
Incident make_india_cca() {
  MiniPki pki;
  Incident incident;
  incident.name = "india-cca";
  incident.summary =
      "2014: India CCA / NIC intermediates mis-issued Google and Yahoo "
      "leaves. Revocation + root pinned to .in, as a GCC.";

  auto root = pki.make_root("India CCA 2011", "Controller of Certifying Authorities");
  auto good_int = pki.make_intermediate("e-Mudhra CA", root);
  auto bad_int = pki.make_intermediate("NIC CA 2011", root);

  incident.affected_roots.push_back(root.cert->fingerprint_hex());
  (void)incident.store.add_trusted(root.cert);
  incident.pool.add(good_int.cert);
  incident.pool.add(bad_int.cert);

  std::string source =
      "revoked(\"" + bad_int.cert->fingerprint_hex() + "\").\n" +
      R"(permitted("in").
inChain(Chain, C) :- certAt(Chain, _, C).
bad(Chain) :- inChain(Chain, C), hash(C, H), revoked(H).
goodName(L, N) :- nameSuffix(L, N, S), permitted(S).
badName(L) :- san(L, N), \+goodName(L, N).
valid(Chain, _) :-
  leaf(Chain, L),
  \+bad(Chain),
  \+badName(L).
)";
  attach(incident, "india-cca-2014", root.cert, source,
         "https://security.googleblog.com/2014/07/maintaining-digital-certificate-security.html");

  std::int64_t t = unix_date(2014, 8, 15);
  incident.cases.push_back(
      {"legit Indian government portal",
       pki.make_leaf("india.gov.in", good_int, unix_date(2014, 1, 10)),
       tls_at(t, "india.gov.in"), true});
  incident.cases.push_back(
      {"mis-issued gmail leaf under revoked NIC intermediate",
       pki.make_leaf("mail.google.com", bad_int, unix_date(2014, 6, 25)),
       tls_at(t, "mail.google.com"), false});
  incident.cases.push_back(
      {"yahoo leaf under surviving intermediate, non-Indian TLD",
       pki.make_leaf("mail.yahoo.com", good_int, unix_date(2014, 6, 25)),
       tls_at(t, "mail.yahoo.com"), false});
  incident.signatures = pki.sigs;
  return incident;
}

// ---------------------------------------------------------------------------
// MCS/CNNIC, 2015: an unconstrained MCS Holdings intermediate was used to
// MITM traffic. Response: revoke it, then partially distrust the CNNIC
// root with "an allowlist of exempted subordinate certificates".
Incident make_cnnic() {
  MiniPki pki;
  Incident incident;
  incident.name = "cnnic";
  incident.summary =
      "2015: MCS Holdings intermediate under CNNIC used for MITM. Root "
      "restricted to an allowlist of exempted subordinates, as a GCC.";

  auto root = pki.make_root("CNNIC ROOT", "China Internet Network Information Center");
  auto exempt_int1 = pki.make_intermediate("CNNIC SSL A", root);
  auto exempt_int2 = pki.make_intermediate("CNNIC SSL B", root);
  auto mcs_int = pki.make_intermediate("MCS Holdings CA", root);
  auto post_int = pki.make_intermediate("CNNIC SSL C (post-incident)", root);

  incident.affected_roots.push_back(root.cert->fingerprint_hex());
  (void)incident.store.add_trusted(root.cert);
  incident.pool.add(exempt_int1.cert);
  incident.pool.add(exempt_int2.cert);
  incident.pool.add(mcs_int.cert);
  incident.pool.add(post_int.cert);

  std::string source =
      "exempt(\"" + exempt_int1.cert->fingerprint_hex() + "\").\n" +
      "exempt(\"" + exempt_int2.cert->fingerprint_hex() + "\").\n" +
      R"(valid(Chain, _) :-
  root(Chain, Root),
  signs(Root, Int),
  hash(Int, H),
  exempt(H).
)";
  attach(incident, "cnnic-2015", root.cert, source,
         "https://blog.mozilla.org/security/2015/03/23/revoking-trust-in-one-cnnic-intermediate-certificate/");

  std::int64_t t = unix_date(2015, 6, 1);
  incident.cases.push_back(
      {"leaf under exempted subordinate A",
       pki.make_leaf("site.cn", exempt_int1, unix_date(2015, 1, 1)),
       tls_at(t, "site.cn"), true});
  incident.cases.push_back(
      {"leaf under exempted subordinate B",
       pki.make_leaf("portal.cn", exempt_int2, unix_date(2015, 2, 1)),
       tls_at(t, "portal.cn"), true});
  incident.cases.push_back(
      {"MITM leaf under MCS intermediate",
       pki.make_leaf("google.com", mcs_int, unix_date(2015, 3, 1)),
       tls_at(t, "google.com"), false});
  incident.cases.push_back(
      {"leaf under new non-exempt subordinate",
       pki.make_leaf("shop.cn", post_int, unix_date(2015, 5, 1)),
       tls_at(t, "shop.cn"), false});
  incident.signatures = pki.sigs;
  return incident;
}

// ---------------------------------------------------------------------------
// WoSign/StartCom, October 2016: backdated SHA-1 certificates and an
// undisclosed acquisition. Response: distrust all *new* leaves chaining to
// the roots (existing leaves kept working) and revoke the backdated ones.
Incident make_wosign() {
  MiniPki pki;
  Incident incident;
  incident.name = "wosign";
  incident.summary =
      "2016: WoSign backdated SHA-1 certs and covertly acquired StartCom. "
      "New leaves distrusted via notBefore cutoff; backdated leaves "
      "revoked, as a GCC.";

  auto wosign_root = pki.make_root("CA WoSign Root", "WoSign CA Limited");
  auto startcom_root = pki.make_root("StartCom Certification Authority", "StartCom Ltd.");
  auto wosign_int = pki.make_intermediate("WoSign Class 3 Server CA", wosign_root);
  auto startcom_int = pki.make_intermediate("StartCom Class 1 Server CA", startcom_root);

  incident.affected_roots.push_back(wosign_root.cert->fingerprint_hex());
  incident.affected_roots.push_back(startcom_root.cert->fingerprint_hex());
  (void)incident.store.add_trusted(wosign_root.cert);
  (void)incident.store.add_trusted(startcom_root.cert);
  incident.pool.add(wosign_int.cert);
  incident.pool.add(startcom_int.cert);

  // The backdated certificate: notBefore forged into 2015 to dodge the
  // SHA-1 sunset; identified and revoked by hash.
  CertPtr backdated =
      pki.make_leaf("backdated.example.cn", wosign_int, unix_date(2015, 11, 1));

  const std::int64_t cutoff = unix_date(2016, 10, 21);
  auto make_source = [&](const std::string& revoked_hash) {
    return "cutoff(" + std::to_string(cutoff) + ").\n" +
           "revoked(\"" + revoked_hash + "\").\n" +
           R"(bad(Chain) :- leaf(Chain, L), hash(L, H), revoked(H).
valid(Chain, _) :-
  leaf(Chain, L),
  notBefore(L, NB),
  cutoff(T),
  NB < T,
  \+bad(Chain).
)";
  };
  attach(incident, "wosign-2016", wosign_root.cert,
         make_source(backdated->fingerprint_hex()),
         "https://blog.mozilla.org/security/2016/10/24/distrusting-new-wosign-and-startcom-certificates/");
  attach(incident, "startcom-2016", startcom_root.cert,
         make_source(backdated->fingerprint_hex()),
         "https://blog.mozilla.org/security/2016/10/24/distrusting-new-wosign-and-startcom-certificates/");

  std::int64_t t = unix_date(2017, 1, 10);
  incident.cases.push_back(
      {"existing WoSign leaf issued before the cutoff",
       pki.make_leaf("old-site.cn", wosign_int, unix_date(2016, 5, 1)),
       tls_at(t, "old-site.cn"), true});
  incident.cases.push_back(
      {"new WoSign leaf issued after the cutoff",
       pki.make_leaf("new-site.cn", wosign_int, unix_date(2016, 12, 1)),
       tls_at(t, "new-site.cn"), false});
  incident.cases.push_back(
      {"backdated SHA-1 leaf (revoked by hash)", backdated,
       tls_at(t, "backdated.example.cn"), false});
  incident.cases.push_back(
      {"existing StartCom leaf issued before the cutoff",
       pki.make_leaf("old-start.com", startcom_int, unix_date(2016, 8, 1)),
       tls_at(t, "old-start.com"), true});
  incident.signatures = pki.sigs;
  return incident;
}

// ---------------------------------------------------------------------------
// Symantec, May 2018 stage: leaves issued on/after June 1 2016 distrusted
// unless the first intermediate is one of the allowlisted,
// independently-operated subordinates (Apple, Google). This is the paper's
// Listing 2, instantiated with real hashes.
Incident make_symantec() {
  MiniPki pki;
  Incident incident;
  incident.name = "symantec";
  incident.summary =
      "2018: gradual Symantec distrust. Leaves from June 1 2016 onward "
      "rejected unless under an exempt (Apple/Google) intermediate — the "
      "paper's Listing 2.";

  auto root = pki.make_root("GeoTrust Global CA", "Symantec Corporation");
  auto normal_int = pki.make_intermediate("Symantec Class 3 Secure Server CA", root);
  auto apple_int = pki.make_intermediate("Apple IST CA 2", root);
  auto google_int = pki.make_intermediate("Google Internet Authority G2", root);

  incident.affected_roots.push_back(root.cert->fingerprint_hex());
  (void)incident.store.add_trusted(root.cert);
  incident.pool.add(normal_int.cert);
  incident.pool.add(apple_int.cert);
  incident.pool.add(google_int.cert);

  attach(incident, "symantec-2018", root.cert,
         listing2_symantec({apple_int.cert->fingerprint_hex(),
                            google_int.cert->fingerprint_hex()}),
         "https://wiki.mozilla.org/CA/Symantec_Issues");

  std::int64_t t = unix_date(2018, 6, 15);
  incident.cases.push_back(
      {"legacy leaf issued before June 1 2016",
       pki.make_leaf("legacy-shop.com", normal_int, unix_date(2016, 2, 1),
                     3 * 365),
       tls_at(t, "legacy-shop.com"), true});
  incident.cases.push_back(
      {"new leaf under ordinary Symantec intermediate",
       pki.make_leaf("new-shop.com", normal_int, unix_date(2017, 3, 1),
                     2 * 365),
       tls_at(t, "new-shop.com"), false});
  incident.cases.push_back(
      {"new leaf under exempt Apple intermediate",
       pki.make_leaf("icloud-service.com", apple_int, unix_date(2017, 9, 1),
                     2 * 365),
       tls_at(t, "icloud-service.com"), true});
  incident.cases.push_back(
      {"new leaf under exempt Google intermediate",
       pki.make_leaf("youtube-cdn.com", google_int, unix_date(2018, 1, 10)),
       tls_at(t, "youtube-cdn.com"), true});
  incident.signatures = pki.sigs;
  return incident;
}

// ---------------------------------------------------------------------------
// Cross-sign resurrection (the Hiller et al. bane case, modelled on the
// Symantec-era pattern where distrusted hierarchies stayed reachable
// through cross-signs from still-trusted roots): the store explicitly
// distrusts a legacy root, but a cross-sign certificate — same subject DN,
// same SPKI, signed by a trusted bridge root — remains in circulation. A
// tree walk that only checks the certificates *on* the winning path never
// sees the distrusted self-signed certificate and accepts; the graph
// search collapses both certificates into one logical CA, finds it
// poisoned, and rejects every path through it with kDistrusted.
Incident make_cross_sign() {
  MiniPki pki;
  Incident incident;
  incident.name = "cross-sign-resurrection";
  incident.summary =
      "2021: a distrusted legacy root stays reachable through a cross-sign "
      "from a trusted bridge root. Negative inclusion must poison the "
      "logical CA (subject + SPKI), not just the distrusted certificate.";

  auto bridge = pki.make_root("Universal Bridge Root", "Bridge Trust Ltd");
  auto legacy = pki.make_root("Legacy Commerce Root", "Legacy Trust Inc");
  auto issuing = pki.make_intermediate("Legacy Commerce Issuing CA", legacy);

  // The cross-sign: the legacy root's subject and key, certified by the
  // bridge. Same logical CA as `legacy`, different certificate.
  CertPtr cross = CertificateBuilder()
                      .serial(pki.serial++)
                      .subject(legacy.cert->subject())
                      .issuer(bridge.cert->subject())
                      .validity(unix_date(2010, 1, 1), unix_date(2033, 1, 1))
                      .public_key(legacy.key.key_id)
                      .ca(std::nullopt)
                      .sign(bridge.key)
                      .take();

  // A benign cross-signed CA for contrast: trusted via the bridge, never
  // distrusted — the boon case must keep working.
  auto modern = pki.make_intermediate("Modern Commerce CA", bridge);

  incident.affected_roots.push_back(legacy.cert->fingerprint_hex());
  (void)incident.store.add_trusted(bridge.cert);
  incident.store.distrust(legacy.cert->fingerprint_hex(),
                          "compromised legacy hierarchy (distrusted 2021)");
  incident.pool.add(issuing.cert);
  incident.pool.add(cross);
  incident.pool.add(legacy.cert);
  incident.pool.add(modern.cert);

  std::int64_t t = unix_date(2021, 9, 30);
  incident.cases.push_back(
      {"leaf under distrusted root via cross-sign (resurrection path)",
       pki.make_leaf("shop.example.com", issuing, unix_date(2021, 1, 1)),
       tls_at(t, "shop.example.com"), false});
  incident.cases.push_back(
      {"leaf under benign cross-signed CA",
       pki.make_leaf("modern.example.com", modern, unix_date(2021, 1, 1)),
       tls_at(t, "modern.example.com"), true});
  incident.signatures = pki.sigs;
  return incident;
}

std::vector<Incident> all_incidents() {
  std::vector<Incident> incidents;
  incidents.push_back(make_turktrust());
  incidents.push_back(make_tubitak());
  incidents.push_back(make_anssi());
  incidents.push_back(make_india_cca());
  incidents.push_back(make_cnnic());
  incidents.push_back(make_wosign());
  incidents.push_back(make_symantec());
  incidents.push_back(make_cross_sign());
  return incidents;
}

}  // namespace anchor::incidents
