#include "ctlog/log.hpp"

namespace anchor::ctlog {

Bytes SignedTreeHead::transcript() const {
  std::string t = "anchor-ct-sth/v1\n";
  t += "size " + std::to_string(tree_size) + "\n";
  t += "time " + std::to_string(timestamp) + "\n";
  t += "root " + to_hex(BytesView(root_hash.data(), root_hash.size())) + "\n";
  return to_bytes(t);
}

CtLog::CtLog(std::string name, SimSig& registry)
    : name_(std::move(name)), key_(SimSig::keygen("ct-log-" + name_)) {
  registry.register_key(key_);
}

std::uint64_t CtLog::submit(const x509::CertPtr& cert, std::int64_t timestamp) {
  last_timestamp_ = std::max(last_timestamp_, timestamp);
  entries_.push_back(cert);
  return tree_.append(BytesView(cert->der()));
}

SignedTreeHead CtLog::sth() const { return sth_at(tree_.size()); }

SignedTreeHead CtLog::sth_at(std::uint64_t tree_size) const {
  SignedTreeHead head;
  head.tree_size = tree_size;
  head.timestamp = last_timestamp_;
  head.root_hash = tree_.root_at(tree_size);
  head.signature = SimSig::sign(key_, BytesView(head.transcript()));
  return head;
}

bool CtLog::verify_sth(const SignedTreeHead& sth, BytesView key_id,
                       const SimSig& registry) {
  return registry.verify(key_id, BytesView(sth.transcript()),
                         BytesView(sth.signature));
}

Result<std::uint64_t> LogMonitor::poll() {
  SignedTreeHead head = log_.sth();
  if (!CtLog::verify_sth(head, BytesView(log_.key_id()), registry_)) {
    return err("ct monitor: STH signature invalid");
  }
  if (head.tree_size < last_sth_.tree_size) {
    return err("ct monitor: log shrank (" +
               std::to_string(last_sth_.tree_size) + " -> " +
               std::to_string(head.tree_size) + ")");
  }
  // History must be append-only: the old tree must be a prefix of the new.
  if (last_sth_.tree_size > 0 && head.tree_size > last_sth_.tree_size) {
    auto proof =
        log_.consistency_proof(last_sth_.tree_size, head.tree_size);
    if (!verify_consistency(last_sth_.tree_size, head.tree_size,
                            last_sth_.root_hash, head.root_hash, proof)) {
      return err("ct monitor: consistency proof failed — log rewrote history");
    }
  }

  std::uint64_t consumed = 0;
  const std::uint64_t first_new = next_index_;
  for (; next_index_ < head.tree_size; ++next_index_) {
    const x509::CertPtr& cert = log_.entry(next_index_);
    // Spot-check inclusion on a sample (first, last, every 64th): full
    // per-entry proofs would make the poll quadratic, and the consistency
    // proof above already pins the whole tree; per-entry inclusion is the
    // auditor role, sampled here.
    const bool sample = next_index_ == first_new ||
                        next_index_ + 1 == head.tree_size ||
                        next_index_ % 64 == 0;
    if (sample &&
        !verify_inclusion(log_.entry_leaf_hash(next_index_), next_index_,
                          head.tree_size,
                          log_.inclusion_proof(next_index_, head.tree_size),
                          head.root_hash)) {
      return err("ct monitor: inclusion proof failed at index " +
                 std::to_string(next_index_));
    }
    // Group issuance by issuer CN (the §5.2 "scope of issuance" unit).
    std::string issuer = cert->issuer().common_name();
    if (issuer.empty()) issuer = cert->issuer().to_string();
    preemptive::observe_certificate(scopes_[issuer], *cert);
    ++consumed;
  }
  last_sth_ = head;
  return consumed;
}

}  // namespace anchor::ctlog
