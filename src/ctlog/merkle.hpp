// RFC 6962-style Merkle hash trees: the data structure behind Certificate
// Transparency, which §5.2 of the paper leans on ("operators can more
// easily examine scopes of issuance because all certificates must be
// publicly logged") and which §4 gestures at for feeds ("the potential use
// of immutable logs").
//
// Hashing follows RFC 6962 §2.1 exactly:
//   MTH({})        = SHA-256()
//   leaf hash      = SHA-256(0x00 || entry)
//   interior node  = SHA-256(0x01 || left || right)
//   MTH(D[n])      = H(0x01 || MTH(D[0:k]) || MTH(D[k:n])),
//                    k the largest power of two < n
// together with audit (inclusion) and consistency proofs and their
// verifiers.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/sha256.hpp"

namespace anchor::ctlog {

using Hash = Sha256::Digest;

Hash empty_tree_hash();
Hash leaf_hash(BytesView entry);
Hash node_hash(const Hash& left, const Hash& right);

// Incremental Merkle tree over leaf hashes. Appending is O(log n) amortized
// via the standard "perfect subtree stack"; proofs are computed from the
// retained leaf hashes (O(n) time, which is fine at corpus scale and keeps
// the implementation obviously correct).
class MerkleTree {
 public:
  // Appends an entry; returns its leaf index.
  std::uint64_t append(BytesView entry);

  std::uint64_t size() const { return leaves_.size(); }

  // MTH over the first `tree_size` leaves (tree_size <= size()); the
  // zero-argument form covers the whole tree.
  Hash root() const;
  Hash root_at(std::uint64_t tree_size) const;

  // RFC 6962 §2.1.1 audit path for `index` within the first `tree_size`
  // leaves. Empty vector for a single-leaf tree.
  std::vector<Hash> inclusion_proof(std::uint64_t index,
                                    std::uint64_t tree_size) const;

  // RFC 6962 §2.1.2 consistency proof between tree sizes.
  std::vector<Hash> consistency_proof(std::uint64_t from_size,
                                      std::uint64_t to_size) const;

  const Hash& leaf(std::uint64_t index) const { return leaves_[index]; }

 private:
  std::vector<Hash> leaves_;
};

// Verifiers (RFC 6962 §2.1.1 / §2.1.4.2). Pure functions of public data.
bool verify_inclusion(const Hash& leaf, std::uint64_t index,
                      std::uint64_t tree_size, const std::vector<Hash>& path,
                      const Hash& root);

bool verify_consistency(std::uint64_t from_size, std::uint64_t to_size,
                        const Hash& from_root, const Hash& to_root,
                        const std::vector<Hash>& proof);

}  // namespace anchor::ctlog
