#include "ctlog/merkle.hpp"

#include <cassert>
#include <span>

namespace anchor::ctlog {

namespace {

// Largest power of two strictly less than n (n >= 2).
std::uint64_t split_point(std::uint64_t n) {
  std::uint64_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

using HashSpan = std::span<const Hash>;

Hash subtree_root(HashSpan leaves) {
  if (leaves.empty()) return empty_tree_hash();
  if (leaves.size() == 1) return leaves[0];
  std::uint64_t k = split_point(leaves.size());
  return node_hash(subtree_root(leaves.subspan(0, k)),
                   subtree_root(leaves.subspan(k)));
}

// RFC 6962 §2.1.1 PATH(m, D[n]).
void audit_path(std::uint64_t m, HashSpan leaves, std::vector<Hash>& out) {
  if (leaves.size() <= 1) return;
  std::uint64_t k = split_point(leaves.size());
  if (m < k) {
    audit_path(m, leaves.subspan(0, k), out);
    out.push_back(subtree_root(leaves.subspan(k)));
  } else {
    audit_path(m - k, leaves.subspan(k), out);
    out.push_back(subtree_root(leaves.subspan(0, k)));
  }
}

// RFC 6962 §2.1.2 SUBPROOF(m, D[n], b).
void subproof(std::uint64_t m, HashSpan leaves, bool complete_subtree,
              std::vector<Hash>& out) {
  if (m == leaves.size()) {
    if (!complete_subtree) out.push_back(subtree_root(leaves));
    return;
  }
  std::uint64_t k = split_point(leaves.size());
  if (m <= k) {
    subproof(m, leaves.subspan(0, k), complete_subtree, out);
    out.push_back(subtree_root(leaves.subspan(k)));
  } else {
    subproof(m - k, leaves.subspan(k), false, out);
    out.push_back(subtree_root(leaves.subspan(0, k)));
  }
}

}  // namespace

Hash empty_tree_hash() { return Sha256::hash({}); }

Hash leaf_hash(BytesView entry) {
  Sha256 h;
  const std::uint8_t prefix = 0x00;
  h.update(BytesView(&prefix, 1));
  h.update(entry);
  return h.finish();
}

Hash node_hash(const Hash& left, const Hash& right) {
  Sha256 h;
  const std::uint8_t prefix = 0x01;
  h.update(BytesView(&prefix, 1));
  h.update(BytesView(left.data(), left.size()));
  h.update(BytesView(right.data(), right.size()));
  return h.finish();
}

std::uint64_t MerkleTree::append(BytesView entry) {
  leaves_.push_back(leaf_hash(entry));
  return leaves_.size() - 1;
}

Hash MerkleTree::root() const { return root_at(leaves_.size()); }

Hash MerkleTree::root_at(std::uint64_t tree_size) const {
  assert(tree_size <= leaves_.size());
  return subtree_root(HashSpan(leaves_.data(), tree_size));
}

std::vector<Hash> MerkleTree::inclusion_proof(std::uint64_t index,
                                              std::uint64_t tree_size) const {
  assert(index < tree_size && tree_size <= leaves_.size());
  std::vector<Hash> out;
  audit_path(index, HashSpan(leaves_.data(), tree_size), out);
  return out;
}

std::vector<Hash> MerkleTree::consistency_proof(std::uint64_t from_size,
                                                std::uint64_t to_size) const {
  assert(from_size <= to_size && to_size <= leaves_.size());
  std::vector<Hash> out;
  if (from_size == 0 || from_size == to_size) return out;
  subproof(from_size, HashSpan(leaves_.data(), to_size),
           /*complete_subtree=*/true, out);
  return out;
}

// RFC 9162 §2.1.3.2.
bool verify_inclusion(const Hash& leaf, std::uint64_t index,
                      std::uint64_t tree_size, const std::vector<Hash>& path,
                      const Hash& root) {
  if (index >= tree_size) return false;
  std::uint64_t fn = index;
  std::uint64_t sn = tree_size - 1;
  Hash r = leaf;
  for (const Hash& p : path) {
    if (sn == 0) return false;
    if ((fn & 1) != 0 || fn == sn) {
      r = node_hash(p, r);
      if ((fn & 1) == 0) {
        // Right-edge node: skip levels where fn has trailing zeros.
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      r = node_hash(r, p);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && r == root;
}

// RFC 9162 §2.1.4.2.
bool verify_consistency(std::uint64_t from_size, std::uint64_t to_size,
                        const Hash& from_root, const Hash& to_root,
                        const std::vector<Hash>& proof) {
  if (from_size > to_size) return false;
  if (from_size == 0) {
    // Any tree is consistent with the empty tree; no proof required. The
    // empty tree has exactly one root, so the claimed from_root (and, when
    // to_size is also 0, the claimed to_root) must BE that root — checking
    // from_root == to_root alone would bless an arbitrary "root" for the
    // empty tree.
    if (!proof.empty() || from_root != empty_tree_hash()) return false;
    return to_size != 0 || to_root == empty_tree_hash();
  }
  if (from_size == to_size) return proof.empty() && from_root == to_root;
  if (proof.empty()) return false;

  std::uint64_t fn = from_size - 1;
  std::uint64_t sn = to_size - 1;
  while ((fn & 1) != 0) {
    fn >>= 1;
    sn >>= 1;
  }
  std::size_t cursor = 0;
  Hash fr;
  Hash sr;
  if (fn != 0) {
    fr = proof[cursor];
    sr = proof[cursor];
    ++cursor;
  } else {
    fr = from_root;
    sr = from_root;
  }
  for (; cursor < proof.size(); ++cursor) {
    const Hash& c = proof[cursor];
    if (sn == 0) return false;
    if ((fn & 1) != 0 || fn == sn) {
      fr = node_hash(c, fr);
      sr = node_hash(c, sr);
      if ((fn & 1) == 0) {
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      sr = node_hash(sr, c);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && fr == from_root && sr == to_root;
}

}  // namespace anchor::ctlog
