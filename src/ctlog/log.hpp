// A Certificate Transparency log and its consumers — the substitution for
// the real CT logs (Nimbus/Argon/Xenon) the paper's §5 measurement used,
// and the "immutable log" §4 suggests for feed security.
//
//   CtLog      — append-only certificate log with SimSig-signed tree heads,
//                inclusion proofs and consistency proofs;
//   LogMonitor — the §5.2 study loop: walks new entries, groups issuance by
//                issuer, and accumulates per-CA scopes the pre-emptive
//                synthesizer consumes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ctlog/merkle.hpp"
#include "preemptive/scope.hpp"
#include "util/result.hpp"
#include "util/simsig.hpp"
#include "x509/certificate.hpp"

namespace anchor::ctlog {

struct SignedTreeHead {
  std::uint64_t tree_size = 0;
  std::int64_t timestamp = 0;
  Hash root_hash{};
  Bytes signature;

  Bytes transcript() const;
};

class CtLog {
 public:
  // `name` identifies the log operator; the signing key derives from it and
  // registers into `registry` for client-side STH verification.
  CtLog(std::string name, SimSig& registry);

  // Appends a certificate; returns its entry index.
  std::uint64_t submit(const x509::CertPtr& cert, std::int64_t timestamp);

  std::uint64_t size() const { return tree_.size(); }
  const Bytes& key_id() const { return key_.key_id; }

  // Signed tree head over the current (or a historical) tree size.
  SignedTreeHead sth() const;
  SignedTreeHead sth_at(std::uint64_t tree_size) const;
  static bool verify_sth(const SignedTreeHead& sth, BytesView key_id,
                         const SimSig& registry);

  // Entry access (what a monitor fetches) and proofs (what an auditor
  // checks).
  const x509::CertPtr& entry(std::uint64_t index) const {
    return entries_[index];
  }
  std::vector<Hash> inclusion_proof(std::uint64_t index,
                                    std::uint64_t tree_size) const {
    return tree_.inclusion_proof(index, tree_size);
  }
  std::vector<Hash> consistency_proof(std::uint64_t from_size,
                                      std::uint64_t to_size) const {
    return tree_.consistency_proof(from_size, to_size);
  }
  Hash entry_leaf_hash(std::uint64_t index) const {
    return tree_.leaf(index);
  }

 private:
  std::string name_;
  SimKeyPair key_;
  std::int64_t last_timestamp_ = 0;
  MerkleTree tree_;
  std::vector<x509::CertPtr> entries_;
};

// The §5.2 measurement loop over a log: incremental, restartable, and
// auditing — every batch is cross-checked against a consistency proof from
// the last seen STH, so a log that rewrites history is detected.
class LogMonitor {
 public:
  explicit LogMonitor(const CtLog& log, const SimSig& registry)
      : log_(log), registry_(registry) {}

  // Processes all entries up to the log's current STH. Returns the number
  // of new entries consumed, or an error if the log failed verification.
  Result<std::uint64_t> poll();

  // Per-issuer (by issuer CN) observed scope of issuance.
  const std::map<std::string, preemptive::ScopeOfIssuance>& scopes() const {
    return scopes_;
  }
  std::uint64_t entries_seen() const { return next_index_; }

 private:
  const CtLog& log_;
  const SimSig& registry_;
  std::uint64_t next_index_ = 0;
  SignedTreeHead last_sth_;
  std::map<std::string, preemptive::ScopeOfIssuance> scopes_;
};

}  // namespace anchor::ctlog
