#include "asn1/oid.hpp"

#include "util/strings.hpp"

namespace anchor::asn1 {

Oid Oid::from_string(std::string_view dotted) {
  std::vector<std::uint32_t> arcs;
  for (const std::string& part : split(dotted, '.')) {
    if (part.empty()) return Oid();
    std::uint64_t value = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return Oid();
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      if (value > 0xffffffffULL) return Oid();
    }
    arcs.push_back(static_cast<std::uint32_t>(value));
  }
  if (arcs.size() < 2 || arcs[0] > 2 || (arcs[0] < 2 && arcs[1] > 39)) {
    return Oid();
  }
  return Oid(std::move(arcs));
}

Oid Oid::from_der_contents(BytesView contents) {
  if (contents.empty()) return Oid();
  std::vector<std::uint32_t> arcs;
  // First octet packs the first two arcs.
  std::size_t i = 0;
  std::uint64_t value = 0;
  // Decode one base-128 value starting at i.
  auto decode = [&](std::uint64_t& out) {
    out = 0;
    while (i < contents.size()) {
      std::uint8_t b = contents[i++];
      out = out << 7 | (b & 0x7f);
      if (out > 0xffffffffULL) return false;
      if ((b & 0x80) == 0) return true;
    }
    return false;  // truncated
  };
  if (!decode(value)) return Oid();
  if (value < 40) {
    arcs.push_back(0);
    arcs.push_back(static_cast<std::uint32_t>(value));
  } else if (value < 80) {
    arcs.push_back(1);
    arcs.push_back(static_cast<std::uint32_t>(value - 40));
  } else {
    arcs.push_back(2);
    arcs.push_back(static_cast<std::uint32_t>(value - 80));
  }
  while (i < contents.size()) {
    if (!decode(value)) return Oid();
    arcs.push_back(static_cast<std::uint32_t>(value));
  }
  return Oid(std::move(arcs));
}

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(arcs_[i]);
  }
  return out;
}

Bytes Oid::der_contents() const {
  Bytes out;
  if (!valid()) return out;
  auto encode = [&](std::uint64_t value) {
    std::uint8_t stack[10];
    int n = 0;
    do {
      stack[n++] = static_cast<std::uint8_t>(value & 0x7f);
      value >>= 7;
    } while (value != 0);
    while (n > 1) out.push_back(stack[--n] | 0x80);
    out.push_back(stack[0]);
  };
  encode(std::uint64_t(arcs_[0]) * 40 + arcs_[1]);
  for (std::size_t i = 2; i < arcs_.size(); ++i) encode(arcs_[i]);
  return out;
}

}  // namespace anchor::asn1
