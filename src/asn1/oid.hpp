// Object identifiers. X.509 extension and algorithm identification is
// OID-keyed; we implement full dotted-decimal <-> DER arc encoding.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace anchor::asn1 {

class Oid {
 public:
  Oid() = default;
  explicit Oid(std::vector<std::uint32_t> arcs) : arcs_(std::move(arcs)) {}

  // Parses "2.5.29.17"-style text. Returns empty Oid on malformed input
  // (check valid()).
  static Oid from_string(std::string_view dotted);

  // Decodes DER *contents* octets (tag/length already stripped).
  static Oid from_der_contents(BytesView contents);

  bool valid() const { return arcs_.size() >= 2; }
  const std::vector<std::uint32_t>& arcs() const { return arcs_; }

  std::string to_string() const;
  Bytes der_contents() const;

  bool operator==(const Oid&) const = default;
  auto operator<=>(const Oid&) const = default;

 private:
  std::vector<std::uint32_t> arcs_;
};

}  // namespace anchor::asn1
