// DER (X.690) encoder and decoder — the subset X.509 v3 needs: definite
// lengths only, INTEGER, BOOLEAN, BIT STRING, OCTET STRING, NULL, OID,
// UTF8String/PrintableString/IA5String, UTCTime/GeneralizedTime, SEQUENCE,
// SET, and context-specific tagging. The reader is strict: indefinite
// lengths, non-minimal lengths and truncated TLVs are rejected, which the
// fuzz-style tests rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "asn1/oid.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace anchor::asn1 {

// Tag numbers for the universal class.
enum class Tag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kBitString = 0x03,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kUtf8String = 0x0c,
  kPrintableString = 0x13,
  kIa5String = 0x16,
  kUtcTime = 0x17,
  kGeneralizedTime = 0x18,
  kSequence = 0x30,  // constructed bit set
  kSet = 0x31,
};

constexpr std::uint8_t kClassContext = 0x80;
constexpr std::uint8_t kConstructed = 0x20;

// Context-specific tag byte: [n] EXPLICIT/constructed by default.
constexpr std::uint8_t context_tag(unsigned n, bool constructed = true) {
  return static_cast<std::uint8_t>(kClassContext | (constructed ? kConstructed : 0) | n);
}

// ---------------------------------------------------------------------------
// Writer: builds DER bottom-up into an owned buffer.

class Writer {
 public:
  const Bytes& data() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

  // Raw TLV with explicit tag byte.
  void tlv(std::uint8_t tag, BytesView contents);

  void boolean(bool value);
  void integer(std::int64_t value);
  // Arbitrary-width unsigned integer from big-endian magnitude bytes
  // (leading zeros trimmed; 0x00 prepended if the high bit is set).
  void integer_bytes(BytesView magnitude);
  void bit_string(BytesView bytes);  // always 0 unused bits
  void octet_string(BytesView bytes);
  void null();
  void oid(const Oid& oid);
  void utf8_string(std::string_view text);
  void printable_string(std::string_view text);
  void ia5_string(std::string_view text);
  // X.509 validity rule: UTCTime for years in [1950, 2049], else
  // GeneralizedTime.
  void time(std::int64_t unix_seconds);

  // Nested structures: body() writes children into a fresh writer whose
  // output becomes this TLV's contents.
  template <typename Fn>
  void sequence(Fn&& body) {
    Writer inner;
    body(inner);
    tlv(static_cast<std::uint8_t>(Tag::kSequence), BytesView(inner.buffer_));
  }

  template <typename Fn>
  void set(Fn&& body) {
    Writer inner;
    body(inner);
    tlv(static_cast<std::uint8_t>(Tag::kSet), BytesView(inner.buffer_));
  }

  template <typename Fn>
  void context(unsigned n, Fn&& body) {
    Writer inner;
    body(inner);
    tlv(context_tag(n), BytesView(inner.buffer_));
  }

  // Primitive context-specific tag holding raw contents (IMPLICIT strings).
  void context_primitive(unsigned n, BytesView contents);

  void raw(BytesView der) { append(buffer_, der); }

 private:
  Bytes buffer_;
};

// ---------------------------------------------------------------------------
// Reader: cursor over a DER buffer. All read_* methods fail (return false /
// error Result) rather than throwing; parse code threads Status upward.

struct Tlv {
  std::uint8_t tag = 0;
  BytesView contents;   // view into the parent buffer
  BytesView full;       // tag+length+contents, for signature inputs/hashes
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  // Peeks the next tag byte without consuming. 0 if at end.
  std::uint8_t peek_tag() const;

  // Reads the next TLV of any tag.
  Status read_any(Tlv& out);
  // Reads the next TLV and checks the tag.
  Status read(std::uint8_t tag, Tlv& out);

  // Returns true and consumes iff the next TLV has the given tag
  // (for OPTIONAL fields).
  bool read_optional(std::uint8_t tag, Tlv& out);

  Status read_boolean(bool& out);
  Status read_integer(std::int64_t& out);
  Status read_integer_bytes(Bytes& magnitude);
  Status read_bit_string(Bytes& out);
  Status read_octet_string(Bytes& out);
  Status read_null();
  Status read_oid(Oid& out);
  Status read_string(std::string& out);  // UTF8/Printable/IA5
  Status read_time(std::int64_t& unix_seconds);

  // Enters the next SEQUENCE, giving a reader over its contents.
  Status read_sequence(Reader& inner);
  Status read_set(Reader& inner);
  Status read_context(unsigned n, Reader& inner);

 private:
  Status read_header(std::uint8_t& tag, std::size_t& length);

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace anchor::asn1
