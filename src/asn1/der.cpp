#include "asn1/der.hpp"

#include <cstdio>

#include "util/time.hpp"

namespace anchor::asn1 {

// ---------------------------------------------------------------------------
// Writer

namespace {
void write_length(Bytes& out, std::size_t length) {
  if (length < 0x80) {
    out.push_back(static_cast<std::uint8_t>(length));
    return;
  }
  std::uint8_t stack[8];
  int n = 0;
  std::size_t v = length;
  while (v != 0) {
    stack[n++] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | n));
  while (n > 0) out.push_back(stack[--n]);
}
}  // namespace

void Writer::tlv(std::uint8_t tag, BytesView contents) {
  buffer_.push_back(tag);
  write_length(buffer_, contents.size());
  append(buffer_, contents);
}

void Writer::boolean(bool value) {
  std::uint8_t contents = value ? 0xff : 0x00;
  tlv(static_cast<std::uint8_t>(Tag::kBoolean), BytesView(&contents, 1));
}

void Writer::integer(std::int64_t value) {
  // Two's-complement big-endian, minimal length.
  Bytes contents;
  bool negative = value < 0;
  std::uint64_t u = static_cast<std::uint64_t>(value);
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(u >> (56 - 8 * i));
  std::size_t start = 0;
  if (negative) {
    while (start < 7 && bytes[start] == 0xff && (bytes[start + 1] & 0x80)) ++start;
  } else {
    while (start < 7 && bytes[start] == 0x00 && !(bytes[start + 1] & 0x80)) ++start;
  }
  contents.assign(bytes + start, bytes + 8);
  tlv(static_cast<std::uint8_t>(Tag::kInteger), BytesView(contents));
}

void Writer::integer_bytes(BytesView magnitude) {
  Bytes contents;
  std::size_t start = 0;
  while (start + 1 < magnitude.size() && magnitude[start] == 0) ++start;
  if (magnitude.empty()) {
    contents.push_back(0);
  } else {
    if (magnitude[start] & 0x80) contents.push_back(0);
    contents.insert(contents.end(), magnitude.begin() + start, magnitude.end());
  }
  tlv(static_cast<std::uint8_t>(Tag::kInteger), BytesView(contents));
}

void Writer::bit_string(BytesView bytes) {
  Bytes contents;
  contents.push_back(0);  // unused bits
  append(contents, bytes);
  tlv(static_cast<std::uint8_t>(Tag::kBitString), BytesView(contents));
}

void Writer::octet_string(BytesView bytes) {
  tlv(static_cast<std::uint8_t>(Tag::kOctetString), bytes);
}

void Writer::null() { tlv(static_cast<std::uint8_t>(Tag::kNull), {}); }

void Writer::oid(const Oid& oid) {
  Bytes contents = oid.der_contents();
  tlv(static_cast<std::uint8_t>(Tag::kOid), BytesView(contents));
}

void Writer::utf8_string(std::string_view text) {
  Bytes b = to_bytes(text);
  tlv(static_cast<std::uint8_t>(Tag::kUtf8String), BytesView(b));
}

void Writer::printable_string(std::string_view text) {
  Bytes b = to_bytes(text);
  tlv(static_cast<std::uint8_t>(Tag::kPrintableString), BytesView(b));
}

void Writer::ia5_string(std::string_view text) {
  Bytes b = to_bytes(text);
  tlv(static_cast<std::uint8_t>(Tag::kIa5String), BytesView(b));
}

void Writer::time(std::int64_t unix_seconds) {
  CivilTime c = from_unix(unix_seconds);
  char buf[24];
  if (c.year >= 1950 && c.year <= 2049) {
    std::snprintf(buf, sizeof(buf), "%02d%02d%02d%02d%02d%02dZ", c.year % 100,
                  c.month, c.day, c.hour, c.minute, c.second);
    Bytes b = to_bytes(buf);
    tlv(static_cast<std::uint8_t>(Tag::kUtcTime), BytesView(b));
  } else {
    std::snprintf(buf, sizeof(buf), "%04d%02d%02d%02d%02d%02dZ", c.year,
                  c.month, c.day, c.hour, c.minute, c.second);
    Bytes b = to_bytes(buf);
    tlv(static_cast<std::uint8_t>(Tag::kGeneralizedTime), BytesView(b));
  }
}

void Writer::context_primitive(unsigned n, BytesView contents) {
  tlv(context_tag(n, /*constructed=*/false), contents);
}

// ---------------------------------------------------------------------------
// Reader

std::uint8_t Reader::peek_tag() const {
  return pos_ < data_.size() ? data_[pos_] : 0;
}

Status Reader::read_header(std::uint8_t& tag, std::size_t& length) {
  if (remaining() < 2) return err("DER: truncated header");
  tag = data_[pos_++];
  std::uint8_t first = data_[pos_++];
  if (first < 0x80) {
    length = first;
    return {};
  }
  if (first == 0x80) return err("DER: indefinite length not allowed");
  std::size_t num_octets = first & 0x7f;
  if (num_octets > sizeof(std::size_t)) return err("DER: length too large");
  if (remaining() < num_octets) return err("DER: truncated length");
  length = 0;
  for (std::size_t i = 0; i < num_octets; ++i) {
    length = length << 8 | data_[pos_++];
  }
  if (length < 0x80 || (num_octets > 1 && (length >> (8 * (num_octets - 1))) == 0)) {
    return err("DER: non-minimal length encoding");
  }
  return {};
}

Status Reader::read_any(Tlv& out) {
  std::size_t start = pos_;
  std::uint8_t tag;
  std::size_t length;
  if (Status s = read_header(tag, length); !s) return s;
  if (remaining() < length) return err("DER: truncated contents");
  out.tag = tag;
  out.contents = data_.subspan(pos_, length);
  pos_ += length;
  out.full = data_.subspan(start, pos_ - start);
  return {};
}

Status Reader::read(std::uint8_t tag, Tlv& out) {
  std::size_t save = pos_;
  if (Status s = read_any(out); !s) return s;
  if (out.tag != tag) {
    pos_ = save;
    return err("DER: unexpected tag " + std::to_string(out.tag) + ", wanted " +
               std::to_string(tag));
  }
  return {};
}

bool Reader::read_optional(std::uint8_t tag, Tlv& out) {
  if (peek_tag() != tag) return false;
  return read(tag, out).ok();
}

Status Reader::read_boolean(bool& out) {
  Tlv tlv;
  if (Status s = read(static_cast<std::uint8_t>(Tag::kBoolean), tlv); !s) return s;
  if (tlv.contents.size() != 1) return err("DER: bad boolean length");
  if (tlv.contents[0] != 0x00 && tlv.contents[0] != 0xff) {
    return err("DER: non-canonical boolean");
  }
  out = tlv.contents[0] == 0xff;
  return {};
}

Status Reader::read_integer(std::int64_t& out) {
  Bytes magnitude;
  Tlv tlv;
  if (Status s = read(static_cast<std::uint8_t>(Tag::kInteger), tlv); !s) return s;
  if (tlv.contents.empty()) return err("DER: empty integer");
  if (tlv.contents.size() > 8) return err("DER: integer too wide for int64");
  std::int64_t value = (tlv.contents[0] & 0x80) ? -1 : 0;
  for (std::uint8_t b : tlv.contents) value = value << 8 | b;
  out = value;
  return {};
}

Status Reader::read_integer_bytes(Bytes& magnitude) {
  Tlv tlv;
  if (Status s = read(static_cast<std::uint8_t>(Tag::kInteger), tlv); !s) return s;
  if (tlv.contents.empty()) return err("DER: empty integer");
  BytesView v = tlv.contents;
  if (v.size() > 1 && v[0] == 0) v = v.subspan(1);  // sign pad
  magnitude.assign(v.begin(), v.end());
  return {};
}

Status Reader::read_bit_string(Bytes& out) {
  Tlv tlv;
  if (Status s = read(static_cast<std::uint8_t>(Tag::kBitString), tlv); !s) return s;
  if (tlv.contents.empty()) return err("DER: empty bit string");
  if (tlv.contents[0] != 0) return err("DER: unsupported unused bits");
  out.assign(tlv.contents.begin() + 1, tlv.contents.end());
  return {};
}

Status Reader::read_octet_string(Bytes& out) {
  Tlv tlv;
  if (Status s = read(static_cast<std::uint8_t>(Tag::kOctetString), tlv); !s) return s;
  out.assign(tlv.contents.begin(), tlv.contents.end());
  return {};
}

Status Reader::read_null() {
  Tlv tlv;
  if (Status s = read(static_cast<std::uint8_t>(Tag::kNull), tlv); !s) return s;
  if (!tlv.contents.empty()) return err("DER: non-empty NULL");
  return {};
}

Status Reader::read_oid(Oid& out) {
  Tlv tlv;
  if (Status s = read(static_cast<std::uint8_t>(Tag::kOid), tlv); !s) return s;
  out = Oid::from_der_contents(tlv.contents);
  if (!out.valid()) return err("DER: malformed OID");
  return {};
}

Status Reader::read_string(std::string& out) {
  std::uint8_t t = peek_tag();
  if (t != static_cast<std::uint8_t>(Tag::kUtf8String) &&
      t != static_cast<std::uint8_t>(Tag::kPrintableString) &&
      t != static_cast<std::uint8_t>(Tag::kIa5String)) {
    return err("DER: expected string tag, got " + std::to_string(t));
  }
  Tlv tlv;
  if (Status s = read(t, tlv); !s) return s;
  out = to_string(tlv.contents);
  return {};
}

Status Reader::read_time(std::int64_t& unix_seconds) {
  std::uint8_t t = peek_tag();
  bool utc = t == static_cast<std::uint8_t>(Tag::kUtcTime);
  bool gen = t == static_cast<std::uint8_t>(Tag::kGeneralizedTime);
  if (!utc && !gen) return err("DER: expected time tag");
  Tlv tlv;
  if (Status s = read(t, tlv); !s) return s;
  std::string text = to_string(tlv.contents);
  std::size_t digits = utc ? 12 : 14;
  if (text.size() != digits + 1 || text.back() != 'Z') {
    return err("DER: malformed time " + text);
  }
  for (std::size_t i = 0; i < digits; ++i) {
    if (text[i] < '0' || text[i] > '9') return err("DER: malformed time " + text);
  }
  auto num = [&](std::size_t pos, std::size_t len) {
    int v = 0;
    for (std::size_t i = pos; i < pos + len; ++i) v = v * 10 + (text[i] - '0');
    return v;
  };
  CivilTime c;
  std::size_t off;
  if (utc) {
    int yy = num(0, 2);
    c.year = yy >= 50 ? 1900 + yy : 2000 + yy;
    off = 2;
  } else {
    c.year = num(0, 4);
    off = 4;
  }
  c.month = num(off, 2);
  c.day = num(off + 2, 2);
  c.hour = num(off + 4, 2);
  c.minute = num(off + 6, 2);
  c.second = num(off + 8, 2);
  if (c.month < 1 || c.month > 12 || c.day < 1 || c.day > 31 || c.hour > 23 ||
      c.minute > 59 || c.second > 60) {
    return err("DER: out-of-range time " + text);
  }
  unix_seconds = to_unix(c);
  return {};
}

Status Reader::read_sequence(Reader& inner) {
  Tlv tlv;
  if (Status s = read(static_cast<std::uint8_t>(Tag::kSequence), tlv); !s) return s;
  inner = Reader(tlv.contents);
  return {};
}

Status Reader::read_set(Reader& inner) {
  Tlv tlv;
  if (Status s = read(static_cast<std::uint8_t>(Tag::kSet), tlv); !s) return s;
  inner = Reader(tlv.contents);
  return {};
}

Status Reader::read_context(unsigned n, Reader& inner) {
  Tlv tlv;
  if (Status s = read(context_tag(n), tlv); !s) return s;
  inner = Reader(tlv.contents);
  return {};
}

}  // namespace anchor::asn1
