#include "core/facts.hpp"

#include "datalog/compiled.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace anchor::core {

using datalog::Tuple;
using datalog::Value;

void FactSet::load_into(datalog::Engine& engine) const {
  for (const Fact& fact : facts) {
    engine.add_fact(fact.predicate, fact.args);
  }
}

std::size_t FactSet::load_into(const datalog::CompiledProgram& program,
                               datalog::Session& session) const {
  std::size_t loaded = 0;
  for (const Fact& fact : facts) {
    const int rel = program.relation_index(fact.predicate, fact.args.size());
    if (rel < 0) continue;
    session.add_fact(rel, fact.args);
    ++loaded;
  }
  return loaded;
}

void encode_certificate(const x509::Certificate& cert, FactSet& out) {
  const std::string id = cert.fingerprint_hex();
  Value cid(id);

  out.add("hash", {cid, Value(id)});
  out.add("serial", {cid, Value(to_hex(BytesView(cert.serial())))});
  out.add("notBefore", {cid, Value(cert.not_before())});
  out.add("notAfter", {cid, Value(cert.not_after())});
  out.add("lifetime", {cid, Value(cert.lifetime_seconds())});

  std::string subject_cn = cert.subject().common_name();
  if (!subject_cn.empty()) out.add("subjectCN", {cid, Value(subject_cn)});
  std::string issuer_cn = cert.issuer().common_name();
  if (!issuer_cn.empty()) out.add("issuerCN", {cid, Value(issuer_cn)});
  std::string subject_org = cert.subject().organization();
  if (!subject_org.empty()) out.add("subjectOrg", {cid, Value(subject_org)});

  if (cert.subject_alt_name()) {
    for (const auto& name : cert.subject_alt_name()->dns_names) {
      out.add("san", {cid, Value(name)});
      out.add("sanTLD", {cid, Value(tld_of(name))});
      // nameSuffix(C, Name, Suffix) for every dot-suffix of the name
      // (including the name itself, minus any leading "*." label), so GCCs
      // can express RFC 5280-style name constraints declaratively.
      std::string_view rest = name;
      if (starts_with(rest, "*.")) rest = rest.substr(2);
      out.add("nameSuffix", {cid, Value(name), Value(std::string(rest))});
      while (true) {
        std::size_t dot = rest.find('.');
        if (dot == std::string_view::npos) break;
        rest = rest.substr(dot + 1);
        out.add("nameSuffix", {cid, Value(name), Value(std::string(rest))});
      }
    }
  }
  if (cert.key_usage()) {
    for (const auto& usage : cert.key_usage()->names()) {
      out.add("keyUsage", {cid, Value(usage)});
    }
  }
  if (cert.extended_key_usage()) {
    for (const auto& usage : cert.extended_key_usage()->names()) {
      out.add("extendedKeyUsage", {cid, Value(usage)});
    }
  }
  if (cert.is_ca()) {
    out.add("isCA", {cid});
    if (cert.path_len()) {
      out.add("pathLen", {cid, Value(std::int64_t{*cert.path_len()})});
    }
  }
  if (cert.is_self_issued()) out.add("selfSigned", {cid});
  if (cert.is_ev()) {
    out.add("ev", {cid});
    out.add("EV", {cid});  // paper Listing 1 notation
  }
  if (cert.certificate_policies()) {
    for (const auto& policy : cert.certificate_policies()->policies) {
      out.add("policy", {cid, Value(policy.to_string())});
    }
  }
  if (cert.name_constraints()) {
    for (const auto& name : cert.name_constraints()->permitted_dns) {
      out.add("permittedDNS", {cid, Value(name)});
    }
    for (const auto& name : cert.name_constraints()->excluded_dns) {
      out.add("excludedDNS", {cid, Value(name)});
    }
  }
}

void encode_chain(const Chain& chain, const std::string& chain_id,
                  FactSet& out) {
  if (chain.empty()) return;
  Value chain_value(chain_id);

  for (const auto& cert : chain) encode_certificate(*cert, out);

  out.add("leaf", {chain_value, Value(chain.front()->fingerprint_hex())});
  out.add("root", {chain_value, Value(chain.back()->fingerprint_hex())});
  out.add("chainLength",
          {chain_value, Value(static_cast<std::int64_t>(chain.size()))});
  for (std::size_t i = 0; i < chain.size(); ++i) {
    out.add("certAt", {chain_value, Value(static_cast<std::int64_t>(i)),
                       Value(chain[i]->fingerprint_hex())});
  }
  // signs(Issuer, Subject): chain[i+1] signed chain[i].
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    out.add("signs", {Value(chain[i + 1]->fingerprint_hex()),
                      Value(chain[i]->fingerprint_hex())});
  }
}

std::string chain_id_of(const Chain& chain) {
  if (chain.empty()) return "chain-empty";
  return "chain-" + chain.front()->fingerprint_hex();
}

}  // namespace anchor::core
