// GCC execution (§3 of the paper): "a constructed chain is valid if and
// only if all GCCs attached to the candidate root are valid. ... the
// validator performs the following Datalog query: valid(Chain, Usage)?"
//
// Each GCC is evaluated in an isolated engine instance — constraints from
// different operators must not observe each other's derived facts.
#pragma once

#include <span>
#include <string>

#include "core/facts.hpp"
#include "core/gcc.hpp"
#include "datalog/eval.hpp"

namespace anchor::core {

// The two usages NSS attaches date-usage constraints for.
inline constexpr const char* kUsageTls = "TLS";
inline constexpr const char* kUsageSmime = "S/MIME";

struct GccVerdict {
  bool allowed = true;
  std::string failed_gcc;  // name of the first failing constraint
  datalog::EvalStats stats;  // aggregated over all evaluated GCCs
  std::size_t gccs_evaluated = 0;
  std::size_t facts_encoded = 0;
};

class GccExecutor {
 public:
  explicit GccExecutor(
      datalog::Strategy strategy = datalog::Strategy::kSemiNaive)
      : strategy_(strategy) {}

  // Evaluates every GCC against the chain for the given usage. Evaluation
  // order follows attachment order; the verdict reports the first failure.
  // An empty GCC list trivially allows.
  GccVerdict evaluate(const Chain& chain, std::string_view usage,
                      std::span<const Gcc> gccs) const;

  // Single-constraint form.
  bool evaluate_one(const Chain& chain, std::string_view usage,
                    const Gcc& gcc, GccVerdict* verdict = nullptr) const;

 private:
  datalog::Strategy strategy_;
};

}  // namespace anchor::core
