// GCC execution (§3 of the paper): "a constructed chain is valid if and
// only if all GCCs attached to the candidate root are valid. ... the
// validator performs the following Datalog query: valid(Chain, Usage)?"
//
// Each GCC is evaluated against its own precompiled program and a freshly
// prepared session — constraints from different operators must not observe
// each other's derived facts. The compiled form (symbol interning + slot
// resolution, built once at Gcc::create) replaces the old per-evaluation
// Engine, which re-ran stratification, safety and body ordering on every
// (chain, usage, GCC) triple.
#pragma once

#include <span>
#include <string>

#include "core/facts.hpp"
#include "core/gcc.hpp"
#include "datalog/eval.hpp"
#include "util/metrics.hpp"

namespace anchor::core {

// The two usages NSS attaches date-usage constraints for.
inline constexpr const char* kUsageTls = "TLS";
inline constexpr const char* kUsageSmime = "S/MIME";

struct GccVerdict {
  bool allowed = true;
  std::string failed_gcc;  // name of the first failing constraint
  datalog::EvalStats stats;  // aggregated over all evaluated GCCs
  std::size_t gccs_evaluated = 0;
  std::size_t facts_encoded = 0;
};

class GccExecutor {
 public:
  // Series are resolved once at construction (same name+labels always
  // resolve to the same cells, so any number of executors share them);
  // evaluation paths touch only the cached references.
  explicit GccExecutor(
      datalog::Strategy strategy = datalog::Strategy::kSemiNaive,
      metrics::Registry& registry = metrics::Registry::global())
      : strategy_(strategy),
        m_evaluations_(registry.counter("anchor_gcc_evaluations_total")),
        m_gccs_evaluated_(registry.counter("anchor_gcc_gccs_evaluated_total")),
        m_denials_(registry.counter("anchor_gcc_denials_total")),
        m_eval_seconds_(registry.histogram("anchor_gcc_eval_seconds")),
        m_type_errors_(registry.counter("anchor_datalog_type_errors_total")),
        m_truncations_(registry.counter("anchor_datalog_truncations_total")),
        m_errored_(registry.counter("anchor_datalog_errored_total")),
        m_derived_tuples_(
            registry.counter("anchor_datalog_derived_tuples_total")) {}

  // Evaluates every GCC against the chain for the given usage. Evaluation
  // order follows attachment order; the verdict reports the first failure.
  // An empty GCC list trivially allows. `context` optionally supplies
  // chain-external facts (SCT timestamps, client version, validation
  // instant — see rootstore/constraint_compile.hpp); its facts load after
  // the chain encoding into every GCC's session.
  GccVerdict evaluate(const Chain& chain, std::string_view usage,
                      std::span<const Gcc> gccs,
                      const FactSet* context = nullptr) const;

  // Single-constraint form.
  bool evaluate_one(const Chain& chain, std::string_view usage,
                    const Gcc& gcc, GccVerdict* verdict = nullptr,
                    const FactSet* context = nullptr) const;

 private:
  // Runs one precompiled GCC over an already-encoded chain (the chain is
  // encoded once per evaluate() call and shared across GCCs).
  bool run_compiled(const FactSet& facts, const FactSet* context,
                    const std::string& chain_id, std::string_view usage,
                    const Gcc& gcc, GccVerdict* verdict) const;

  datalog::Strategy strategy_;

  metrics::Counter& m_evaluations_;
  metrics::Counter& m_gccs_evaluated_;
  metrics::Counter& m_denials_;
  metrics::Histogram& m_eval_seconds_;
  metrics::Counter& m_type_errors_;
  metrics::Counter& m_truncations_;
  metrics::Counter& m_errored_;
  metrics::Counter& m_derived_tuples_;
};

}  // namespace anchor::core
