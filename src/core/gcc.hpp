// General Certificate Constraints (§3 of the paper): "a simple program
// attached to a specific root certificate (by SHA-256 hash) that returns a
// Boolean true or false. If the GCC returns false, the certificate chain in
// question must be rejected."
//
// A Gcc owns the Datalog source and its parsed, validated form. Validation
// happens at construction: the program must lex, parse, stratify, pass the
// safety check, and define the required `valid` rule — a malformed GCC is
// rejected when a root store ingests it, never at chain-validation time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.hpp"
#include "datalog/compiled.hpp"
#include "util/result.hpp"
#include "x509/certificate.hpp"

namespace anchor::core {

class Gcc {
 public:
  // `root_hash_hex` is the SHA-256 (lowercase hex) of the root certificate
  // this constraint binds to. `justification` is free-form provenance (bug
  // link, incident writeup) carried through RSF snapshots.
  static Result<Gcc> create(std::string name, std::string root_hash_hex,
                            std::string source, std::string justification = "");

  // Convenience: bind to a parsed certificate.
  static Result<Gcc> for_certificate(std::string name,
                                     const x509::Certificate& root,
                                     std::string source,
                                     std::string justification = "");

  // Restores a Gcc from an already-compiled program (mmap snapshot load:
  // rootstore/snapshot/view.cpp) — no parse, no recompile. The source text
  // rides along for provenance and re-serialization but is NOT re-validated
  // here; the snapshot reader is responsible for having obtained `compiled`
  // from a trusted serialization of a program that passed create(). The
  // parsed AST (`program()`) is left empty — nothing on the verdict path
  // reads it (GccExecutor evaluates compiled() only).
  static Result<Gcc> from_compiled(
      std::string name, std::string root_hash_hex, std::string source,
      std::string justification,
      std::shared_ptr<const datalog::CompiledProgram> compiled);

  const std::string& name() const { return name_; }
  const std::string& root_hash_hex() const { return root_hash_hex_; }
  const std::string& source() const { return source_; }
  const std::string& justification() const { return justification_; }
  const datalog::Program& program() const { return program_; }

  // The executable form, compiled once at create() (symbol interning, slot
  // resolution, stratified rule ordering). Shared so copying a Gcc — GccStore
  // hands out value copies, VerifyService snapshots them — never recompiles.
  const std::shared_ptr<const datalog::CompiledProgram>& compiled() const {
    return compiled_;
  }

  bool operator==(const Gcc& other) const {
    return name_ == other.name_ && root_hash_hex_ == other.root_hash_hex_ &&
           source_ == other.source_;
  }

 private:
  Gcc() = default;

  std::string name_;
  std::string root_hash_hex_;
  std::string source_;
  std::string justification_;
  datalog::Program program_;
  std::shared_ptr<const datalog::CompiledProgram> compiled_;
};

// Per-root constraint registry: the executable half of a root store. GCCs
// accumulate (a root may carry several; all must hold).
class GccStore {
 public:
  // Attaches (re-attaching under the same name replaces). Returns true if
  // anything observable changed; attaching a byte-identical copy of an
  // already-attached GCC is a no-op that leaves version() unchanged, so
  // redundant feed replay does not invalidate verdict caches keyed on
  // RootStore::epoch().
  bool attach(Gcc gcc);
  // Removes the named GCC from the given root; returns true if it existed.
  bool detach(const std::string& root_hash_hex, const std::string& name);

  // All constraints bound to a root (empty if unconstrained).
  const std::vector<Gcc>& for_root(const std::string& root_hash_hex) const;

  std::size_t total() const;
  std::size_t constrained_roots() const { return by_root_.size(); }

  // Root hashes with at least one GCC, sorted — for deterministic
  // serialization.
  std::vector<std::string> roots_sorted() const;

  // Monotonic mutation counter (effective attach and successful detach).
  // RootStore::attach_gcc/detach_gcc consult the attach/detach return
  // values — not this counter — to bump the store epoch; version() remains
  // for callers tracking a GccStore in isolation.
  std::uint64_t version() const { return version_; }

 private:
  std::unordered_map<std::string, std::vector<Gcc>> by_root_;
  std::uint64_t version_ = 0;
};

}  // namespace anchor::core
