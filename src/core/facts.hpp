// Conversion of X.509 certificate chains into Datalog facts (§3 of the
// paper: "the chain in question is first converted into a form the GCC
// program can read ... converting each X.509 certificate field into a
// Datalog statement. Further, relationships between certificates (i.e.,
// that a particular certificate signs another) must also be codified.")
//
// Fact vocabulary (C = certificate id, the SHA-256 hex of its DER):
//   leaf(Chain, C)              the chain's end-entity certificate
//   root(Chain, C)              the chain's trust anchor
//   certAt(Chain, I, C)         position I (0 = leaf) in the chain
//   chainLength(Chain, N)
//   signs(Issuer, Subject)      adjacency: Issuer directly signed Subject
//   hash(C, H)                  H = SHA-256 hex (identical to the cert id)
//   serial(C, S)                S = serial number hex
//   notBefore(C, T), notAfter(C, T)   Unix timestamps
//   lifetime(C, Seconds)
//   subjectCN(C, Name), issuerCN(C, Name)
//   subjectOrg(C, Name)
//   san(C, DnsName)             one fact per dNSName
//   sanTLD(C, Tld)              rightmost label of each dNSName
//   nameSuffix(C, Name, Sfx)    every dot-suffix of each dNSName
//   keyUsage(C, U)              U in {"digitalSignature", ...}
//   extendedKeyUsage(C, U)      U in {"id-kp-serverAuth", ...}
//   isCA(C), pathLen(C, N)
//   selfSigned(C)               subject == issuer
//   ev(C)                       carries the EV policy marker
//   EV(C)                       alias so the paper's Listing 1 runs verbatim
//   policy(C, Oid)
//   permittedDNS(C, Name), excludedDNS(C, Name)   name constraints
//
// The encoder is deliberately eager and unoptimized by default: experiment
// E4 reproduces the paper's "~2.4 ms mean (unoptimized) conversion" claim,
// and the lazy per-predicate mode is the ablation.
#pragma once

#include <string>
#include <vector>

#include "datalog/engine.hpp"
#include "datalog/value.hpp"
#include "x509/certificate.hpp"

namespace anchor::datalog {
class CompiledProgram;
class Session;
}  // namespace anchor::datalog

namespace anchor::core {

struct Fact {
  std::string predicate;
  datalog::Tuple args;
};

struct FactSet {
  std::vector<Fact> facts;

  void add(std::string predicate, datalog::Tuple args) {
    facts.push_back(Fact{std::move(predicate), std::move(args)});
  }
  std::size_t size() const { return facts.size(); }
  void load_into(datalog::Engine& engine) const;

  // Interning encoder for the compiled pipeline: facts go straight into the
  // session's relations as tagged-id tuples. Facts whose predicate/arity the
  // program never references are skipped (they cannot affect the model).
  // Returns the number of facts actually loaded.
  std::size_t load_into(const datalog::CompiledProgram& program,
                        datalog::Session& session) const;
};

// A chain is ordered leaf-first: chain[0] is the end-entity certificate,
// chain.back() the root.
using Chain = std::vector<x509::CertPtr>;

// Facts describing a single certificate (no chain context).
void encode_certificate(const x509::Certificate& cert, FactSet& out);

// Facts for the whole chain, including structure (leaf/root/signs/certAt).
// `chain_id` names the chain in leaf(Chain, ...) etc.; the executor uses the
// leaf fingerprint by default.
void encode_chain(const Chain& chain, const std::string& chain_id, FactSet& out);

// Canonical chain id: "chain-" + leaf SHA-256 hex.
std::string chain_id_of(const Chain& chain);

}  // namespace anchor::core
