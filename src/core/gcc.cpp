#include "core/gcc.hpp"
#include <algorithm>

#include "datalog/compiled.hpp"
#include "datalog/parser.hpp"

namespace anchor::core {

namespace {

// The usage domain of the Web PKI root stores the paper discusses: NSS
// attaches date-usage pairs for exactly TLS and S/MIME.
const std::vector<std::string>& usage_domain() {
  static const std::vector<std::string> kUsages = {"TLS", "S/MIME"};
  return kUsages;
}

// Listing 2 writes `valid(Chain, _) :- ...` — valid for *any* usage. A
// head variable that never occurs in the body is unsafe under range
// restriction, so such clauses are expanded over the (closed) usage domain
// before validation. This preserves the paper's notation while keeping the
// engine strictly safe.
datalog::Program expand_head_wildcards(const datalog::Program& program) {
  using namespace datalog;
  Program out;
  for (const Clause& clause : program.clauses) {
    if (clause.is_fact()) {
      out.clauses.push_back(clause);
      continue;
    }
    // Collect body variables.
    std::vector<std::string> body_vars;
    auto note = [&](const Term& t) {
      if (t.is_var()) body_vars.push_back(t.name);
    };
    for (const Literal& lit : clause.body) {
      if (lit.kind == Literal::Kind::kComparison) {
        note(lit.left.lhs);
        if (lit.left.op != ArithOp::kNone) note(lit.left.rhs);
        note(lit.right.lhs);
        if (lit.right.op != ArithOp::kNone) note(lit.right.rhs);
      } else {
        for (const Term& arg : lit.atom.args) note(arg);
      }
    }
    auto in_body = [&](const std::string& name) {
      for (const auto& v : body_vars) {
        if (v == name) return true;
      }
      return false;
    };

    // Find head argument positions holding body-free variables.
    std::vector<std::size_t> free_positions;
    for (std::size_t i = 0; i < clause.head.args.size(); ++i) {
      const Term& arg = clause.head.args[i];
      if (arg.is_var() && !in_body(arg.name)) free_positions.push_back(i);
    }
    if (free_positions.empty()) {
      out.clauses.push_back(clause);
      continue;
    }
    // Expand: one clone per usage value, all free positions set to it.
    for (const std::string& usage : usage_domain()) {
      Clause clone = clause;
      for (std::size_t pos : free_positions) {
        clone.head.args[pos] = Term::constant_of(Value(usage));
      }
      out.clauses.push_back(std::move(clone));
    }
  }
  return out;
}

}  // namespace

Result<Gcc> Gcc::create(std::string name, std::string root_hash_hex,
                        std::string source, std::string justification) {
  if (name.empty()) return err("gcc: name required");
  if (root_hash_hex.size() != 64) {
    return err("gcc '" + name + "': root hash must be SHA-256 hex (64 chars)");
  }
  auto parsed = datalog::parse_program(source);
  if (!parsed) return err("gcc '" + name + "': " + parsed.error());

  datalog::Program program = expand_head_wildcards(parsed.value());

  // Full validation — stratification, safety, body ordering — doubles as
  // compilation: the interned, slot-resolved form is built once here and
  // reused verbatim for every chain evaluated against this GCC.
  auto compiled = datalog::CompiledProgram::compile(program);
  if (!compiled) return err("gcc '" + name + "': " + compiled.error());

  // The executor queries valid/2; a GCC that never defines it would reject
  // every chain, which is never what an operator intends to ship.
  bool defines_valid = false;
  for (const auto& clause : program.clauses) {
    if (clause.head.predicate == "valid" && clause.head.arity() == 2) {
      defines_valid = true;
      break;
    }
  }
  if (!defines_valid) {
    return err("gcc '" + name + "': program does not define valid/2");
  }

  Gcc gcc;
  gcc.name_ = std::move(name);
  gcc.root_hash_hex_ = std::move(root_hash_hex);
  gcc.source_ = std::move(source);
  gcc.justification_ = std::move(justification);
  gcc.program_ = std::move(program);
  gcc.compiled_ = std::make_shared<const datalog::CompiledProgram>(
      std::move(compiled).take());
  return gcc;
}

Result<Gcc> Gcc::for_certificate(std::string name,
                                 const x509::Certificate& root,
                                 std::string source,
                                 std::string justification) {
  return create(std::move(name), root.fingerprint_hex(), std::move(source),
                std::move(justification));
}

Result<Gcc> Gcc::from_compiled(
    std::string name, std::string root_hash_hex, std::string source,
    std::string justification,
    std::shared_ptr<const datalog::CompiledProgram> compiled) {
  if (name.empty()) return err("gcc: name required");
  if (root_hash_hex.size() != 64) {
    return err("gcc '" + name + "': root hash must be SHA-256 hex (64 chars)");
  }
  if (compiled == nullptr) {
    return err("gcc '" + name + "': compiled program required");
  }
  Gcc gcc;
  gcc.name_ = std::move(name);
  gcc.root_hash_hex_ = std::move(root_hash_hex);
  gcc.source_ = std::move(source);
  gcc.justification_ = std::move(justification);
  gcc.compiled_ = std::move(compiled);
  return gcc;
}

bool GccStore::attach(Gcc gcc) {
  auto& list = by_root_[gcc.root_hash_hex()];
  // Re-attaching under the same name replaces (feed updates overwrite).
  for (auto& existing : list) {
    if (existing.name() == gcc.name()) {
      // Byte-identical re-attach (same source *and* justification — the
      // serialized form) changes nothing observable: no version bump.
      if (existing.source() == gcc.source() &&
          existing.justification() == gcc.justification()) {
        return false;
      }
      existing = std::move(gcc);
      ++version_;
      return true;
    }
  }
  list.push_back(std::move(gcc));
  ++version_;
  return true;
}

bool GccStore::detach(const std::string& root_hash_hex,
                      const std::string& name) {
  auto it = by_root_.find(root_hash_hex);
  if (it == by_root_.end()) return false;
  auto& list = it->second;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].name() == name) {
      list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
      if (list.empty()) by_root_.erase(it);
      ++version_;
      return true;
    }
  }
  return false;
}

const std::vector<Gcc>& GccStore::for_root(
    const std::string& root_hash_hex) const {
  static const std::vector<Gcc> kEmpty;
  auto it = by_root_.find(root_hash_hex);
  return it == by_root_.end() ? kEmpty : it->second;
}

std::vector<std::string> GccStore::roots_sorted() const {
  std::vector<std::string> roots;
  roots.reserve(by_root_.size());
  for (const auto& [hash, list] : by_root_) roots.push_back(hash);
  std::sort(roots.begin(), roots.end());
  return roots;
}

std::size_t GccStore::total() const {
  std::size_t n = 0;
  for (const auto& [hash, list] : by_root_) n += list.size();
  return n;
}

}  // namespace anchor::core
