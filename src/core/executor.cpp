#include "core/executor.hpp"

#include "datalog/compiled.hpp"

namespace anchor::core {

namespace {

// One execution arena per thread, reused across chains and GCCs: prepare()
// resets content but keeps heap capacity, so steady-state evaluation does
// not allocate. Safe because CompiledProgram is immutable and each
// evaluation's mutable state lives entirely in the session.
datalog::Session& tls_session() {
  thread_local datalog::Session session;
  return session;
}

}  // namespace

bool GccExecutor::run_compiled(const FactSet& facts, const FactSet* context,
                               const std::string& chain_id,
                               std::string_view usage, const Gcc& gcc,
                               GccVerdict* verdict) const {
  const auto& program = gcc.compiled();
  if (program == nullptr) return false;  // unvalidated Gcc: fail closed

  datalog::Session& session = tls_session();
  session.prepare(*program);
  facts.load_into(*program, session);
  if (context != nullptr) context->load_into(*program, session);
  if (verdict != nullptr) {
    verdict->facts_encoded +=
        facts.size() + (context != nullptr ? context->size() : 0);
  }

  const datalog::EvalStats stats = program->run(session, strategy_);

  const datalog::Value goal_args[2] = {
      datalog::Value(chain_id), datalog::Value(std::string(usage))};
  const bool holds = program->query_holds(session, "valid", goal_args);

  if (verdict != nullptr) {
    ++verdict->gccs_evaluated;
    verdict->stats.accumulate(stats);
  }
  m_gccs_evaluated_.add();
  m_derived_tuples_.add(stats.derived_tuples);
  if (stats.type_errors > 0) m_type_errors_.add(stats.type_errors);
  if (stats.truncated) m_truncations_.add();
  if (stats.errored) m_errored_.add();
  // A truncated evaluation (the EvalLimits guard fired on a runaway
  // arithmetic recursion) or an errored one (incomplete model) fails
  // closed: an incomplete model must never admit a chain.
  return !stats.truncated && !stats.errored && holds;
}

bool GccExecutor::evaluate_one(const Chain& chain, std::string_view usage,
                               const Gcc& gcc, GccVerdict* verdict,
                               const FactSet* context) const {
  metrics::ScopedTimer span(m_eval_seconds_);
  m_evaluations_.add();
  FactSet facts;
  const std::string chain_id = chain_id_of(chain);
  encode_chain(chain, chain_id, facts);
  const bool allowed =
      run_compiled(facts, context, chain_id, usage, gcc, verdict);
  if (!allowed) m_denials_.add();
  return allowed;
}

GccVerdict GccExecutor::evaluate(const Chain& chain, std::string_view usage,
                                 std::span<const Gcc> gccs,
                                 const FactSet* context) const {
  GccVerdict verdict;
  if (gccs.empty()) return verdict;

  metrics::ScopedTimer span(m_eval_seconds_);
  m_evaluations_.add();

  // The chain is encoded once; each GCC interns the same FactSet into its
  // own session (per-program symbol tables keep GCCs isolated from each
  // other, as the paper requires).
  FactSet facts;
  const std::string chain_id = chain_id_of(chain);
  encode_chain(chain, chain_id, facts);

  for (const Gcc& gcc : gccs) {
    if (!run_compiled(facts, context, chain_id, usage, gcc, &verdict)) {
      verdict.allowed = false;
      verdict.failed_gcc = gcc.name();
      m_denials_.add();
      return verdict;
    }
  }
  return verdict;
}

}  // namespace anchor::core
