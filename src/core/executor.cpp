#include "core/executor.hpp"

namespace anchor::core {

bool GccExecutor::evaluate_one(const Chain& chain, std::string_view usage,
                               const Gcc& gcc, GccVerdict* verdict) const {
  datalog::Engine engine(strategy_);
  engine.add_program(gcc.program());

  FactSet facts;
  const std::string chain_id = chain_id_of(chain);
  encode_chain(chain, chain_id, facts);
  facts.load_into(engine);
  if (verdict != nullptr) verdict->facts_encoded += facts.size();

  datalog::Atom goal;
  goal.predicate = "valid";
  goal.args.push_back(datalog::Term::constant_of(datalog::Value(chain_id)));
  goal.args.push_back(
      datalog::Term::constant_of(datalog::Value(std::string(usage))));

  auto result = engine.query(goal);
  if (verdict != nullptr) {
    ++verdict->gccs_evaluated;
    verdict->stats.iterations += engine.stats().iterations;
    verdict->stats.rule_applications += engine.stats().rule_applications;
    verdict->stats.derived_tuples += engine.stats().derived_tuples;
  }
  // Gcc::create validated the program, so a query error here means an
  // engine bug; fail closed regardless. A truncated evaluation (the
  // EvalLimits guard fired on a runaway arithmetic recursion) also fails
  // closed: an incomplete model must never admit a chain.
  return result.ok() && !engine.stats().truncated && result.value().holds();
}

GccVerdict GccExecutor::evaluate(const Chain& chain, std::string_view usage,
                                 std::span<const Gcc> gccs) const {
  GccVerdict verdict;
  for (const Gcc& gcc : gccs) {
    if (!evaluate_one(chain, usage, gcc, &verdict)) {
      verdict.allowed = false;
      verdict.failed_gcc = gcc.name();
      return verdict;
    }
  }
  return verdict;
}

}  // namespace anchor::core
