#include "revocation/revocation.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace anchor::revocation {

namespace {
std::string issuer_serial_key(BytesView spki, BytesView serial) {
  return to_hex(spki) + "|" + to_hex(serial);
}
}  // namespace

// --- CrlSet -----------------------------------------------------------------

void CrlSet::block_by_issuer_serial(BytesView issuer_spki, BytesView serial) {
  by_issuer_serial_.insert(issuer_serial_key(issuer_spki, serial));
}

void CrlSet::block_by_issuer_serial(const x509::Certificate& issuer,
                                    const x509::Certificate& subject) {
  block_by_issuer_serial(BytesView(issuer.public_key()),
                         BytesView(subject.serial()));
}

void CrlSet::block_spki(BytesView spki) {
  blocked_spkis_.insert(to_hex(spki));
}

void CrlSet::block_spki(const x509::Certificate& cert) {
  block_spki(BytesView(cert.public_key()));
}

bool CrlSet::is_revoked(const x509::Certificate& cert,
                        BytesView issuer_spki) const {
  if (blocked_spkis_.contains(to_hex(BytesView(cert.public_key())))) {
    return true;
  }
  return by_issuer_serial_.contains(
      issuer_serial_key(issuer_spki, BytesView(cert.serial())));
}

std::string CrlSet::serialize() const {
  // Sorted output for determinism.
  std::vector<std::string> lines;
  lines.reserve(by_issuer_serial_.size() + blocked_spkis_.size());
  for (const auto& entry : by_issuer_serial_) lines.push_back("is " + entry);
  for (const auto& spki : blocked_spkis_) lines.push_back("spki " + spki);
  std::sort(lines.begin(), lines.end());
  std::string out = "anchor-crlset/v1\n";
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

Result<CrlSet> CrlSet::deserialize(std::string_view text) {
  std::vector<std::string> lines = split(text, '\n');
  if (lines.empty() || lines[0] != "anchor-crlset/v1") {
    return err("crlset: missing header");
  }
  CrlSet set;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line = std::string(trim(lines[i]));
    if (line.empty()) continue;
    if (starts_with(line, "is ")) {
      std::string entry = line.substr(3);
      if (entry.find('|') == std::string::npos) {
        return err("crlset: malformed issuer-serial entry");
      }
      set.by_issuer_serial_.insert(std::move(entry));
    } else if (starts_with(line, "spki ")) {
      set.blocked_spkis_.insert(line.substr(5));
    } else {
      return err("crlset: unknown line '" + line + "'");
    }
  }
  return set;
}

// --- OneCrl -----------------------------------------------------------------

void OneCrl::block(const x509::DistinguishedName& issuer, BytesView serial) {
  entries_.insert(issuer.to_string() + "|" + to_hex(serial));
}

void OneCrl::block(const x509::Certificate& cert) {
  block(cert.issuer(), BytesView(cert.serial()));
}

bool OneCrl::is_revoked(const x509::Certificate& cert) const {
  return entries_.contains(cert.issuer().to_string() + "|" +
                           to_hex(BytesView(cert.serial())));
}

std::string OneCrl::serialize() const {
  std::vector<std::string> lines(entries_.begin(), entries_.end());
  std::sort(lines.begin(), lines.end());
  std::string out = "anchor-onecrl/v1\n";
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

Result<OneCrl> OneCrl::deserialize(std::string_view text) {
  std::vector<std::string> lines = split(text, '\n');
  if (lines.empty() || lines[0] != "anchor-onecrl/v1") {
    return err("onecrl: missing header");
  }
  OneCrl crl;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line = std::string(trim(lines[i]));
    if (line.empty()) continue;
    if (line.find('|') == std::string::npos) {
      return err("onecrl: malformed entry '" + line + "'");
    }
    crl.entries_.insert(std::move(line));
  }
  return crl;
}

// --- GCC subsumption ----------------------------------------------------------

Result<core::Gcc> revocation_gcc(const std::string& name,
                                 const x509::Certificate& root,
                                 const std::vector<std::string>& revoked_hashes,
                                 const std::string& justification) {
  std::ostringstream source;
  source << "% Revocation expressed as a GCC (subsumption construction).\n";
  for (const auto& hash : revoked_hashes) {
    source << "revoked(\"" << hash << "\").\n";
  }
  if (revoked_hashes.empty()) {
    // Datalog needs the predicate to exist for the negation to be well
    // formed; an impossible fact keeps the program total.
    source << "revoked(\"-\").\n";
  }
  source << "inChain(Chain, C) :- certAt(Chain, _, C).\n"
            "bad(Chain) :- inChain(Chain, C), hash(C, H), revoked(H).\n"
            "valid(Chain, _) :- leaf(Chain, L), \\+bad(Chain).\n";
  return core::Gcc::for_certificate(name, root, source.str(), justification);
}

}  // namespace anchor::revocation
