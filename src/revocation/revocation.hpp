// Push-based revocation: the mechanism primaries used in every incident the
// paper catalogues (§2.2) before/alongside partial distrust — Chrome's
// CRLSet and Mozilla's OneCRL. The paper argues GCCs generalize these
// ("negative root inclusion subsumes root certificate revocation"); this
// module provides the baseline so the claim is testable (see
// tests/revocation_test.cpp and bench_distrust_modes):
//
//   * CrlSet   — Chrome-style: blocks leaves by (issuer SPKI hash, serial)
//                and any certificate by SPKI hash;
//   * OneCrl   — Mozilla-style: blocks intermediates by (issuer DN, serial);
//   * to_gcc() — compiles a revocation set into an equivalent GCC, the
//                subsumption construction.
#pragma once

#include <string>
#include <unordered_set>

#include "core/gcc.hpp"
#include "revocation/provider.hpp"
#include "util/result.hpp"
#include "x509/certificate.hpp"

namespace anchor::revocation {

// Chrome-style CRLSet.
class CrlSet : public Provider {
 public:
  // Blocks a single certificate by its issuer's SPKI and its serial.
  void block_by_issuer_serial(BytesView issuer_spki, BytesView serial);
  void block_by_issuer_serial(const x509::Certificate& issuer,
                              const x509::Certificate& subject);
  // Blocks every certificate carrying this subject public key.
  void block_spki(BytesView spki);
  void block_spki(const x509::Certificate& cert);

  // True iff `cert` (issued by `issuer_spki`) is revoked.
  bool is_revoked(const x509::Certificate& cert, BytesView issuer_spki) const;

  // Provider: a CRLSet is a blocklist, so anything not listed is kGood.
  const char* name() const override { return "crlset"; }
  RevocationStatus check(const x509::Certificate& cert,
                         BytesView issuer_spki) const override {
    return is_revoked(cert, issuer_spki) ? RevocationStatus::kRevoked
                                         : RevocationStatus::kGood;
  }

  std::size_t size() const {
    return by_issuer_serial_.size() + blocked_spkis_.size();
  }

  // Deterministic text serialization (one entry per line).
  std::string serialize() const;
  static Result<CrlSet> deserialize(std::string_view text);

 private:
  std::unordered_set<std::string> by_issuer_serial_;  // hex(spki)|hex(serial)
  std::unordered_set<std::string> blocked_spkis_;     // hex(spki)
};

// Mozilla-style OneCRL: intermediate revocation by issuer name + serial.
class OneCrl : public Provider {
 public:
  void block(const x509::DistinguishedName& issuer, BytesView serial);
  void block(const x509::Certificate& cert);

  bool is_revoked(const x509::Certificate& cert) const;
  std::size_t size() const { return entries_.size(); }

  // Provider: keys on the issuer DN carried by the certificate itself, so
  // the SPKI argument is ignored. Blocklist semantics — unlisted is kGood.
  const char* name() const override { return "onecrl"; }
  RevocationStatus check(const x509::Certificate& cert,
                         BytesView /*issuer_spki*/) const override {
    return is_revoked(cert) ? RevocationStatus::kRevoked
                            : RevocationStatus::kGood;
  }

  std::string serialize() const;
  static Result<OneCrl> deserialize(std::string_view text);

 private:
  std::unordered_set<std::string> entries_;  // issuerDN|hex(serial)
};

// The paper's subsumption claim, constructively: compile a set of revoked
// certificate hashes into a GCC for `root` that rejects any chain
// containing one of them. (Hash-based — the form the incident responses in
// §2.2 actually shipped as allowlist/denylist GCC clauses.)
Result<core::Gcc> revocation_gcc(const std::string& name,
                                 const x509::Certificate& root,
                                 const std::vector<std::string>& revoked_hashes,
                                 const std::string& justification = "");

}  // namespace anchor::revocation
