// Unified revocation provider interface (SoK: Delegation and Revocation,
// PAPERS.md). Path construction consults any number of registered sources;
// each classifies a certificate as good, revoked, or outside its coverage.
// CrlSet, OneCrl and CompressedRevocationSet (crlite.hpp) all implement it,
// so ChainVerifier carries one `add_revocation_source` entry point instead
// of one raw-pointer setter per mechanism.
#pragma once

#include "util/bytes.hpp"
#include "x509/certificate.hpp"

namespace anchor::revocation {

enum class RevocationStatus : std::uint8_t {
  kGood = 0,     // covered and not revoked
  kRevoked = 1,  // positively revoked — reject the link
  kUnknown = 2,  // outside this source's coverage (e.g. unenrolled issuer)
};

class Provider {
 public:
  virtual ~Provider() = default;

  // Stable short name for diagnostics ("crlset", "onecrl", "crlite").
  virtual const char* name() const = 0;

  // Classifies `cert` as issued by the CA holding `issuer_spki`. Sources
  // that key on the issuer DN rather than the SPKI may ignore the latter.
  virtual RevocationStatus check(const x509::Certificate& cert,
                                 BytesView issuer_spki) const = 0;
};

}  // namespace anchor::revocation
