#include "revocation/crlite.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/base64.hpp"
#include "util/strings.hpp"

namespace anchor::revocation {

namespace {

void put_u64_le(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

// Two independent 64-bit hashes of (salt, level, key) via one SHA-256;
// indices derive by double hashing (h1 + j*h2), the standard Bloom trick.
void hash_pair(std::uint64_t salt, std::uint32_t level, const std::string& key,
               std::uint64_t& h1, std::uint64_t& h2) {
  Bytes material;
  put_u64_le(material, salt);
  put_u64_le(material, level);
  append(material, to_bytes(key));
  Sha256::Digest digest = Sha256::hash(BytesView(material));
  std::memcpy(&h1, digest.data(), 8);
  std::memcpy(&h2, digest.data() + 8, 8);
  if (h2 == 0) h2 = 0x9e3779b97f4a7c15ULL;  // keep the probe sequence moving
}

// Bloom parameters for n keys at false-positive rate p.
void bloom_params(std::size_t n, double p, std::uint32_t& bits,
                  std::uint32_t& hashes) {
  p = std::clamp(p, 1e-6, 0.5);
  const double ln2 = 0.6931471805599453;
  double m = std::ceil(static_cast<double>(n) * -std::log(p) / (ln2 * ln2));
  bits = static_cast<std::uint32_t>(std::max(64.0, m));
  double k = std::round(m / static_cast<double>(n) * ln2);
  hashes = static_cast<std::uint32_t>(std::clamp(k, 1.0, 16.0));
}

}  // namespace

std::string CompressedRevocationSet::key_for(const Sha256::Digest& spki_hash,
                                             BytesView serial) {
  std::string key = to_hex(BytesView(spki_hash.data(), spki_hash.size()));
  key += '|';
  key += to_hex(serial);
  return key;
}

void CompressedRevocationSet::level_insert(Level& level, std::size_t index,
                                           const std::string& key,
                                           std::uint64_t salt) {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  hash_pair(salt, static_cast<std::uint32_t>(index), key, h1, h2);
  for (std::uint32_t j = 0; j < level.hashes; ++j) {
    std::uint64_t bit = (h1 + static_cast<std::uint64_t>(j) * h2) % level.bits;
    level.data[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

bool CompressedRevocationSet::level_contains(const Level& level,
                                             std::size_t index,
                                             const std::string& key) const {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  hash_pair(salt_, static_cast<std::uint32_t>(index), key, h1, h2);
  for (std::uint32_t j = 0; j < level.hashes; ++j) {
    std::uint64_t bit = (h1 + static_cast<std::uint64_t>(j) * h2) % level.bits;
    if ((level.data[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

void CompressedRevocationSet::Builder::enroll(BytesView issuer_spki) {
  enrolled_.insert(Sha256::hash_hex(issuer_spki));
}

void CompressedRevocationSet::Builder::enroll(const x509::Certificate& issuer) {
  enroll(BytesView(issuer.public_key()));
}

void CompressedRevocationSet::Builder::add_revoked(BytesView issuer_spki,
                                                   BytesView serial) {
  enroll(issuer_spki);
  revoked_.insert(key_for(Sha256::hash(issuer_spki), serial));
}

void CompressedRevocationSet::Builder::add_revoked(
    const x509::Certificate& issuer, const x509::Certificate& subject) {
  add_revoked(BytesView(issuer.public_key()), BytesView(subject.serial()));
}

void CompressedRevocationSet::Builder::add_valid(BytesView issuer_spki,
                                                 BytesView serial) {
  enroll(issuer_spki);
  valid_.insert(key_for(Sha256::hash(issuer_spki), serial));
}

void CompressedRevocationSet::Builder::add_valid(
    const x509::Certificate& issuer, const x509::Certificate& subject) {
  add_valid(BytesView(issuer.public_key()), BytesView(subject.serial()));
}

Result<CompressedRevocationSet> CompressedRevocationSet::Builder::build(
    std::uint64_t salt) const {
  for (const std::string& key : revoked_) {
    if (valid_.contains(key)) {
      return err("crlite: key recorded both revoked and valid: " + key);
    }
  }
  CompressedRevocationSet set;
  set.salt_ = salt;
  set.enrolled_ = enrolled_;

  // Odd levels include the (residual) revoked side, even levels the
  // (residual) valid side. std::set iteration keeps the build order — and
  // therefore the emitted bits — deterministic.
  std::vector<std::string> include(revoked_.begin(), revoked_.end());
  std::vector<std::string> test(valid_.begin(), valid_.end());
  while (!include.empty()) {
    const std::size_t index = set.levels_.size();
    Level level;
    // Level 1 is sized against the real universe ratio; deeper levels
    // shrink geometrically, so target 1/2 there (the classic cascade).
    double p = index == 0 && !test.empty()
                   ? static_cast<double>(include.size()) /
                         (2.0 * static_cast<double>(test.size()))
                   : 0.5;
    bloom_params(include.size(), p, level.bits, level.hashes);
    level.data.assign((level.bits + 7) / 8, 0);
    for (const std::string& key : include) {
      level_insert(level, index, key, salt);
    }
    // False positives of this level become the next level's include set.
    std::vector<std::string> next;
    set.levels_.push_back(std::move(level));
    for (const std::string& key : test) {
      if (set.level_contains(set.levels_.back(), index, key)) {
        next.push_back(key);
      }
    }
    test = std::move(include);
    include = std::move(next);
  }
  return set;
}

bool CompressedRevocationSet::is_enrolled(BytesView issuer_spki) const {
  return enrolled_.contains(Sha256::hash_hex(issuer_spki));
}

bool CompressedRevocationSet::contains(BytesView issuer_spki,
                                       BytesView serial) const {
  const std::string key = key_for(Sha256::hash(issuer_spki), serial);
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (!level_contains(levels_[i], i, key)) {
      // Absent from an odd (revoked-side) level => not revoked; absent from
      // an even (valid-side) level => revoked.
      return i % 2 == 1;
    }
  }
  // Present in every level: the last level's side wins.
  return levels_.size() % 2 == 1;
}

RevocationStatus CompressedRevocationSet::check(const x509::Certificate& cert,
                                                BytesView issuer_spki) const {
  if (!is_enrolled(issuer_spki)) return RevocationStatus::kUnknown;
  return contains(issuer_spki, BytesView(cert.serial()))
             ? RevocationStatus::kRevoked
             : RevocationStatus::kGood;
}

std::size_t CompressedRevocationSet::filter_bytes() const {
  std::size_t total = 0;
  for (const Level& level : levels_) total += level.data.size();
  return total;
}

std::string CompressedRevocationSet::serialize() const {
  std::string out = "anchor-crlite/v1\n";
  out += "salt " + std::to_string(salt_) + "\n";
  for (const std::string& hash : enrolled_) {
    out += "enrolled " + hash + "\n";
  }
  for (const Level& level : levels_) {
    out += "level " + std::to_string(level.bits) + " " +
           std::to_string(level.hashes) + " " +
           base64_encode(BytesView(level.data)) + "\n";
  }
  return out;
}

Result<CompressedRevocationSet> CompressedRevocationSet::deserialize(
    std::string_view text) {
  std::vector<std::string> lines = split(text, '\n');
  if (lines.empty() || lines[0] != "anchor-crlite/v1") {
    return err("crlite: bad magic");
  }
  auto parse_u64 = [](const std::string& s, std::uint64_t& out) {
    if (s.empty() || s.size() > 20) return false;
    std::uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
  };
  CompressedRevocationSet set;
  bool saw_salt = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (trim(lines[i]).empty()) continue;
    std::vector<std::string> fields = split(lines[i], ' ');
    if (fields.size() == 2 && fields[0] == "salt") {
      std::uint64_t value = 0;
      if (!parse_u64(fields[1], value)) return err("crlite: bad salt");
      set.salt_ = value;
      saw_salt = true;
    } else if (fields.size() == 2 && fields[0] == "enrolled") {
      if (fields[1].size() != 64) return err("crlite: bad enrolled hash");
      set.enrolled_.insert(fields[1]);
    } else if (fields.size() == 4 && fields[0] == "level") {
      Level level;
      std::uint64_t bits = 0;
      std::uint64_t hashes = 0;
      if (!parse_u64(fields[1], bits) || !parse_u64(fields[2], hashes) ||
          bits == 0 || bits > 0xffffffffULL || hashes == 0 || hashes > 64) {
        return err("crlite: bad level parameters");
      }
      level.bits = static_cast<std::uint32_t>(bits);
      level.hashes = static_cast<std::uint32_t>(hashes);
      if (!base64_decode(fields[3], level.data)) {
        return err("crlite: bad level payload");
      }
      if (level.data.size() != (level.bits + 7) / 8) {
        return err("crlite: level payload size mismatch");
      }
      set.levels_.push_back(std::move(level));
    } else {
      return err("crlite: unknown line: " + lines[i]);
    }
  }
  if (!saw_salt) return err("crlite: missing salt");
  return set;
}

bool CompressedRevocationSet::operator==(
    const CompressedRevocationSet& other) const {
  if (salt_ != other.salt_ || enrolled_ != other.enrolled_ ||
      levels_.size() != other.levels_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].bits != other.levels_[i].bits ||
        levels_[i].hashes != other.levels_[i].hashes ||
        levels_[i].data != other.levels_[i].data) {
      return false;
    }
  }
  return true;
}

}  // namespace anchor::revocation
