// CRLite-style compressed revocation (Larisch et al., CRLite; folded into
// this reproduction via the SoK delegation/revocation axis, PAPERS.md): a
// keyed Bloom-filter cascade over (issuer SPKI hash, serial) built from
// enrolled issuers' full serial universes.
//
// Construction: level 1 is a Bloom filter over the revoked set R, sized
// against the known-valid universe S. Any s in S that level 1 falsely
// reports becomes the include set of level 2 (tested against R), whose
// false positives seed level 3, and so on until a level produces none.
// Lookup walks the cascade: the first level that does *not* contain the key
// decides (odd level -> not revoked, even level -> revoked); exhausting the
// cascade inside level L decides by L's parity. Because the cascade is
// rebuilt until the residual false-positive set is empty, every key in
// R ∪ S gets the *correct* answer — zero false positives (and zero false
// negatives) for enrolled issuers, by construction. Keys outside R ∪ S of
// an enrolled issuer may fall either way, which is why deployment keys the
// universe on everything the CA ever issued; unenrolled issuers are
// reported kUnknown so callers fall back to other sources.
//
// The cascade is deterministic for a given (contents, salt): serialization
// is byte-stable, so carrying it inside RootStore::serialize() keeps store
// content hashes — and therefore RSF snapshot/delta transcripts — stable.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "revocation/provider.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/sha256.hpp"

namespace anchor::revocation {

class CompressedRevocationSet : public Provider {
 public:
  class Builder {
   public:
    // Declares the CA holding `issuer_spki` enrolled: its serial universe is
    // fully known, so lookups against it are authoritative.
    void enroll(BytesView issuer_spki);
    void enroll(const x509::Certificate& issuer);

    // Records one serial of an enrolled issuer as revoked / known-valid.
    // Implicitly enrolls the issuer.
    void add_revoked(BytesView issuer_spki, BytesView serial);
    void add_revoked(const x509::Certificate& issuer,
                     const x509::Certificate& subject);
    void add_valid(BytesView issuer_spki, BytesView serial);
    void add_valid(const x509::Certificate& issuer,
                   const x509::Certificate& subject);

    // Builds the cascade. Fails if any (issuer, serial) was recorded both
    // revoked and valid. `salt` keys the hash family — rebuilds with a new
    // salt produce structurally different (but equally correct) cascades.
    Result<CompressedRevocationSet> build(std::uint64_t salt = 0x43524c6974ULL)
        const;

   private:
    std::set<std::string> enrolled_;  // hex(sha256(spki))
    std::set<std::string> revoked_;   // hex key (see key_for)
    std::set<std::string> valid_;
  };

  // True iff the CA holding `issuer_spki` is enrolled in this cascade.
  bool is_enrolled(BytesView issuer_spki) const;

  // True iff the (enrolled-issuer, serial) pair walks the cascade to a
  // "revoked" verdict. Meaningless for unenrolled issuers — callers must
  // gate on is_enrolled (check() below does).
  bool contains(BytesView issuer_spki, BytesView serial) const;

  // Provider: kUnknown for unenrolled issuers, else kRevoked/kGood.
  const char* name() const override { return "crlite"; }
  RevocationStatus check(const x509::Certificate& cert,
                         BytesView issuer_spki) const override;

  std::size_t level_count() const { return levels_.size(); }
  std::size_t enrolled_count() const { return enrolled_.size(); }
  // Filter payload (cascade bit arrays only) — the number the paper-style
  // size comparison against the OneCRL-equivalent GCC reports.
  std::size_t filter_bytes() const;
  // Full serialized footprint including enrollment list and framing.
  std::size_t size_bytes() const { return serialize().size(); }

  // Deterministic text serialization ("anchor-crlite/v1"); round-trips.
  std::string serialize() const;
  static Result<CompressedRevocationSet> deserialize(std::string_view text);

  bool operator==(const CompressedRevocationSet& other) const;

 private:
  friend class Builder;

  struct Level {
    std::uint32_t bits = 0;    // filter size in bits
    std::uint32_t hashes = 0;  // hash functions per key
    Bytes data;                // ceil(bits/8) bytes
  };

  static std::string key_for(const Sha256::Digest& spki_hash, BytesView serial);
  bool level_contains(const Level& level, std::size_t index,
                      const std::string& key) const;
  static void level_insert(Level& level, std::size_t index,
                           const std::string& key, std::uint64_t salt);

  std::uint64_t salt_ = 0;
  std::vector<Level> levels_;
  std::set<std::string> enrolled_;  // hex(sha256(spki)), sorted for serialize
};

}  // namespace anchor::revocation
