// anchorctl — command-line companion for libanchor.
//
//   anchorctl inspect <cert.pem>                 print certificate fields
//   anchorctl chain-facts <chain.pem>            chain -> Datalog facts (§3)
//   anchorctl gcc-check <gcc.dl> <root.pem>      validate a GCC offline
//   anchorctl gcc-eval <gcc.dl> <chain.pem> [--usage TLS|S/MIME]
//   anchorctl datalog <program.dl> --query "p(X)?"
//   anchorctl store-dump <store.txt>             summarize a root store
//   anchorctl store-hash <store.txt>             canonical content hash
//   anchorctl store-diff <old.txt> <new.txt>     RSF delta between stores
//   anchorctl verify <store.txt> <chain.pem> --host <h> --time <iso8601>
//                                 [--usage TLS|S/MIME] [--crlset <f>]
//                                 [--onecrl <f>] [--crlite <f>]
//                                 the three optional flags register
//                                 serialized revocation sets as unified
//                                 revocation::Provider sources
//   anchorctl serve-stats <store.txt> <chain.pem> --host <h> --time <t>
//                                 [--usage TLS|S/MIME] [--threads N]
//                                 [--repeat N]     run the chain through a
//                                 VerifyService and print its counters
//   anchorctl feed-publish <dir> <store.txt> --time <iso8601> [--note "..."]
//   anchorctl feed-verify <dir>              check signatures + hash chain
//   anchorctl feed-apply <dir> <out.txt>     materialize the head snapshot
//   anchorctl feed-status <dir> --now <iso8601> [--stale-after <seconds>]
//                                 head, integrity, staleness and the
//                                 healthy/degraded/stale classification a
//                                 polling client would report
//   anchorctl feed-fetch <dir> [--from N] [--transport memory|unix]
//                                 authenticated poll over the anchord wire:
//                                 re-serve the feed directory through an
//                                 in-process daemon, fetch {signed tree
//                                 head, consistency + inclusion proofs,
//                                 snapshot range} from the pinned size N,
//                                 and verify all three before reporting
//   anchorctl metrics <store.txt> <chain.pem> --host <h> --time <iso8601>
//                                 [--usage TLS|S/MIME] [--repeat N]
//                                 [--threads N] [--feed <dir> --now <iso8601>]
//                                 drive verifications (and optionally one
//                                 feed poll) through the shared registry —
//                                 half direct, half through an in-process
//                                 anchord server so the daemon's own
//                                 queue-depth/overload series populate —
//                                 then print the text exposition
//   anchorctl daemon <store.txt> <verb> [chain.pem] [--host <h>]
//                                 [--time <iso8601>] [--usage TLS|S/MIME]
//                                 [--transport memory|unix]
//                                 speak the framed wire protocol to an
//                                 in-process anchord server; <verb> is one
//                                 of verify, evaluate-gccs, metrics,
//                                 feed-status. Exit code = the response's
//                                 ErrorKind value (0 = ok).
//   anchorctl daemon --snapshot <store.snap> <verb> [...]
//                                 same, but the daemon warm-starts from an
//                                 mmap'd snapshot image: no text parse, no
//                                 GCC recompilation (O(1) warm start).
//   anchorctl snapshot-write <store.txt> <out.snap>
//                                 compile a text store into the flat mmap
//                                 snapshot format, then re-open and verify
//                                 the written image before reporting it
//   anchorctl snapshot-info <store.snap>
//                                 validate a snapshot fail-closed and print
//                                 its header facts (epoch, counts, digest);
//                                 a rejected image prints the classified
//                                 error (truncated, checksum-mismatch, ...)
//   anchorctl crlite-build <spec.txt> <out.crlite>
//                                 build a CRLite-style filter cascade from
//                                 a spec of `enroll <spki-hex>`,
//                                 `revoked <spki-hex> <serial-hex>` and
//                                 `valid <spki-hex> <serial-hex>` lines,
//                                 then print its shape
//   anchorctl crlite-info <filter.crlite>
//                                 parse a serialized filter and print
//                                 levels, enrollment and sizes
//   anchorctl compile-store <store.textproto> [--out <store.txt>]
//                                 [--roots <roots.pem>] [--prefix crs]
//                                 parse a Chrome Root Store textproto
//                                 (fail-closed; classified errors) and
//                                 lower every constraints block to GCCs.
//                                 --roots supplies certificates matched to
//                                 anchors by SHA-256; --out writes the
//                                 compiled store in the native format.
//
// Feed directories hold `feed.name` plus `snapshot-NNNN.txt` files (a
// header block followed by the store payload) — a file-based RSF a
// derivative can rsync/fetch. Signing keys derive deterministically from
// the feed name via SimSig (the DESIGN.md §5 substitution), so publisher
// and verifier need no key exchange in this simulation.
//
// <chain.pem> holds concatenated CERTIFICATE blocks, leaf first.
// `verify` runs without signature verification: PEM files carry no SimSig
// secrets (see DESIGN.md §5); structural, temporal, constraint and GCC
// checks all still apply.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "anchord/client.hpp"
#include "anchord/feed_transport.hpp"
#include "anchord/server.hpp"
#include "ctlog/merkle.hpp"
#include "chain/service.hpp"
#include "chain/verifier.hpp"
#include "core/executor.hpp"
#include "core/facts.hpp"
#include "datalog/engine.hpp"
#include "rootstore/chromeproto.hpp"
#include "rootstore/constraint_compile.hpp"
#include "revocation/crlite.hpp"
#include "revocation/revocation.hpp"
#include "rootstore/snapshot/view.hpp"
#include "rootstore/snapshot/writer.hpp"
#include "rootstore/store.hpp"
#include "rsf/client.hpp"
#include "rsf/delta.hpp"
#include "rsf/feed.hpp"
#include "rsf/transport.hpp"
#include "util/base64.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

using namespace anchor;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: anchorctl <command> [args]\n"
               "  inspect <cert.pem>\n"
               "  chain-facts <chain.pem>\n"
               "  gcc-check <gcc.dl> <root.pem>\n"
               "  gcc-eval <gcc.dl> <chain.pem> [--usage TLS|S/MIME]\n"
               "  datalog <program.dl> --query \"p(X)?\"\n"
               "  store-dump <store.txt>\n"
               "  store-hash <store.txt>\n"
               "  store-diff <old.txt> <new.txt>\n"
               "  verify <store.txt> <chain.pem> --host <h> --time <iso8601>"
               " [--usage TLS|S/MIME]"
               " [--crlset <f>] [--onecrl <f>] [--crlite <f>]\n"
               "  serve-stats <store.txt> <chain.pem> --host <h> --time <t>"
               " [--usage TLS|S/MIME] [--threads N] [--repeat N]\n"
               "  feed-publish <dir> <store.txt> --time <iso8601> [--note s]\n"
               "  feed-verify <dir>\n"
               "  feed-apply <dir> <out-store.txt>\n"
               "  feed-status <dir> --now <iso8601> [--stale-after <sec>]\n"
               "  feed-fetch <dir> [--from N] [--transport memory|unix]\n"
               "  metrics <store.txt> <chain.pem> --host <h> --time <t>"
               " [--usage TLS|S/MIME] [--repeat N] [--threads N]"
               " [--feed <dir> --now <iso8601>]\n"
               "  daemon <store.txt> <verb> [chain.pem] [--host <h>]"
               " [--time <t>] [--usage TLS|S/MIME] [--transport memory|unix]"
               " [--crlset <f>] [--onecrl <f>] [--crlite <f>]\n"
               "      verb: verify | evaluate-gccs | metrics | feed-status\n"
               "  daemon --snapshot <store.snap> <verb> [...]\n"
               "  snapshot-write <store.txt> <out.snap>\n"
               "  snapshot-info <store.snap>\n"
               "  crlite-build <spec.txt> <out.crlite>\n"
               "  crlite-info <filter.crlite>\n"
               "  compile-store <store.textproto> [--out <store.txt>]"
               " [--roots <roots.pem>] [--prefix crs]\n");
  return 2;
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return err("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<std::vector<x509::CertPtr>> read_chain(const std::string& path) {
  auto text = read_file(path);
  if (!text) return err(text.error());
  std::vector<x509::CertPtr> chain;
  std::string_view rest = text.value();
  while (true) {
    Bytes der;
    std::size_t consumed = 0;
    if (!pem_decode(rest, "CERTIFICATE", der, &consumed)) break;
    auto cert = x509::Certificate::parse(BytesView(der));
    if (!cert) return err(path + ": " + cert.error());
    chain.push_back(std::move(cert).take());
    rest = rest.substr(consumed);
  }
  if (chain.empty()) return err(path + ": no CERTIFICATE blocks");
  return chain;
}

void print_certificate(const x509::Certificate& cert) {
  std::printf("subject      : %s\n", cert.subject().to_string().c_str());
  std::printf("issuer       : %s\n", cert.issuer().to_string().c_str());
  std::printf("serial       : %s\n", to_hex(BytesView(cert.serial())).c_str());
  std::printf("not before   : %s\n", format_iso8601(cert.not_before()).c_str());
  std::printf("not after    : %s\n", format_iso8601(cert.not_after()).c_str());
  std::printf("sha256       : %s\n", cert.fingerprint_hex().c_str());
  if (cert.is_ca()) {
    if (auto plen = cert.path_len()) {
      std::printf("basic constr : CA, pathLen=%d\n", *plen);
    } else {
      std::printf("basic constr : CA\n");
    }
  }
  if (cert.key_usage()) {
    std::printf("key usage    :");
    for (const auto& name : cert.key_usage()->names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  if (cert.extended_key_usage()) {
    std::printf("ext key usage:");
    for (const auto& name : cert.extended_key_usage()->names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  if (cert.subject_alt_name()) {
    std::printf("SANs         :");
    for (const auto& name : cert.subject_alt_name()->dns_names) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  if (cert.name_constraints()) {
    for (const auto& permitted : cert.name_constraints()->permitted_dns) {
      std::printf("permitted    : %s\n", permitted.c_str());
    }
    for (const auto& excluded : cert.name_constraints()->excluded_dns) {
      std::printf("excluded     : %s\n", excluded.c_str());
    }
  }
  if (cert.is_ev()) std::printf("EV policy    : yes\n");
}

// Fetches the value following `flag`, or `fallback`.
std::string flag_value(int argc, char** argv, const std::string& flag,
                       const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return fallback;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 1) return usage();
  auto chain = read_chain(argv[0]);
  if (!chain) {
    std::fprintf(stderr, "error: %s\n", chain.error().c_str());
    return 1;
  }
  for (std::size_t i = 0; i < chain.value().size(); ++i) {
    if (i > 0) std::printf("\n--- certificate %zu ---\n", i);
    print_certificate(*chain.value()[i]);
  }
  return 0;
}

int cmd_chain_facts(int argc, char** argv) {
  if (argc < 1) return usage();
  auto chain = read_chain(argv[0]);
  if (!chain) {
    std::fprintf(stderr, "error: %s\n", chain.error().c_str());
    return 1;
  }
  core::FactSet facts;
  core::encode_chain(chain.value(), core::chain_id_of(chain.value()), facts);
  for (const core::Fact& fact : facts.facts) {
    std::printf("%s(", fact.predicate.c_str());
    for (std::size_t i = 0; i < fact.args.size(); ++i) {
      if (i > 0) std::printf(", ");
      std::printf("%s", fact.args[i].to_string().c_str());
    }
    std::printf(").\n");
  }
  std::fprintf(stderr, "%zu facts\n", facts.size());
  return 0;
}

int cmd_gcc_check(int argc, char** argv) {
  if (argc < 2) return usage();
  auto source = read_file(argv[0]);
  if (!source) {
    std::fprintf(stderr, "error: %s\n", source.error().c_str());
    return 1;
  }
  auto roots = read_chain(argv[1]);
  if (!roots) {
    std::fprintf(stderr, "error: %s\n", roots.error().c_str());
    return 1;
  }
  auto gcc = core::Gcc::for_certificate("cli-check", *roots.value()[0],
                                        source.value());
  if (!gcc) {
    std::fprintf(stderr, "INVALID: %s\n", gcc.error().c_str());
    return 1;
  }
  std::printf("OK: %zu clauses, binds to root %s\n",
              gcc.value().program().clauses.size(),
              gcc.value().root_hash_hex().substr(0, 16).c_str());
  return 0;
}

int cmd_gcc_eval(int argc, char** argv) {
  if (argc < 2) return usage();
  auto source = read_file(argv[0]);
  auto chain = read_chain(argv[1]);
  if (!source || !chain) {
    std::fprintf(stderr, "error: %s\n",
                 (!source ? source.error() : chain.error()).c_str());
    return 1;
  }
  std::string usage_name = flag_value(argc, argv, "--usage", "TLS");
  auto gcc = core::Gcc::for_certificate("cli-eval", *chain.value().back(),
                                        source.value());
  if (!gcc) {
    std::fprintf(stderr, "error: %s\n", gcc.error().c_str());
    return 1;
  }
  core::GccExecutor executor;
  core::GccVerdict verdict;
  bool ok =
      executor.evaluate_one(chain.value(), usage_name, gcc.value(), &verdict);
  std::printf("%s (usage %s, %zu facts, %llu tuples derived)\n",
              ok ? "VALID" : "INVALID", usage_name.c_str(),
              verdict.facts_encoded,
              static_cast<unsigned long long>(verdict.stats.derived_tuples));
  if (verdict.stats.type_errors > 0) {
    std::printf("warning: %llu type error(s) — mixed-type ordered comparison "
                "or non-integer arithmetic; affected literals failed\n",
                static_cast<unsigned long long>(verdict.stats.type_errors));
  }
  if (verdict.stats.truncated) {
    std::printf("warning: evaluation truncated (resource limits); verdict "
                "fails closed\n");
  }
  if (verdict.stats.errored) {
    std::printf("warning: evaluation errored (incomplete model); verdict "
                "fails closed\n");
  }
  return ok ? 0 : 1;
}

int cmd_datalog(int argc, char** argv) {
  if (argc < 1) return usage();
  auto source = read_file(argv[0]);
  if (!source) {
    std::fprintf(stderr, "error: %s\n", source.error().c_str());
    return 1;
  }
  std::string query = flag_value(argc, argv, "--query", "");
  if (query.empty()) {
    std::fprintf(stderr, "error: --query required\n");
    return 2;
  }
  datalog::Engine engine;
  if (Status s = engine.load(source.value()); !s) {
    std::fprintf(stderr, "error: %s\n", s.error().c_str());
    return 1;
  }
  auto result = engine.query(query);
  if (!result) {
    std::fprintf(stderr, "error: %s\n", result.error().c_str());
    return 1;
  }
  if (result.value().bindings.empty()) {
    std::printf("no.\n");
    return 1;
  }
  for (const auto& binding : result.value().bindings) {
    if (binding.empty()) {
      std::printf("yes.\n");
      continue;
    }
    bool first = true;
    for (const auto& [var, value] : binding) {
      std::printf("%s%s = %s", first ? "" : ", ", var.c_str(),
                  value.to_string().c_str());
      first = false;
    }
    std::printf("\n");
  }
  return 0;
}

Result<rootstore::RootStore> load_store(const std::string& path) {
  auto text = read_file(path);
  if (!text) return err(text.error());
  return rootstore::RootStore::deserialize(text.value());
}

int cmd_store_dump(int argc, char** argv) {
  if (argc < 1) return usage();
  auto store = load_store(argv[0]);
  if (!store) {
    std::fprintf(stderr, "error: %s\n", store.error().c_str());
    return 1;
  }
  std::printf("trusted    : %zu\n", store.value().trusted_count());
  std::printf("distrusted : %zu\n", store.value().distrusted_count());
  std::printf("gccs       : %zu (on %zu roots)\n", store.value().gccs().total(),
              store.value().gccs().constrained_roots());
  for (const rootstore::RootEntry* entry : store.value().trusted()) {
    const auto& gccs =
        store.value().gccs().for_root(entry->cert->fingerprint_hex());
    std::printf("  + %-40s %s%s%s\n",
                entry->cert->subject().common_name().c_str(),
                entry->metadata.ev_allowed ? "[EV] " : "",
                entry->metadata.tls_distrust_after ? "[tls-cutoff] " : "",
                gccs.empty() ? "" : "[GCC]");
  }
  for (const auto& [hash, justification] : store.value().distrusted()) {
    std::printf("  - %s  (%s)\n", hash.substr(0, 16).c_str(),
                justification.c_str());
  }
  return 0;
}

int cmd_store_hash(int argc, char** argv) {
  if (argc < 1) return usage();
  auto store = load_store(argv[0]);
  if (!store) {
    std::fprintf(stderr, "error: %s\n", store.error().c_str());
    return 1;
  }
  std::printf("%s\n", store.value().content_hash_hex().c_str());
  return 0;
}

int cmd_store_diff(int argc, char** argv) {
  if (argc < 2) return usage();
  auto old_store = load_store(argv[0]);
  auto new_store = load_store(argv[1]);
  if (!old_store || !new_store) {
    std::fprintf(stderr, "error: %s\n",
                 (!old_store ? old_store.error() : new_store.error()).c_str());
    return 1;
  }
  rsf::StoreDelta delta =
      rsf::StoreDelta::diff(old_store.value(), new_store.value());
  std::fputs(delta.serialize().c_str(), stdout);
  std::fprintf(stderr, "%zu operations\n", delta.operations());
  return 0;
}

// Loads the revocation sources named by --crlset / --onecrl / --crlite
// into `out` as unified Provider handles. Absent flags are skipped; an
// unreadable or unparseable file is reported and fails the command.
bool load_revocation_flags(
    int argc, char** argv,
    std::vector<std::shared_ptr<const revocation::Provider>>& out) {
  const auto load = [&](const char* flag,
                        auto deserialize) -> bool {
    const std::string path = flag_value(argc, argv, flag, "");
    if (path.empty()) return true;
    auto text = read_file(path);
    if (!text) {
      std::fprintf(stderr, "error: %s\n", text.error().c_str());
      return false;
    }
    auto parsed = deserialize(text.value());
    if (!parsed) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   parsed.error().c_str());
      return false;
    }
    using Parsed = std::decay_t<decltype(parsed.value())>;
    out.push_back(std::make_shared<Parsed>(std::move(parsed).take()));
    return true;
  };
  return load("--crlset",
              [](std::string_view t) { return revocation::CrlSet::deserialize(t); }) &&
         load("--onecrl",
              [](std::string_view t) { return revocation::OneCrl::deserialize(t); }) &&
         load("--crlite", [](std::string_view t) {
           return revocation::CompressedRevocationSet::deserialize(t);
         });
}

int cmd_verify(int argc, char** argv) {
  if (argc < 2) return usage();
  auto store = load_store(argv[0]);
  auto chain = read_chain(argv[1]);
  if (!store || !chain) {
    std::fprintf(stderr, "error: %s\n",
                 (!store ? store.error() : chain.error()).c_str());
    return 1;
  }
  chain::VerifyOptions options;
  options.hostname = flag_value(argc, argv, "--host", "");
  options.usage = flag_value(argc, argv, "--usage", "TLS") == "S/MIME"
                      ? chain::Usage::kSmime
                      : chain::Usage::kTls;
  std::string time_text = flag_value(argc, argv, "--time", "");
  if (time_text.empty() || !parse_iso8601(time_text, options.time)) {
    std::fprintf(stderr, "error: --time <YYYY-MM-DDTHH:MM:SSZ> required\n");
    return 2;
  }
  options.check_signatures = false;  // PEMs carry no SimSig secrets

  auto pool = std::make_shared<chain::CertificatePool>();
  for (std::size_t i = 1; i < chain.value().size(); ++i) {
    pool->add(chain.value()[i]);
  }
  SimSig no_keys;
  chain::ChainVerifier verifier(store.value(), no_keys);
  std::vector<std::shared_ptr<const revocation::Provider>> sources;
  if (!load_revocation_flags(argc, argv, sources)) return 1;
  for (const auto& source : sources) verifier.add_revocation_source(source);
  chain::VerifyResult result =
      verifier.verify(chain.value()[0], *pool, options);
  if (result.ok) {
    std::printf("VALID: chain of %zu to root '%s'\n", result.chain.size(),
                result.chain.back()->subject().common_name().c_str());
    return 0;
  }
  std::printf("INVALID (%s): %s\n", chain::to_string(result.kind),
              result.error.c_str());
  for (const auto& rejected : result.rejected_paths) {
    std::printf("  tried [%s]: %s\n", chain::to_string(rejected.kind),
                chain::to_string(rejected).c_str());
  }
  // Scripts branch on the taxonomy, not on scraping the message.
  return chain::exit_code(result.kind);
}

// Runs the chain through a VerifyService --repeat times (async, so the
// worker pool and both caches are exercised) and prints the Stats
// snapshot. The second and later repeats should be verdict-cache hits;
// a hit rate far below (repeat-1)/repeat means the cache is misbehaving.
int cmd_serve_stats(int argc, char** argv) {
  if (argc < 2) return usage();
  auto store = load_store(argv[0]);
  auto chain = read_chain(argv[1]);
  if (!store || !chain) {
    std::fprintf(stderr, "error: %s\n",
                 (!store ? store.error() : chain.error()).c_str());
    return 1;
  }
  chain::VerifyOptions options;
  options.hostname = flag_value(argc, argv, "--host", "");
  options.usage = flag_value(argc, argv, "--usage", "TLS") == "S/MIME"
                      ? chain::Usage::kSmime
                      : chain::Usage::kTls;
  std::string time_text = flag_value(argc, argv, "--time", "");
  if (time_text.empty() || !parse_iso8601(time_text, options.time)) {
    std::fprintf(stderr, "error: --time <YYYY-MM-DDTHH:MM:SSZ> required\n");
    return 2;
  }
  options.check_signatures = false;  // PEMs carry no SimSig secrets
  const unsigned long repeat =
      std::strtoul(flag_value(argc, argv, "--repeat", "16").c_str(), nullptr,
                   10);
  chain::ServiceConfig config;
  config.threads = std::strtoul(
      flag_value(argc, argv, "--threads", "4").c_str(), nullptr, 10);

  auto pool = std::make_shared<chain::CertificatePool>();
  for (std::size_t i = 1; i < chain.value().size(); ++i) {
    pool->add(chain.value()[i]);
  }
  SimSig no_keys;
  chain::VerifyService service(store.value(), no_keys, config);
  std::vector<std::future<chain::VerifyResult>> pending;
  pending.reserve(repeat);
  for (unsigned long i = 0; i < repeat; ++i) {
    pending.push_back(service.submit(chain.value()[0], pool, options));
  }
  bool ok = true;
  std::string error;
  for (auto& future : pending) {
    chain::VerifyResult result = future.get();
    if (!result.ok && ok) {
      ok = false;
      error = result.error;
    }
  }

  const chain::ServiceStats stats = service.stats();
  const double lookups =
      static_cast<double>(stats.verdict_hits + stats.verdict_misses);
  std::printf("verdict        : %s%s%s\n", ok ? "VALID" : "INVALID",
              ok ? "" : " — ", ok ? "" : error.c_str());
  std::printf("calls          : %llu (repeat=%lu, threads=%zu)\n",
              static_cast<unsigned long long>(stats.calls), repeat,
              config.threads);
  std::printf("verdict cache  : %llu hits / %llu misses (hit rate %.3f)\n",
              static_cast<unsigned long long>(stats.verdict_hits),
              static_cast<unsigned long long>(stats.verdict_misses),
              lookups > 0 ? static_cast<double>(stats.verdict_hits) / lookups
                          : 0.0);
  std::printf("cert cache     : %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.cert_hits),
              static_cast<unsigned long long>(stats.cert_misses));
  std::printf("evictions      : %llu\n",
              static_cast<unsigned long long>(stats.evictions));
  std::printf("epoch flushes  : %llu (stale purged %llu)\n",
              static_cast<unsigned long long>(stats.epoch_flushes),
              static_cast<unsigned long long>(stats.stale_purged));
  std::printf("store epoch    : %llu\n",
              static_cast<unsigned long long>(stats.epoch));
  std::printf("queue depth    : %zu\n", stats.queue_depth);
  if (stats.calls > 0) {
    std::printf("mean call time : %llu ns\n",
                static_cast<unsigned long long>(stats.total_ns / stats.calls));
  }
  return ok ? 0 : 1;
}

// --- file-based feeds --------------------------------------------------------

Result<std::string> feed_name_of(const std::string& dir) {
  auto name = read_file(dir + "/feed.name");
  if (!name) return err(name.error());
  return std::string(trim(name.value()));
}

std::string snapshot_path(const std::string& dir, std::uint64_t sequence) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04llu",
                static_cast<unsigned long long>(sequence));
  return dir + "/snapshot-" + buf + ".txt";
}

std::string serialize_snapshot(const rsf::Snapshot& snap) {
  std::string out = "anchor-rsf-file/v1\n";
  out += "seq " + std::to_string(snap.sequence) + "\n";
  out += "time " + std::to_string(snap.published_at) + "\n";
  out += "prev " + (snap.prev_hash.empty() ? "-" : snap.prev_hash) + "\n";
  out += "payload-hash " + snap.payload_hash + "\n";
  out += "annotation-b64 " +
         base64_encode(BytesView(to_bytes(snap.annotation))) + "\n";
  out += "signature-hex " + to_hex(BytesView(snap.signature)) + "\n";
  out += "payload:\n";
  out += snap.payload;
  return out;
}

Result<rsf::Snapshot> parse_snapshot(const std::string& text) {
  rsf::Snapshot snap;
  std::size_t pos = 0;
  auto next_line = [&]() -> std::string {
    std::size_t end = text.find('\n', pos);
    std::string line = text.substr(pos, end - pos);
    pos = end == std::string::npos ? text.size() : end + 1;
    return line;
  };
  if (next_line() != "anchor-rsf-file/v1") return err("feed: bad header");
  auto field = [&](const std::string& key) -> Result<std::string> {
    std::string line = next_line();
    if (!starts_with(line, key + " ")) return err("feed: expected " + key);
    return line.substr(key.size() + 1);
  };
  auto seq = field("seq");
  if (!seq) return err(seq.error());
  snap.sequence = std::strtoull(seq.value().c_str(), nullptr, 10);
  auto time_field = field("time");
  if (!time_field) return err(time_field.error());
  snap.published_at = std::strtoll(time_field.value().c_str(), nullptr, 10);
  auto prev = field("prev");
  if (!prev) return err(prev.error());
  snap.prev_hash = prev.value() == "-" ? "" : prev.value();
  auto payload_hash = field("payload-hash");
  if (!payload_hash) return err(payload_hash.error());
  snap.payload_hash = payload_hash.value();
  auto annotation = field("annotation-b64");
  if (!annotation) return err(annotation.error());
  Bytes decoded;
  if (!base64_decode(annotation.value(), decoded)) {
    return err("feed: bad annotation");
  }
  snap.annotation = to_string(BytesView(decoded));
  auto signature = field("signature-hex");
  if (!signature) return err(signature.error());
  if (!from_hex(signature.value(), snap.signature)) {
    return err("feed: bad signature hex");
  }
  if (next_line() != "payload:") return err("feed: missing payload marker");
  snap.payload = text.substr(pos);
  return snap;
}

Result<std::vector<rsf::Snapshot>> load_feed(const std::string& dir) {
  std::vector<rsf::Snapshot> run;
  for (std::uint64_t seq = 1;; ++seq) {
    auto text = read_file(snapshot_path(dir, seq));
    if (!text) break;
    auto snap = parse_snapshot(text.value());
    if (!snap) return err(snapshot_path(dir, seq) + ": " + snap.error());
    if (snap.value().sequence != seq) return err("feed: sequence mismatch");
    run.push_back(std::move(snap).take());
  }
  return run;
}

int cmd_feed_publish(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string dir = argv[0];
  auto store = load_store(argv[1]);
  if (!store) {
    std::fprintf(stderr, "error: %s\n", store.error().c_str());
    return 1;
  }
  std::string time_text = flag_value(argc, argv, "--time", "");
  std::int64_t published_at = 0;
  if (time_text.empty() || !parse_iso8601(time_text, published_at)) {
    std::fprintf(stderr, "error: --time <YYYY-MM-DDTHH:MM:SSZ> required\n");
    return 2;
  }
  auto name = feed_name_of(dir);
  if (!name) {
    std::fprintf(stderr, "error: %s (create <dir>/feed.name first)\n",
                 name.error().c_str());
    return 1;
  }
  auto existing = load_feed(dir);
  if (!existing) {
    std::fprintf(stderr, "error: %s\n", existing.error().c_str());
    return 1;
  }

  rsf::Snapshot snap;
  snap.sequence = existing.value().size() + 1;
  snap.published_at = published_at;
  snap.annotation = flag_value(argc, argv, "--note", "");
  snap.payload = store.value().serialize();
  snap.payload_hash = Sha256::hash_hex(BytesView(to_bytes(snap.payload)));
  snap.prev_hash =
      existing.value().empty() ? "" : existing.value().back().payload_hash;
  SimKeyPair key = SimSig::keygen("rsf-feed-" + name.value());
  snap.signature = SimSig::sign(key, BytesView(snap.transcript()));

  std::ofstream out(snapshot_path(dir, snap.sequence), std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write snapshot\n");
    return 1;
  }
  out << serialize_snapshot(snap);
  std::printf("published snapshot %llu to %s\n",
              static_cast<unsigned long long>(snap.sequence),
              snapshot_path(dir, snap.sequence).c_str());
  return 0;
}

int cmd_feed_verify(int argc, char** argv) {
  if (argc < 1) return usage();
  std::string dir = argv[0];
  auto name = feed_name_of(dir);
  if (!name) {
    std::fprintf(stderr, "error: %s\n", name.error().c_str());
    return 1;
  }
  auto run = load_feed(dir);
  if (!run) {
    std::fprintf(stderr, "error: %s\n", run.error().c_str());
    return 1;
  }
  if (run.value().empty()) {
    std::printf("empty feed\n");
    return 0;
  }
  SimSig registry;
  SimKeyPair key = SimSig::keygen("rsf-feed-" + name.value());
  registry.register_key(key);
  Status status = rsf::Feed::verify_run(run.value(), "", BytesView(key.key_id),
                                        registry);
  if (!status.ok()) {
    std::printf("FEED INVALID: %s\n", status.error().c_str());
    return 1;
  }
  std::printf("feed OK: %zu snapshot(s), head seq %llu, head hash %s\n",
              run.value().size(),
              static_cast<unsigned long long>(run.value().back().sequence),
              run.value().back().payload_hash.substr(0, 16).c_str());
  return 0;
}

int cmd_feed_apply(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string dir = argv[0];
  auto name = feed_name_of(dir);
  if (!name) {
    std::fprintf(stderr, "error: %s\n", name.error().c_str());
    return 1;
  }
  auto run = load_feed(dir);
  if (!run || run.value().empty()) {
    std::fprintf(stderr, "error: %s\n",
                 run.ok() ? "empty feed" : run.error().c_str());
    return 1;
  }
  SimSig registry;
  SimKeyPair key = SimSig::keygen("rsf-feed-" + name.value());
  registry.register_key(key);
  if (Status s = rsf::Feed::verify_run(run.value(), "", BytesView(key.key_id),
                                       registry);
      !s.ok()) {
    std::fprintf(stderr, "refusing to apply: %s\n", s.error().c_str());
    return 1;
  }
  // Payload integrity is covered by verify_run; parse to confirm shape.
  auto parsed = rootstore::RootStore::deserialize(run.value().back().payload);
  if (!parsed) {
    std::fprintf(stderr, "error: %s\n", parsed.error().c_str());
    return 1;
  }
  std::ofstream out(argv[1], std::ios::binary);
  out << run.value().back().payload;
  std::printf("applied snapshot %llu: %zu trusted, %zu distrusted, %zu gccs "
              "-> %s\n",
              static_cast<unsigned long long>(run.value().back().sequence),
              parsed.value().trusted_count(), parsed.value().distrusted_count(),
              parsed.value().gccs().total(), argv[1]);
  return 0;
}

// Reports what a polling RsfClient would see: head, integrity (with the
// fault classified the way ClientStats::transport_errors buckets it), how
// stale the head is relative to --now, and the resulting health state.
int cmd_feed_status(int argc, char** argv) {
  if (argc < 1) return usage();
  std::string dir = argv[0];
  auto name = feed_name_of(dir);
  if (!name) {
    std::fprintf(stderr, "error: %s\n", name.error().c_str());
    return 1;
  }
  auto run = load_feed(dir);
  if (!run) {
    std::fprintf(stderr, "error: %s\n", run.error().c_str());
    return 1;
  }
  std::printf("feed           : %s\n", name.value().c_str());
  std::printf("snapshots      : %zu\n", run.value().size());
  if (run.value().empty()) {
    std::printf("health         : stale (feed is empty)\n");
    return 1;
  }

  std::string now_text = flag_value(argc, argv, "--now", "");
  std::int64_t now = 0;
  if (now_text.empty() || !parse_iso8601(now_text, now)) {
    std::fprintf(stderr, "error: --now <YYYY-MM-DDTHH:MM:SSZ> required\n");
    return 2;
  }
  const std::int64_t stale_after = std::strtoll(
      flag_value(argc, argv, "--stale-after", "86400").c_str(), nullptr, 10);

  const rsf::Snapshot& head = run.value().back();
  std::printf("head sequence  : %llu\n",
              static_cast<unsigned long long>(head.sequence));
  std::printf("head published : %s\n",
              format_iso8601(head.published_at).c_str());

  SimSig registry;
  SimKeyPair key = SimSig::keygen("rsf-feed-" + name.value());
  registry.register_key(key);
  rsf::Feed::RunFault fault = rsf::Feed::RunFault::kNone;
  Status integrity = rsf::Feed::verify_run(run.value(), "",
                                           BytesView(key.key_id), registry,
                                           &fault);
  if (integrity.ok()) {
    std::printf("integrity      : OK (signatures + hash chain)\n");
  } else {
    std::printf("integrity      : FAILED — %s\n", integrity.error().c_str());
  }

  const std::int64_t staleness = now > head.published_at
                                     ? now - head.published_at
                                     : 0;
  std::printf("seconds stale  : %lld (%.1f h)\n",
              static_cast<long long>(staleness), staleness / 3600.0);

  // The classification a polling client serving this feed would report: a
  // broken feed means the client is refusing updates (degraded, and stale
  // once the last good snapshot ages past the threshold).
  rsf::ClientHealth health = rsf::ClientHealth::kHealthy;
  if (staleness >= stale_after) {
    health = rsf::ClientHealth::kStale;
  } else if (!integrity.ok()) {
    health = rsf::ClientHealth::kDegraded;
  }
  std::printf("health         : %s\n", rsf::to_string(health));
  return integrity.ok() && health != rsf::ClientHealth::kStale ? 0 : 1;
}

// Speaks the authenticated feed-fetch verb to an in-process anchord that
// re-serves the feed directory: load + restore the run into an rsf::Feed,
// stand up a daemon on a memory or socketpair conduit, issue one wire
// feed-fetch from the poller's pinned size, then verify everything the
// frame carried — tree-head signature, consistency proof against the
// locally rebuilt tree, inclusion proof for the served head — exactly as
// a downstream RsfClient would before adopting.
int cmd_feed_fetch(int argc, char** argv) {
  if (argc < 1) return usage();
  std::string dir = argv[0];
  auto name = feed_name_of(dir);
  if (!name) {
    std::fprintf(stderr, "error: %s\n", name.error().c_str());
    return 1;
  }
  auto run = load_feed(dir);
  if (!run) {
    std::fprintf(stderr, "error: %s\n", run.error().c_str());
    return 1;
  }
  if (run.value().empty()) {
    std::fprintf(stderr, "error: feed is empty\n");
    return 1;
  }
  const std::uint64_t from = std::strtoull(
      flag_value(argc, argv, "--from", "0").c_str(), nullptr, 10);

  SimSig sig_registry;
  rsf::Feed feed(name.value(), sig_registry);
  if (Status restored = feed.restore(std::move(run).take()); !restored.ok()) {
    std::fprintf(stderr, "error: %s\n", restored.error().c_str());
    return 1;
  }

  // Minimal daemon: an empty store satisfies the dispatcher's service
  // requirement; only the feed-fetch verb is exercised here.
  rootstore::RootStore empty_store;
  SimSig no_keys;
  metrics::Registry registry;
  chain::VerifyService service(empty_store, no_keys, {}, registry);
  anchord::VerbDispatcher::Backends backends;
  backends.service = &service;
  backends.store = &empty_store;
  backends.feed_source = &feed;
  backends.registry = &registry;
  anchord::AnchordServer server(backends, {}, registry);

  anchord::ConduitPair conduits;
  const std::string transport =
      flag_value(argc, argv, "--transport", "memory");
  if (transport == "unix") {
    auto pair = anchord::make_socketpair_conduit();
    if (!pair.ok()) {
      std::fprintf(stderr, "error: %s\n", pair.error().c_str());
      return 1;
    }
    conduits = std::move(pair).take();
  } else {
    conduits = anchord::make_memory_conduit();
  }
  std::thread serve([&] { server.serve(*conduits.second); });
  int code = 0;
  {
    anchord::AnchordClient client(*conduits.first);
    anchord::WireFeedTransport wire(client, name.value());
    rsf::FeedFetchQuery query;
    query.from_size = from;
    auto fetched = wire.feed_fetch(query);
    if (!fetched.ok()) {
      std::fprintf(stderr, "error: %s\n", fetched.error().c_str());
      code = 1;
    } else {
      const rsf::FeedFetch& ff = fetched.value();
      std::printf("feed            : %s\n", name.value().c_str());
      std::printf("tree size       : %llu\n",
                  static_cast<unsigned long long>(ff.sth.tree_size));
      std::printf("root hash       : %s\n",
                  to_hex(BytesView(ff.sth.root_hash.data(),
                                   ff.sth.root_hash.size()))
                      .c_str());
      std::printf("published       : %s\n",
                  format_iso8601(ff.sth.published_at).c_str());
      const bool sth_ok = sig_registry.verify(
          BytesView(feed.key_id()), BytesView(ff.sth.transcript()),
          BytesView(ff.sth.signature));
      std::printf("head signature  : %s\n", sth_ok ? "OK" : "FAILED");

      bool proofs_ok = sth_ok;
      if (from > 0) {
        // The poller's side of the exchange: its pinned root comes from
        // its own history; here the locally rebuilt tree stands in.
        ctlog::MerkleTree local;
        for (std::uint64_t seq = 1; seq <= from; ++seq) {
          const rsf::Snapshot* snap = feed.at(seq);
          if (snap == nullptr) break;
          local.append(BytesView(snap->transcript()));
        }
        const bool consistent =
            local.size() == from &&
            ctlog::verify_consistency(from, ff.sth.tree_size, local.root(),
                                      ff.sth.root_hash, ff.consistency);
        std::printf("consistency     : %s (%zu node(s), from size %llu)\n",
                    consistent ? "OK" : "FAILED", ff.consistency.size(),
                    static_cast<unsigned long long>(from));
        proofs_ok = proofs_ok && consistent;
      }
      if (!ff.snapshots.empty()) {
        const rsf::Snapshot& served_head = ff.snapshots.back();
        const bool included = ctlog::verify_inclusion(
            ctlog::leaf_hash(BytesView(served_head.transcript())),
            served_head.sequence - 1, ff.sth.tree_size, ff.inclusion,
            ff.sth.root_hash);
        std::printf("inclusion       : %s (head seq %llu, %zu node(s))\n",
                    included ? "OK" : "FAILED",
                    static_cast<unsigned long long>(served_head.sequence),
                    ff.inclusion.size());
        proofs_ok = proofs_ok && included;
        std::printf("snapshots       : %zu (seq %llu..%llu)\n",
                    ff.snapshots.size(),
                    static_cast<unsigned long long>(
                        ff.snapshots.front().sequence),
                    static_cast<unsigned long long>(served_head.sequence));
      } else {
        std::printf("snapshots       : 0 (poller is current)\n");
      }
      std::printf("wire bytes      : %zu (headers only: %zu)\n",
                  ff.wire_size(true), ff.wire_size(false));
      code = proofs_ok ? 0 : 1;
    }
  }
  conduits.first->close();
  serve.join();
  return code;
}

// Adapts a file-based feed directory (already loaded into memory) to the
// FeedTransport interface, so `anchorctl metrics` can run a *real*
// RsfClient poll — populating the same anchor_rsf_* series a deployed
// client would — instead of faking the counters.
class FileFeedTransport : public rsf::FeedTransport {
 public:
  FileFeedTransport(std::string name, std::vector<rsf::Snapshot> run)
      : name_(std::move(name)),
        key_id_(SimSig::keygen("rsf-feed-" + name_).key_id),
        run_(std::move(run)) {}

  const std::string& name() const override { return name_; }
  const Bytes& key_id() const override { return key_id_; }
  Result<std::uint64_t> head_sequence() override {
    if (run_.empty()) return std::uint64_t{0};
    return run_.back().sequence;
  }
  Result<std::vector<rsf::Snapshot>> fetch_since(std::uint64_t after) override {
    std::vector<rsf::Snapshot> out;
    for (const rsf::Snapshot& snap : run_) {
      if (snap.sequence > after) out.push_back(snap);
    }
    return out;
  }
  Result<std::string> fetch_delta(std::uint64_t) override {
    return err("file feed carries no deltas");  // full-snapshot mode only
  }

 private:
  std::string name_;
  Bytes key_id_;
  std::vector<rsf::Snapshot> run_;
};

void print_snapshot_info(const rootstore::snapshot::StoreView& view) {
  const rootstore::snapshot::StoreView::Info& info = view.info();
  std::printf("format version : %u\n", info.format_version);
  std::printf("source         : %s\n", info.source.c_str());
  std::printf("file size      : %llu bytes\n",
              static_cast<unsigned long long>(info.file_size));
  std::printf("epoch          : %llu\n",
              static_cast<unsigned long long>(info.epoch));
  std::printf("trusted        : %u\n", info.trusted_count);
  std::printf("distrusted     : %u\n", info.distrusted_count);
  std::printf("gccs           : %u\n", info.gcc_count);
  std::printf("revocation     : %u filter(s)\n", info.revocation_count);
  std::printf("digest         : %s\n", info.digest_hex.c_str());
}

// Text store -> flat snapshot image on disk, then re-open the written file
// through the real mmap reader so "wrote OK" means "a daemon can serve
// this" — a write that cannot be read back fails here, not at warm start.
int cmd_snapshot_write(int argc, char** argv) {
  if (argc < 2) return usage();
  auto store = load_store(argv[0]);
  if (!store) {
    std::fprintf(stderr, "error: %s\n", store.error().c_str());
    return 1;
  }
  if (Status s = rootstore::snapshot::write_snapshot_file(store.value(),
                                                          argv[1]);
      !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.error().c_str());
    return 1;
  }
  auto opened = rootstore::snapshot::StoreView::open(argv[1]);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: written image failed to re-open: %s\n",
                 opened.error.to_string().c_str());
    return 1;
  }
  std::printf("wrote          : %s\n", argv[1]);
  print_snapshot_info(*opened.view);
  return 0;
}

int cmd_snapshot_info(int argc, char** argv) {
  if (argc < 1) return usage();
  auto opened = rootstore::snapshot::StoreView::open(argv[0]);
  if (!opened.ok()) {
    std::printf("REJECTED: %s\n", opened.error.to_string().c_str());
    return 1;
  }
  print_snapshot_info(*opened.view);
  return 0;
}

void print_crlite_info(const revocation::CompressedRevocationSet& filter) {
  std::printf("levels         : %zu\n", filter.level_count());
  std::printf("enrolled CAs   : %zu\n", filter.enrolled_count());
  std::printf("filter bytes   : %zu\n", filter.filter_bytes());
  std::printf("total bytes    : %zu\n", filter.size_bytes());
}

// Builds a filter cascade from a plain-text spec: one directive per line,
// `enroll <spki-hex>`, `revoked <spki-hex> <serial-hex>`, or
// `valid <spki-hex> <serial-hex>`; '#' starts a comment.
int cmd_crlite_build(int argc, char** argv) {
  if (argc < 2) return usage();
  auto text = read_file(argv[0]);
  if (!text) {
    std::fprintf(stderr, "error: %s\n", text.error().c_str());
    return 1;
  }
  revocation::CompressedRevocationSet::Builder builder;
  std::size_t line_no = 0;
  for (const std::string& raw : split(text.value(), '\n')) {
    ++line_no;
    const std::string line = std::string(trim(raw));
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> parts = split(line, ' ');
    const auto bad = [&](const char* why) {
      std::fprintf(stderr, "error: %s:%zu: %s\n", argv[0], line_no, why);
      return 1;
    };
    Bytes spki;
    if (parts.size() >= 2 && !from_hex(parts[1], spki)) {
      return bad("malformed spki hex");
    }
    if (parts[0] == "enroll" && parts.size() == 2) {
      builder.enroll(BytesView(spki));
      continue;
    }
    Bytes serial;
    if (parts.size() == 3 && !from_hex(parts[2], serial)) {
      return bad("malformed serial hex");
    }
    if (parts[0] == "revoked" && parts.size() == 3) {
      builder.add_revoked(BytesView(spki), BytesView(serial));
    } else if (parts[0] == "valid" && parts.size() == 3) {
      builder.add_valid(BytesView(spki), BytesView(serial));
    } else {
      return bad("expected enroll/revoked/valid directive");
    }
  }
  auto built = builder.build();
  if (!built) {
    std::fprintf(stderr, "error: %s\n", built.error().c_str());
    return 1;
  }
  std::ofstream out(argv[1], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[1]);
    return 1;
  }
  out << built.value().serialize();
  out.close();
  std::printf("wrote          : %s\n", argv[1]);
  print_crlite_info(built.value());
  return 0;
}

int cmd_crlite_info(int argc, char** argv) {
  if (argc < 1) return usage();
  auto text = read_file(argv[0]);
  if (!text) {
    std::fprintf(stderr, "error: %s\n", text.error().c_str());
    return 1;
  }
  auto filter = revocation::CompressedRevocationSet::deserialize(text.value());
  if (!filter) {
    std::printf("REJECTED: %s\n", filter.error().c_str());
    return 1;
  }
  print_crlite_info(filter.value());
  return 0;
}

// Builds the wire request for `verb` against a PEM chain (leaf first).
// check_signatures stays off: PEMs carry no SimSig secrets (DESIGN.md §5).
anchord::Request wire_request(anchord::Verb verb,
                              const std::vector<x509::CertPtr>& chain,
                              const chain::VerifyOptions& options) {
  anchord::Request request;
  request.verb = verb;
  request.usage = chain::usage_name(options.usage);
  request.time = options.time;
  request.hostname = options.hostname;
  request.max_depth = static_cast<std::uint32_t>(options.max_depth);
  request.check_signatures = false;
  if (!chain.empty()) {
    request.leaf_der = chain.front()->der();
    for (std::size_t i = 1; i < chain.size(); ++i) {
      request.intermediates_der.push_back(chain[i]->der());
    }
  }
  return request;
}

// anchorctl as a wire client: one request/response round trip through a
// real AnchordServer session — framed codec, correlation ids, the works —
// over an in-memory conduit or an AF_UNIX socketpair. The same four verbs
// a deployed daemon serves; exit code is the response's ErrorKind.
int cmd_daemon(int argc, char** argv) {
  // --snapshot as the first argument switches the store source from the
  // text grammar to an mmap'd snapshot image: the daemon's warm start
  // never parses PEM/text or recompiles a GCC.
  const bool from_snapshot =
      argc >= 1 && std::string_view(argv[0]) == "--snapshot";
  const int base = from_snapshot ? 1 : 0;
  if (argc < base + 2) return usage();

  rootstore::RootStore heap_store;  // snapshot mode leaves this empty
  std::shared_ptr<const rootstore::snapshot::StoreView> view;
  if (from_snapshot) {
    auto opened = rootstore::snapshot::StoreView::open(argv[base]);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", argv[base],
                   opened.error.to_string().c_str());
      return 1;
    }
    view = opened.view;
  } else {
    auto store = load_store(argv[base]);
    if (!store) {
      std::fprintf(stderr, "error: %s\n", store.error().c_str());
      return 1;
    }
    heap_store = std::move(store).take();
  }
  const std::string verb_name = argv[base + 1];
  anchord::Verb verb;
  if (verb_name == "verify") {
    verb = anchord::Verb::kVerify;
  } else if (verb_name == "evaluate-gccs") {
    verb = anchord::Verb::kEvaluateGccs;
  } else if (verb_name == "metrics") {
    verb = anchord::Verb::kMetrics;
  } else if (verb_name == "feed-status") {
    verb = anchord::Verb::kFeedStatus;
  } else {
    std::fprintf(stderr, "error: unknown daemon verb '%s'\n",
                 verb_name.c_str());
    return 2;
  }

  chain::VerifyOptions options;
  options.hostname = flag_value(argc, argv, "--host", "");
  options.usage = flag_value(argc, argv, "--usage", "TLS") == "S/MIME"
                      ? chain::Usage::kSmime
                      : chain::Usage::kTls;
  std::vector<x509::CertPtr> certs;
  const bool needs_chain =
      verb == anchord::Verb::kVerify || verb == anchord::Verb::kEvaluateGccs;
  if (needs_chain) {
    if (argc < base + 3) return usage();
    auto chain_file = read_chain(argv[base + 2]);
    if (!chain_file) {
      std::fprintf(stderr, "error: %s\n", chain_file.error().c_str());
      return 1;
    }
    certs = std::move(chain_file).take();
    std::string time_text = flag_value(argc, argv, "--time", "");
    if (time_text.empty() || !parse_iso8601(time_text, options.time)) {
      std::fprintf(stderr, "error: --time <YYYY-MM-DDTHH:MM:SSZ> required\n");
      return 2;
    }
  }

  SimSig no_keys;
  metrics::Registry registry;
  chain::VerifyService service(heap_store, no_keys, {}, registry);
  const rootstore::StoreReader* reader = &heap_store;
  if (view != nullptr) {
    service.adopt_view(view);  // O(1): swap onto the mapping, no deep copy
    reader = view.get();
  }
  std::vector<std::shared_ptr<const revocation::Provider>> sources;
  if (!load_revocation_flags(argc, argv, sources)) return 1;
  for (const auto& source : sources) service.add_revocation_source(source);
  anchord::VerbDispatcher::Backends backends;
  backends.service = &service;
  backends.store = reader;
  backends.registry = &registry;
  anchord::AnchordServer server(backends, {}, registry);

  anchord::ConduitPair conduits;
  const std::string transport =
      flag_value(argc, argv, "--transport", "memory");
  if (transport == "unix") {
    auto pair = anchord::make_socketpair_conduit();
    if (!pair.ok()) {
      std::fprintf(stderr, "error: %s\n", pair.error().c_str());
      return 1;
    }
    conduits = std::move(pair).take();
  } else {
    conduits = anchord::make_memory_conduit();
  }
  std::thread serve([&] { server.serve(*conduits.second); });
  int code;
  {
    anchord::AnchordClient client(*conduits.first);
    auto response = client.call(wire_request(verb, certs, options));
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n", response.error().c_str());
      code = exit_code(chain::ErrorKind::kInternal);
    } else {
      const anchord::Response& r = response.value();
      if (verb == anchord::Verb::kMetrics ||
          verb == anchord::Verb::kFeedStatus) {
        std::printf("%s%s", r.detail.c_str(),
                    r.detail.empty() || r.detail.back() == '\n' ? "" : "\n");
      } else {
        std::printf("verdict : %s\n", r.ok ? "VALID" : "INVALID");
        std::printf("kind    : %s\n", chain::to_string(r.kind));
        if (!r.detail.empty()) std::printf("detail  : %s\n", r.detail.c_str());
        std::printf("chain   : %u certificate(s), %llu path(s) explored, "
                    "epoch %llu\n",
                    r.stats.chain_len,
                    static_cast<unsigned long long>(r.stats.paths_explored),
                    static_cast<unsigned long long>(r.stats.epoch));
      }
      code = exit_code(r.kind);
    }
  }
  conduits.first->close();
  serve.join();
  return code;
}

// Operator-facing scrape: drives real work — repeated verifications, and
// optionally one RSF poll against a feed directory — through the shared
// registry, then prints the exposition. The same counters the TrustDaemon
// `metrics` verb serves; EXPERIMENTS tables snapshot these series.
int cmd_metrics(int argc, char** argv) {
  if (argc < 2) return usage();
  auto store = load_store(argv[0]);
  auto chain = read_chain(argv[1]);
  if (!store || !chain) {
    std::fprintf(stderr, "error: %s\n",
                 (!store ? store.error() : chain.error()).c_str());
    return 1;
  }
  chain::VerifyOptions options;
  options.hostname = flag_value(argc, argv, "--host", "");
  options.usage = flag_value(argc, argv, "--usage", "TLS") == "S/MIME"
                      ? chain::Usage::kSmime
                      : chain::Usage::kTls;
  std::string time_text = flag_value(argc, argv, "--time", "");
  if (time_text.empty() || !parse_iso8601(time_text, options.time)) {
    std::fprintf(stderr, "error: --time <YYYY-MM-DDTHH:MM:SSZ> required\n");
    return 2;
  }
  options.check_signatures = false;  // PEMs carry no SimSig secrets
  const unsigned long repeat = std::strtoul(
      flag_value(argc, argv, "--repeat", "16").c_str(), nullptr, 10);
  chain::ServiceConfig config;
  config.threads = std::strtoul(
      flag_value(argc, argv, "--threads", "4").c_str(), nullptr, 10);

  auto pool = std::make_shared<chain::CertificatePool>();
  for (std::size_t i = 1; i < chain.value().size(); ++i) {
    pool->add(chain.value()[i]);
  }
  SimSig no_keys;
  chain::VerifyService service(store.value(), no_keys, config);
  std::vector<std::future<chain::VerifyResult>> pending;
  pending.reserve(repeat);
  for (unsigned long i = 0; i < repeat; ++i) {
    pending.push_back(service.submit(chain.value()[0], pool, options));
  }
  for (auto& future : pending) (void)future.get();

  // Same workload once more through an in-process anchord server, so the
  // exposition includes the daemon's own serving counters — queue depth,
  // in-flight gauge, per-verb requests, overloads/timeouts (zero here, but
  // present: an operator dashboard needs the series to exist before the
  // first incident).
  {
    anchord::VerbDispatcher::Backends backends;
    backends.service = &service;
    backends.store = &store.value();
    anchord::AnchordServer server(backends, {});
    anchord::ConduitPair conduits = anchord::make_memory_conduit();
    std::thread serve([&] { server.serve(*conduits.second); });
    {
      anchord::AnchordClient client(*conduits.first);
      anchord::Request request;
      request.usage = chain::usage_name(options.usage);
      request.time = options.time;
      request.hostname = options.hostname;
      request.check_signatures = false;
      request.leaf_der = chain.value()[0]->der();
      for (std::size_t i = 1; i < chain.value().size(); ++i) {
        request.intermediates_der.push_back(chain.value()[i]->der());
      }
      std::vector<std::uint64_t> ids;
      ids.reserve(repeat);
      for (unsigned long i = 0; i < repeat; ++i) {
        auto id = client.send(request);
        if (id.ok()) ids.push_back(id.value());
      }
      for (std::uint64_t id : ids) (void)client.receive(id);
    }
    conduits.first->close();
    serve.join();
  }

  std::string feed_dir = flag_value(argc, argv, "--feed", "");
  if (!feed_dir.empty()) {
    std::string now_text = flag_value(argc, argv, "--now", "");
    std::int64_t now = 0;
    if (now_text.empty() || !parse_iso8601(now_text, now)) {
      std::fprintf(stderr, "error: --feed requires --now <iso8601>\n");
      return 2;
    }
    auto name = feed_name_of(feed_dir);
    auto run = load_feed(feed_dir);
    if (!name || !run) {
      std::fprintf(stderr, "error: %s\n",
                   (!name ? name.error() : run.error()).c_str());
      return 1;
    }
    FileFeedTransport transport(name.value(), std::move(run).take());
    rsf::RsfClient client(transport, /*poll_interval=*/3600);
    client.poll_now(now);
  }

  (void)service.stats();  // refreshes the queue-depth gauge
  const std::string exposition = metrics::Registry::global().expose();
  std::fwrite(exposition.data(), 1, exposition.size(), stdout);
  return 0;
}

// Chrome Root Store textproto -> native RootStore, through the same
// fail-closed parser + GCC compiler the library uses (rootstore/chromeproto
// + rootstore/constraint_compile). Anchors whose certificate appears in
// --roots (matched by SHA-256) become trusted roots; every anchor's GCCs
// attach by hash either way, so constraints are never dropped just because
// the certificate has not arrived yet.
int cmd_compile_store(int argc, char** argv) {
  if (argc < 1) return usage();
  auto text = read_file(argv[0]);
  if (!text) {
    std::fprintf(stderr, "error: %s\n", text.error().c_str());
    return 1;
  }

  rootstore::chromeproto::ParseResult parsed =
      rootstore::chromeproto::parse_store(text.value());
  if (!parsed.ok()) {
    std::fprintf(stderr, "REJECTED: %s\n", parsed.error.to_string().c_str());
    return 1;
  }
  const rootstore::chromeproto::StoreFile& file = *parsed.store;
  std::printf("parsed         : %zu trust anchor(s), %zu additional cert(s)"
              ", version_major %lld\n",
              file.trust_anchors.size(), file.additional_certs.size(),
              static_cast<long long>(file.version_major.value_or(0)));

  // Optional certificate material, matched to anchors by fingerprint.
  std::unordered_map<std::string, x509::CertPtr> by_hash;
  std::string roots_path = flag_value(argc, argv, "--roots", "");
  if (!roots_path.empty()) {
    auto roots = read_chain(roots_path);
    if (!roots) {
      std::fprintf(stderr, "error: %s\n", roots.error().c_str());
      return 1;
    }
    for (const x509::CertPtr& cert : roots.value()) {
      by_hash.emplace(cert->fingerprint_hex(), cert);
    }
  }

  rootstore::CompileOptions compile_options;
  compile_options.name_prefix = flag_value(argc, argv, "--prefix", "crs");
  rootstore::RootStore store;
  auto resolver = [&by_hash](const std::string& sha256_hex) -> x509::CertPtr {
    auto it = by_hash.find(sha256_hex);
    return it == by_hash.end() ? nullptr : it->second;
  };
  auto compiled =
      rootstore::compile_store(file, resolver, store, compile_options);
  if (!compiled) {
    std::fprintf(stderr, "compile error: %s\n", compiled.error().c_str());
    return 1;
  }
  const rootstore::StoreCompileResult& result = compiled.value();
  std::printf("compiled       : %zu block(s) -> %zu gcc(s), %zu clause(s)\n",
              result.stats.blocks, result.stats.gccs, result.stats.clauses);
  std::printf("certificates   : %zu resolved, %zu constraint-only\n",
              result.anchors_with_cert, result.anchors_without_cert);
  for (std::size_t k = 0; k < rootstore::kConstraintKindCount; ++k) {
    if (result.stats.kind_counts[k] == 0) continue;
    std::printf("  %-28s %zu\n",
                rootstore::to_string(static_cast<rootstore::ConstraintKind>(k)),
                result.stats.kind_counts[k]);
  }
  for (const std::string& root : store.gccs().roots_sorted()) {
    for (const core::Gcc& gcc : store.gccs().for_root(root)) {
      std::printf("  gcc %-44s -> root %s\n", gcc.name().c_str(),
                  root.substr(0, 16).c_str());
    }
  }

  std::string out_path = flag_value(argc, argv, "--out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << store.serialize();
    std::printf("wrote          : %s (%zu trusted, %zu gccs)\n",
                out_path.c_str(), store.trusted_count(), store.gccs().total());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  int rest_argc = argc - 2;
  char** rest_argv = argv + 2;
  if (command == "inspect") return cmd_inspect(rest_argc, rest_argv);
  if (command == "chain-facts") return cmd_chain_facts(rest_argc, rest_argv);
  if (command == "gcc-check") return cmd_gcc_check(rest_argc, rest_argv);
  if (command == "gcc-eval") return cmd_gcc_eval(rest_argc, rest_argv);
  if (command == "datalog") return cmd_datalog(rest_argc, rest_argv);
  if (command == "store-dump") return cmd_store_dump(rest_argc, rest_argv);
  if (command == "store-hash") return cmd_store_hash(rest_argc, rest_argv);
  if (command == "store-diff") return cmd_store_diff(rest_argc, rest_argv);
  if (command == "verify") return cmd_verify(rest_argc, rest_argv);
  if (command == "serve-stats") return cmd_serve_stats(rest_argc, rest_argv);
  if (command == "feed-publish") return cmd_feed_publish(rest_argc, rest_argv);
  if (command == "feed-verify") return cmd_feed_verify(rest_argc, rest_argv);
  if (command == "feed-apply") return cmd_feed_apply(rest_argc, rest_argv);
  if (command == "feed-status") return cmd_feed_status(rest_argc, rest_argv);
  if (command == "feed-fetch") return cmd_feed_fetch(rest_argc, rest_argv);
  if (command == "metrics") return cmd_metrics(rest_argc, rest_argv);
  if (command == "daemon") return cmd_daemon(rest_argc, rest_argv);
  if (command == "snapshot-write") {
    return cmd_snapshot_write(rest_argc, rest_argv);
  }
  if (command == "snapshot-info") return cmd_snapshot_info(rest_argc, rest_argv);
  if (command == "crlite-build") return cmd_crlite_build(rest_argc, rest_argv);
  if (command == "crlite-info") return cmd_crlite_info(rest_argc, rest_argv);
  if (command == "compile-store") {
    return cmd_compile_store(rest_argc, rest_argv);
  }
  return usage();
}
