// Replays the six historical root-CA incidents of §2.2 (TurkTrust, ANSSI,
// India CCA, MCS/CNNIC, WoSign/StartCom, Symantec) as executable
// scenarios: each incident's partial distrust is a GCC, and every labelled
// chain is validated against it.
//
// Build & run:  ./build/examples/incident_replay
#include <cstdio>

#include "chain/verifier.hpp"
#include "incidents/incidents.hpp"

using namespace anchor;

int main() {
  int mismatches = 0;
  for (incidents::Incident& incident : incidents::all_incidents()) {
    std::printf("=== %s ===\n%s\n\n", incident.name.c_str(),
                incident.summary.c_str());

    chain::ChainVerifier verifier(incident.store, incident.signatures);
    std::printf("  %-52s %-10s %-10s\n", "chain", "expected", "verdict");
    for (const incidents::IncidentCase& test_case : incident.cases) {
      chain::VerifyResult result =
          verifier.verify(test_case.leaf, incident.pool, test_case.options);
      bool match = result.ok == test_case.expect_valid;
      if (!match) ++mismatches;
      std::printf("  %-52s %-10s %-10s %s\n", test_case.label.c_str(),
                  test_case.expect_valid ? "accept" : "reject",
                  result.ok ? "accept" : "reject", match ? "" : "  <-- MISMATCH");
    }

    // Show the constraint text for the first affected root.
    const auto& gccs = incident.store.gccs().for_root(incident.affected_roots[0]);
    if (!gccs.empty()) {
      std::printf("\n  constraint '%s' (%s)\n", gccs[0].name().c_str(),
                  gccs[0].justification().c_str());
    }
    std::printf("\n");
  }
  std::printf("replay complete: %d mismatches\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}
