// End-to-end over the wire: a TLS-shaped handshake where the user-agent's
// root store carries a GCC, replaying the paper's opening scenario — the
// same server, the same certificate chain, different trust outcomes as the
// root store evolves via a feed.
//
//   act 1: handshake succeeds (root trusted, no constraints)
//   act 2: the primary ships a GCC over the RSF; the same server is now
//          rejected mid-handshake (partial distrust, no root removal)
//   act 3: an old legacy leaf still works — no collateral damage
//
// Build & run:  ./build/examples/tls_handshake
#include <cstdio>

#include "net/handshake.hpp"
#include "rsf/client.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

using namespace anchor;

int main() {
  std::int64_t now = unix_date(2024, 6, 1);
  SimSig registry;

  // --- a CA and a server ----------------------------------------------------
  SimKeyPair root_key = SimSig::keygen("Wire Root CA");
  x509::CertPtr root =
      x509::CertificateBuilder()
          .serial(1)
          .subject(x509::DistinguishedName::make("Wire Root CA", "Wire"))
          .issuer(x509::DistinguishedName::make("Wire Root CA", "Wire"))
          .validity(unix_date(2015, 1, 1), unix_date(2040, 1, 1))
          .public_key(root_key.key_id)
          .ca(std::nullopt)
          .sign(root_key)
          .take();
  SimKeyPair int_key = SimSig::keygen("Wire Issuing CA");
  x509::CertPtr intermediate =
      x509::CertificateBuilder()
          .serial(2)
          .subject(x509::DistinguishedName::make("Wire Issuing CA", "Wire"))
          .issuer(root->subject())
          .validity(unix_date(2015, 1, 1), unix_date(2035, 1, 1))
          .public_key(int_key.key_id)
          .ca(0)
          .sign(root_key)
          .take();
  auto make_server = [&](const std::string& host, int year) {
    SimKeyPair key = SimSig::keygen("wire-leaf-" + host);
    registry.register_key(key);
    x509::CertPtr leaf =
        x509::CertificateBuilder()
            .serial(3)
            .subject(x509::DistinguishedName::make(host))
            .issuer(intermediate->subject())
            .validity(unix_date(year, 1, 1), unix_date(year + 3, 1, 1))
            .public_key(key.key_id)
            .dns_names({host})
            .extended_key_usage({x509::oids::kp_server_auth()})
            .sign(int_key)
            .take();
    return net::TlsLikeServer(net::ServerIdentity{{leaf, intermediate}, key});
  };
  registry.register_key(root_key);
  registry.register_key(int_key);

  net::TlsLikeServer new_server = make_server("api.fresh.example", 2024);
  net::TlsLikeServer old_server = make_server("legacy.example", 2022);

  // --- the primary store, distributed over a feed ----------------------------
  rootstore::RootStore primary;
  (void)primary.add_trusted(root);
  rsf::Feed feed("wire-primary", registry);
  feed.publish(primary, now - 10 * 86400, "baseline");

  rsf::RsfClient user_agent(feed, 3600);
  user_agent.poll_now(now - 10 * 86400 + 3600);

  auto attempt = [&](const net::TlsLikeServer& server, const std::string& host,
                     const char* label) {
    chain::ChainVerifier verifier(user_agent.store(), registry);
    net::TlsLikeClient client(verifier, registry);
    chain::VerifyOptions options;
    options.time = now;
    options.hostname = host;
    net::HandshakeResult result = net::handshake(client, server, options);
    std::printf("%-44s %s\n", label,
                result.ok ? "CONNECTED" : ("REFUSED: " + result.error).c_str());
    return result.ok;
  };

  std::printf("--- act 1: unconstrained root ---\n");
  attempt(new_server, "api.fresh.example", "handshake with 2024-issued server");
  attempt(old_server, "legacy.example", "handshake with 2022-issued server");

  std::printf("\n--- act 2: the primary ships a GCC (issuance cutoff 2023) ---\n");
  primary.attach_gcc(
      core::Gcc::for_certificate(
          "wire-cutoff", *root,
          "cutoff(" + std::to_string(unix_date(2023, 1, 1)) + ").\n" +
              "valid(Chain, _) :- leaf(Chain, L), notBefore(L, NB), "
              "cutoff(T), NB < T.",
          "incident response: distrust post-2023 issuance")
          .take());
  feed.publish(primary, now, "emergency GCC");
  user_agent.poll_now(now + 3600);
  std::printf("user agent synced: %zu GCC(s) in store\n",
              user_agent.store().gccs().total());

  bool fresh_refused =
      !attempt(new_server, "api.fresh.example", "handshake with 2024-issued server");
  bool legacy_ok =
      attempt(old_server, "legacy.example", "handshake with 2022-issued server");

  std::printf("\npartial distrust over the wire: %s\n",
              fresh_refused && legacy_ok
                  ? "post-cutoff server refused, legacy server unharmed"
                  : "UNEXPECTED");
  return fresh_refused && legacy_ok ? 0 : 1;
}
