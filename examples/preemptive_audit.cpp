// Pre-emptive constraints (paper §5): audit a CT-style corpus, compute
// each root's scope of issuance, synthesize a GCC that freezes the root to
// that scope, and show a post-compromise escape being blocked while
// historical issuance keeps validating. Also flags bimodal CAs — the
// paper's candidates for splitting into two tighter roots.
//
// Build & run:  ./build/examples/preemptive_audit
#include <cstdio>

#include "core/executor.hpp"
#include "corpus/corpus.hpp"
#include "preemptive/synthesis.hpp"

using namespace anchor;

int main() {
  corpus::CorpusConfig config;
  config.num_roots = 25;
  config.num_intermediates = 80;
  config.roots_with_path_len = 2;
  config.intermediates_with_path_len = 70;
  config.intermediates_with_name_constraints = 4;
  config.roots_with_constrained_chain = 2;
  config.leaves_per_intermediate_mean = 25.0;
  corpus::Corpus corpus = corpus::Corpus::generate(config);

  std::printf("audited corpus: %zu roots, %zu intermediates, %zu leaves\n\n",
              corpus.roots().size(), corpus.intermediates().size(),
              corpus.leaves().size());

  auto scopes = preemptive::analyze_roots(corpus);

  // Pick the busiest root for a detailed report.
  std::size_t busiest = 0;
  for (std::size_t r = 0; r < scopes.size(); ++r) {
    if (scopes[r].certificates_observed >
        scopes[busiest].certificates_observed) {
      busiest = r;
    }
  }
  const auto& scope = scopes[busiest];
  std::printf("--- scope of issuance: %s ---\n",
              corpus.roots()[busiest].cert->subject().common_name().c_str());
  std::printf("certificates observed : %zu\n", scope.certificates_observed);
  std::printf("distinct TLDs         : %zu (", scope.tlds.size());
  std::size_t shown = 0;
  for (const auto& tld : scope.tlds) {
    std::printf("%s%s", shown ? ", " : "", tld.c_str());
    if (++shown >= 8) {
      std::printf(", ...");
      break;
    }
  }
  std::printf(")\n");
  std::printf("max leaf lifetime     : %lld days\n",
              static_cast<long long>(scope.max_lifetime_seconds / 86400));
  std::printf("EKUs observed         : %zu, key usages: %zu\n\n",
              scope.extended_key_usages.size(), scope.key_usages.size());

  // Synthesize the pre-emptive GCC.
  core::Gcc gcc = preemptive::synthesize("preemptive-scope",
                                         *corpus.roots()[busiest].cert, scope)
                      .take();
  std::printf("--- synthesized GCC (%zu clauses) ---\n%s\n",
              gcc.program().clauses.size(), gcc.source().c_str());

  // Historical issuance keeps validating.
  core::GccExecutor executor;
  std::size_t accepted = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < corpus.leaves().size(); ++i) {
    const auto& record = corpus.leaves()[i];
    const auto& intermediate =
        corpus.intermediates()[static_cast<std::size_t>(record.issuer_intermediate)];
    if (static_cast<std::size_t>(intermediate.parent_root) != busiest) continue;
    ++total;
    if (executor.evaluate_one(corpus.chain_for_leaf(i),
                              record.smime ? "S/MIME" : "TLS", gcc)) {
      ++accepted;
    }
  }
  std::printf("historical issuance under the constraint : %zu/%zu accepted\n",
              accepted, total);

  // A compromise tries to escape the scope.
  std::size_t mule = 0;
  for (std::size_t i = 0; i < corpus.intermediates().size(); ++i) {
    if (static_cast<std::size_t>(corpus.intermediates()[i].parent_root) ==
        busiest) {
      mule = i;
      break;
    }
  }
  x509::CertPtr fraud = corpus.misissue(mule, "login.victim-bank.example",
                                        corpus.config().validation_time());
  core::Chain fraud_chain{fraud, corpus.intermediates()[mule].cert,
                          corpus.roots()[busiest].cert};
  bool fraud_passes = executor.evaluate_one(fraud_chain, "TLS", gcc);
  std::printf("post-compromise out-of-scope mis-issuance : %s\n\n",
              fraud_passes ? "ACCEPTED (!)" : "REJECTED by the pre-emptive GCC");

  // Bimodal candidates across the whole store.
  std::printf("--- bimodal scopes (split candidates, paper §5.2) ---\n");
  std::size_t bimodal = 0;
  for (std::size_t r = 0; r < scopes.size(); ++r) {
    auto split = preemptive::detect_bimodal(scopes[r]);
    if (!split) continue;
    ++bimodal;
    std::printf("%-28s heavy={%zu TLDs} light={%zu TLDs} separation=%.1fx\n",
                corpus.roots()[r].cert->subject().common_name().c_str(),
                split->heavy.size(), split->light.size(), split->separation);
  }
  if (bimodal == 0) std::printf("(none in this corpus)\n");
  return fraud_passes ? 1 : 0;
}
