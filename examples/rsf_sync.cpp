// Root-Store Feeds end to end (paper §4): a primary operator publishes
// signed, hash-chained snapshots; a derivative polls hourly, keeps local
// augmentations via merging, and the merge flags the dangerous case — a
// locally re-added root the primary explicitly distrusts.
//
// Build & run:  ./build/examples/rsf_sync
#include <cstdio>

#include "rsf/client.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"

using namespace anchor;

namespace {
x509::CertPtr make_root(const std::string& name) {
  SimKeyPair key = SimSig::keygen(name);
  return x509::CertificateBuilder()
      .serial(1)
      .subject(x509::DistinguishedName::make(name, "Example"))
      .issuer(x509::DistinguishedName::make(name, "Example"))
      .validity(unix_date(2015, 1, 1), unix_date(2040, 1, 1))
      .public_key(key.key_id)
      .ca(std::nullopt)
      .sign(key)
      .take();
}
}  // namespace

int main() {
  std::int64_t t0 = unix_date(2024, 1, 1);

  // --- Primary side --------------------------------------------------------
  rootstore::RootStore primary;
  x509::CertPtr alpha = make_root("Alpha Root CA");
  x509::CertPtr beta = make_root("Beta Root CA");
  x509::CertPtr gamma = make_root("Gamma Root CA");
  (void)primary.add_trusted(alpha);
  (void)primary.add_trusted(beta);
  (void)primary.add_trusted(gamma);

  SimSig registry;
  rsf::Feed feed("primary-demo", registry);
  feed.publish(primary, t0, "initial store: Alpha, Beta, Gamma");

  // --- Derivative side -------------------------------------------------------
  // Local augmentation: an imported corporate root, plus (unwisely) a root
  // the primary will later distrust.
  x509::CertPtr corp = make_root("LocalCorp Internal Root");
  rootstore::RootStore local;
  (void)local.add_trusted(corp);
  (void)local.add_trusted(beta);  // harmless duplicate today...

  rsf::RsfClient client(feed, 3600);
  client.set_local_store(local);
  client.run_until(t0 + 3600);
  std::printf("after first sync : %zu trusted (3 primary + 1 imported), "
              "%llu conflicts\n",
              client.store().trusted_count(),
              static_cast<unsigned long long>(client.stats().merge_conflicts));

  // --- An incident ------------------------------------------------------------
  primary.distrust(beta->fingerprint_hex(), "Beta Root CA key compromise");
  feed.publish(primary, t0 + 30 * 86400, "emergency: distrust Beta");

  client.run_until(t0 + 30 * 86400 + 3600);
  std::printf("after emergency  : %zu trusted, Beta state = %s\n",
              client.store().trusted_count(),
              client.store().state_of(beta->fingerprint_hex()) ==
                      rootstore::TrustState::kDistrusted
                  ? "DISTRUSTED (negative inclusion)"
                  : "trusted?!");
  std::printf("merge conflicts  : %llu (the local re-add of Beta was flagged "
              "and overridden)\n",
              static_cast<unsigned long long>(client.stats().merge_conflicts));

  // --- Tampering is detected ---------------------------------------------------
  primary.distrust(gamma->fingerprint_hex(), "not really -- attacker edit");
  feed.publish(primary, t0 + 31 * 86400, "third release");
  // An attacker rewrites the snapshot in flight.
  feed.mutable_at(3)->payload += "trusted " + std::string(64, '0') + "\n";
  std::size_t applied = client.poll_now(t0 + 31 * 86400 + 3600);
  std::printf("tampered snapshot: applied=%zu, verify failures=%llu "
              "(client fails closed, keeps last good store)\n",
              applied,
              static_cast<unsigned long long>(client.stats().verify_failures));

  std::printf("\nfeed head=%llu, client at seq=%llu\n",
              static_cast<unsigned long long>(feed.head_sequence()),
              static_cast<unsigned long long>(client.last_applied_sequence()));
  return 0;
}
