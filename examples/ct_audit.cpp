// Certificate Transparency end to end (paper §5.2's methodology): submit a
// corpus of issuance to a log, run a verifying monitor over it, derive
// per-issuer scopes of issuance, synthesize a pre-emptive GCC from the
// monitored data, and catch a log that tries to rewrite history.
//
// Build & run:  ./build/examples/ct_audit
#include <cstdio>

#include "corpus/corpus.hpp"
#include "ctlog/log.hpp"
#include "preemptive/synthesis.hpp"

using namespace anchor;

int main() {
  corpus::CorpusConfig config;
  config.num_roots = 15;
  config.num_intermediates = 40;
  config.roots_with_path_len = 1;
  config.intermediates_with_path_len = 30;
  config.intermediates_with_name_constraints = 3;
  config.roots_with_constrained_chain = 2;
  config.leaves_per_intermediate_mean = 15.0;
  corpus::Corpus corpus = corpus::Corpus::generate(config);

  // --- submit issuance to the log -----------------------------------------
  SimSig registry;
  ctlog::CtLog log("argon-sim", registry);
  for (const auto& record : corpus.leaves()) {
    log.submit(record.cert, 0);
  }
  ctlog::SignedTreeHead head = log.sth();
  std::printf("log '%s': %llu entries, STH root %s...\n", "argon-sim",
              static_cast<unsigned long long>(head.tree_size),
              to_hex(BytesView(head.root_hash.data(), 8)).c_str());
  std::printf("STH signature: %s\n\n",
              ctlog::CtLog::verify_sth(head, BytesView(log.key_id()), registry)
                  ? "verified"
                  : "INVALID");

  // --- monitor: verify-and-analyze ------------------------------------------
  ctlog::LogMonitor monitor(log, registry);
  auto consumed = monitor.poll();
  if (!consumed.ok()) {
    std::fprintf(stderr, "monitor error: %s\n", consumed.error().c_str());
    return 1;
  }
  std::printf("monitor consumed %llu entries (inclusion-verified), tracking "
              "%zu issuers\n\n",
              static_cast<unsigned long long>(consumed.value()),
              monitor.scopes().size());

  // Top issuers by volume.
  std::printf("%-42s %8s %6s %10s\n", "issuer", "certs", "TLDs",
              "max life");
  int shown = 0;
  for (const auto& [issuer, scope] : monitor.scopes()) {
    if (scope.certificates_observed < 15) continue;
    std::printf("%-42s %8zu %6zu %8lldd\n", issuer.c_str(),
                scope.certificates_observed, scope.tlds.size(),
                static_cast<long long>(scope.max_lifetime_seconds / 86400));
    if (++shown >= 8) break;
  }

  // --- synthesize from monitored data ----------------------------------------
  const auto& [issuer_cn, scope] = *monitor.scopes().begin();
  for (std::size_t i = 0; i < corpus.intermediates().size(); ++i) {
    if (corpus.intermediates()[i].cert->subject().common_name() != issuer_cn) {
      continue;
    }
    const auto& root = corpus.roots()[static_cast<std::size_t>(
        corpus.intermediates()[i].parent_root)];
    auto gcc = preemptive::synthesize("ct-derived-scope", *root.cert, scope);
    if (gcc.ok()) {
      std::printf("\nsynthesized pre-emptive GCC for '%s' from monitored CT "
                  "data (%zu clauses)\n",
                  root.cert->subject().common_name().c_str(),
                  gcc.value().program().clauses.size());
    }
    break;
  }

  // --- a log that rewrites history is caught ----------------------------------
  ctlog::SignedTreeHead old_head = log.sth_at(100);
  ctlog::MerkleTree rewritten;
  for (std::uint64_t i = 0; i < head.tree_size; ++i) {
    Bytes entry = log.entry(i)->der();
    if (i == 42) entry[0] ^= 0xff;  // history edit
    rewritten.append(BytesView(entry));
  }
  bool caught = !ctlog::verify_consistency(
      100, head.tree_size, old_head.root_hash, rewritten.root(),
      rewritten.consistency_proof(100, head.tree_size));
  std::printf("\nhistory-rewrite detection: %s\n",
              caught ? "CAUGHT (consistency proof fails)" : "MISSED (!)");
  return caught ? 0 : 1;
}
