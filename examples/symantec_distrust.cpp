// The paper's running example (§2.2/§2.3): the 2018 Symantec distrust,
// expressed as the Listing 2 GCC, and the three derivative outcomes —
// full removal (Debian), full retention (a frozen mirror), and the
// GCC-carrying RSF client that mirrors Mozilla exactly.
//
// Build & run:  ./build/examples/symantec_distrust
#include <cstdio>

#include "chain/verifier.hpp"
#include "incidents/incidents.hpp"
#include "rsf/client.hpp"
#include "util/time.hpp"

using namespace anchor;

int main() {
  incidents::Incident symantec = incidents::make_symantec();
  std::printf("%s\n\n", symantec.summary.c_str());

  // Show the GCC the primary ships (the paper's Listing 2, with real
  // hashes in place of "exempt(...)").
  const auto& gccs = symantec.store.gccs().for_root(symantec.affected_roots[0]);
  std::printf("--- GCC attached to %s... ---\n%s\n",
              symantec.affected_roots[0].substr(0, 16).c_str(),
              gccs[0].source().c_str());

  // Distribute it over an RSF.
  SimSig registry;
  rsf::Feed feed("mozilla", registry);
  feed.publish(symantec.store, unix_date(2018, 5, 1),
               "Symantec distrust, May 2018 stage");

  rsf::RsfClient gcc_derivative(feed, 3600);
  gcc_derivative.poll_now(unix_date(2018, 5, 1) + 3600);

  rsf::ManualMirrorClient bare_derivative(feed, /*strip_gccs=*/true);
  bare_derivative.manual_sync(unix_date(2018, 5, 2));

  rootstore::RootStore removed_store;  // Debian 2018: root dropped entirely

  chain::ChainVerifier primary(symantec.store, symantec.signatures);
  chain::ChainVerifier via_gcc(gcc_derivative.store(), symantec.signatures);
  chain::ChainVerifier via_bare(bare_derivative.store(), symantec.signatures);
  chain::ChainVerifier via_removal(removed_store, symantec.signatures);

  std::printf("%-46s %-8s %-8s %-8s %-8s\n", "chain", "primary", "rsf+gcc",
              "bare", "removed");
  for (const auto& test_case : symantec.cases) {
    auto verdict = [&](chain::ChainVerifier& verifier) {
      return verifier.verify(test_case.leaf, symantec.pool, test_case.options).ok
                 ? "accept"
                 : "REJECT";
    };
    std::printf("%-46s %-8s %-8s %-8s %-8s\n", test_case.label.c_str(),
                verdict(primary), verdict(via_gcc), verdict(via_bare),
                verdict(via_removal));
  }

  std::printf(
      "\nReading the table:\n"
      "  * rsf+gcc matches the primary on every chain;\n"
      "  * the bare mirror accepts the post-cutoff chain Mozilla distrusts\n"
      "    (the imprecision problem, paper §2.3);\n"
      "  * removal rejects even the legacy and exempt chains Mozilla still\n"
      "    accepts — the collateral damage that forced Debian to revert.\n");
  return 0;
}
