// Quickstart: the libanchor public API in one file.
//
//   1. Build a small PKI (root -> intermediate -> leaf) with the x509 layer.
//   2. Put the root in a RootStore.
//   3. Author a General Certificate Constraint in Datalog and attach it.
//   4. Validate chains: the verifier runs the GCC at the root and rejects
//      exactly the chains the constraint forbids.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "chain/verifier.hpp"
#include "core/gcc.hpp"
#include "rootstore/store.hpp"
#include "util/time.hpp"
#include "x509/builder.hpp"
#include "x509/oids.hpp"

using namespace anchor;

int main() {
  // --- 1. A minimal PKI --------------------------------------------------
  SimSig signatures;  // the simulated signature scheme (see DESIGN.md §5)

  SimKeyPair root_key = SimSig::keygen("Quickstart Root CA");
  x509::CertPtr root =
      x509::CertificateBuilder()
          .serial(1)
          .subject(x509::DistinguishedName::make("Quickstart Root CA", "Demo"))
          .issuer(x509::DistinguishedName::make("Quickstart Root CA", "Demo"))
          .validity(unix_date(2020, 1, 1), unix_date(2040, 1, 1))
          .public_key(root_key.key_id)
          .ca(std::nullopt)
          .sign(root_key)
          .take();

  SimKeyPair int_key = SimSig::keygen("Quickstart Issuing CA");
  x509::CertPtr intermediate =
      x509::CertificateBuilder()
          .serial(2)
          .subject(x509::DistinguishedName::make("Quickstart Issuing CA", "Demo"))
          .issuer(root->subject())
          .validity(unix_date(2020, 1, 1), unix_date(2035, 1, 1))
          .public_key(int_key.key_id)
          .ca(0)
          .sign(root_key)
          .take();

  auto make_leaf = [&](const std::string& domain, int year) {
    SimKeyPair key = SimSig::keygen("leaf-" + domain);
    return x509::CertificateBuilder()
        .serial(3)
        .subject(x509::DistinguishedName::make(domain))
        .issuer(intermediate->subject())
        .validity(unix_date(year, 1, 1), unix_date(year + 1, 1, 1))
        .public_key(key.key_id)
        .dns_names({domain, "*." + domain})
        .extended_key_usage({x509::oids::kp_server_auth()})
        .sign(int_key)
        .take();
  };

  signatures.register_key(root_key);
  signatures.register_key(int_key);

  // --- 2. A root store ----------------------------------------------------
  rootstore::RootStore store;
  (void)store.add_trusted(root);

  // --- 3. A General Certificate Constraint --------------------------------
  // Only accept leaves issued before 2023 (an incident-response cutoff,
  // like the WoSign or Symantec actions in the paper).
  std::string gcc_source =
      "cutoff(" + std::to_string(unix_date(2023, 1, 1)) + ").\n" +
      "valid(Chain, _) :-\n"
      "  leaf(Chain, L),\n"
      "  notBefore(L, NB),\n"
      "  cutoff(T),\n"
      "  NB < T.\n";
  auto gcc = core::Gcc::for_certificate("quickstart-cutoff", *root, gcc_source,
                                        "demo: distrust new issuance");
  if (!gcc.ok()) {
    std::fprintf(stderr, "GCC rejected: %s\n", gcc.error().c_str());
    return 1;
  }
  store.attach_gcc(std::move(gcc).take());

  // --- 4. Validate chains --------------------------------------------------
  chain::CertificatePool pool;
  pool.add(intermediate);
  chain::ChainVerifier verifier(store, signatures);

  x509::CertPtr old_leaf = make_leaf("legacy.example.com", 2022);
  x509::CertPtr new_leaf = make_leaf("fresh.example.com", 2024);

  auto validate = [&](const x509::CertPtr& leaf, const std::string& host,
                      int year) {
    chain::VerifyOptions options;
    options.time = unix_date(year, 6, 1);
    options.hostname = host;
    chain::VerifyResult result = verifier.verify(leaf, pool, options);
    std::printf("%-22s -> %s", host.c_str(),
                result.ok ? "ACCEPTED" : "REJECTED");
    if (!result.ok && !result.rejected_paths.empty()) {
      std::printf("  (%s)", chain::to_string(result.rejected_paths[0]).c_str());
    } else if (!result.ok) {
      std::printf("  (%s)", result.error.c_str());
    }
    std::printf("\n");
    return result.ok;
  };

  std::printf("Root store: %zu trusted root(s), %zu GCC(s)\n\n",
              store.trusted_count(), store.gccs().total());
  bool old_ok = validate(old_leaf, "legacy.example.com", 2022);
  bool new_ok = validate(new_leaf, "fresh.example.com", 2024);

  std::printf("\nThe pre-cutoff chain validates; the post-cutoff chain is\n"
              "rejected by the GCC during chain construction — partial\n"
              "distrust without removing the root.\n");
  return (old_ok && !new_ok) ? 0 : 1;
}
