file(REMOVE_RECURSE
  "CMakeFiles/symantec_distrust.dir/symantec_distrust.cpp.o"
  "CMakeFiles/symantec_distrust.dir/symantec_distrust.cpp.o.d"
  "symantec_distrust"
  "symantec_distrust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symantec_distrust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
