# Empty compiler generated dependencies file for symantec_distrust.
# This may be replaced when dependencies are built.
