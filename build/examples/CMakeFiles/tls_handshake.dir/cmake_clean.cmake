file(REMOVE_RECURSE
  "CMakeFiles/tls_handshake.dir/tls_handshake.cpp.o"
  "CMakeFiles/tls_handshake.dir/tls_handshake.cpp.o.d"
  "tls_handshake"
  "tls_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
