file(REMOVE_RECURSE
  "CMakeFiles/ct_audit.dir/ct_audit.cpp.o"
  "CMakeFiles/ct_audit.dir/ct_audit.cpp.o.d"
  "ct_audit"
  "ct_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
