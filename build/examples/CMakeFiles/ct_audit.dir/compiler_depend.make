# Empty compiler generated dependencies file for ct_audit.
# This may be replaced when dependencies are built.
