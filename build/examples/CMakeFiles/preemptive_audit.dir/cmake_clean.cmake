file(REMOVE_RECURSE
  "CMakeFiles/preemptive_audit.dir/preemptive_audit.cpp.o"
  "CMakeFiles/preemptive_audit.dir/preemptive_audit.cpp.o.d"
  "preemptive_audit"
  "preemptive_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preemptive_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
