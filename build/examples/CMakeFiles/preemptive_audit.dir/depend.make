# Empty dependencies file for preemptive_audit.
# This may be replaced when dependencies are built.
