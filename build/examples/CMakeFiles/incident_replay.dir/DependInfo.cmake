
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/incident_replay.cpp" "examples/CMakeFiles/incident_replay.dir/incident_replay.cpp.o" "gcc" "examples/CMakeFiles/incident_replay.dir/incident_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/anchor_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ctlog/CMakeFiles/anchor_ctlog.dir/DependInfo.cmake"
  "/root/repo/build/src/incidents/CMakeFiles/anchor_incidents.dir/DependInfo.cmake"
  "/root/repo/build/src/preemptive/CMakeFiles/anchor_preemptive.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/anchor_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/rsf/CMakeFiles/anchor_rsf.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/anchor_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/rootstore/CMakeFiles/anchor_rootstore.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anchor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/anchor_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/anchor_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/anchor_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anchor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/revocation/CMakeFiles/anchor_revocation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
