file(REMOVE_RECURSE
  "CMakeFiles/rsf_sync.dir/rsf_sync.cpp.o"
  "CMakeFiles/rsf_sync.dir/rsf_sync.cpp.o.d"
  "rsf_sync"
  "rsf_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsf_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
