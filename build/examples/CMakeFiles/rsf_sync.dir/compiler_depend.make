# Empty compiler generated dependencies file for rsf_sync.
# This may be replaced when dependencies are built.
