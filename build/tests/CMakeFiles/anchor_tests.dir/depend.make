# Empty dependencies file for anchor_tests.
# This may be replaced when dependencies are built.
