
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/asn1_der_test.cpp" "tests/CMakeFiles/anchor_tests.dir/asn1_der_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/asn1_der_test.cpp.o.d"
  "/root/repo/tests/asn1_oid_test.cpp" "tests/CMakeFiles/anchor_tests.dir/asn1_oid_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/asn1_oid_test.cpp.o.d"
  "/root/repo/tests/chain_daemon_test.cpp" "tests/CMakeFiles/anchor_tests.dir/chain_daemon_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/chain_daemon_test.cpp.o.d"
  "/root/repo/tests/chain_pool_test.cpp" "tests/CMakeFiles/anchor_tests.dir/chain_pool_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/chain_pool_test.cpp.o.d"
  "/root/repo/tests/chain_verifier_test.cpp" "tests/CMakeFiles/anchor_tests.dir/chain_verifier_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/chain_verifier_test.cpp.o.d"
  "/root/repo/tests/core_executor_test.cpp" "tests/CMakeFiles/anchor_tests.dir/core_executor_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/core_executor_test.cpp.o.d"
  "/root/repo/tests/core_facts_test.cpp" "tests/CMakeFiles/anchor_tests.dir/core_facts_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/core_facts_test.cpp.o.d"
  "/root/repo/tests/core_gcc_test.cpp" "tests/CMakeFiles/anchor_tests.dir/core_gcc_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/core_gcc_test.cpp.o.d"
  "/root/repo/tests/corpus_test.cpp" "tests/CMakeFiles/anchor_tests.dir/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/corpus_test.cpp.o.d"
  "/root/repo/tests/ctlog_log_test.cpp" "tests/CMakeFiles/anchor_tests.dir/ctlog_log_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/ctlog_log_test.cpp.o.d"
  "/root/repo/tests/ctlog_merkle_test.cpp" "tests/CMakeFiles/anchor_tests.dir/ctlog_merkle_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/ctlog_merkle_test.cpp.o.d"
  "/root/repo/tests/datalog_engine_test.cpp" "tests/CMakeFiles/anchor_tests.dir/datalog_engine_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/datalog_engine_test.cpp.o.d"
  "/root/repo/tests/datalog_eval_test.cpp" "tests/CMakeFiles/anchor_tests.dir/datalog_eval_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/datalog_eval_test.cpp.o.d"
  "/root/repo/tests/datalog_lexer_test.cpp" "tests/CMakeFiles/anchor_tests.dir/datalog_lexer_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/datalog_lexer_test.cpp.o.d"
  "/root/repo/tests/datalog_parser_test.cpp" "tests/CMakeFiles/anchor_tests.dir/datalog_parser_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/datalog_parser_test.cpp.o.d"
  "/root/repo/tests/datalog_random_test.cpp" "tests/CMakeFiles/anchor_tests.dir/datalog_random_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/datalog_random_test.cpp.o.d"
  "/root/repo/tests/datalog_stratify_test.cpp" "tests/CMakeFiles/anchor_tests.dir/datalog_stratify_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/datalog_stratify_test.cpp.o.d"
  "/root/repo/tests/fuzz_der_test.cpp" "tests/CMakeFiles/anchor_tests.dir/fuzz_der_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/fuzz_der_test.cpp.o.d"
  "/root/repo/tests/incidents_test.cpp" "tests/CMakeFiles/anchor_tests.dir/incidents_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/incidents_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/anchor_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/misc_coverage_test.cpp" "tests/CMakeFiles/anchor_tests.dir/misc_coverage_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/misc_coverage_test.cpp.o.d"
  "/root/repo/tests/net_handshake_test.cpp" "tests/CMakeFiles/anchor_tests.dir/net_handshake_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/net_handshake_test.cpp.o.d"
  "/root/repo/tests/net_transport_test.cpp" "tests/CMakeFiles/anchor_tests.dir/net_transport_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/net_transport_test.cpp.o.d"
  "/root/repo/tests/policy_test.cpp" "tests/CMakeFiles/anchor_tests.dir/policy_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/policy_test.cpp.o.d"
  "/root/repo/tests/preemptive_scope_test.cpp" "tests/CMakeFiles/anchor_tests.dir/preemptive_scope_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/preemptive_scope_test.cpp.o.d"
  "/root/repo/tests/preemptive_synthesis_test.cpp" "tests/CMakeFiles/anchor_tests.dir/preemptive_synthesis_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/preemptive_synthesis_test.cpp.o.d"
  "/root/repo/tests/revocation_test.cpp" "tests/CMakeFiles/anchor_tests.dir/revocation_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/revocation_test.cpp.o.d"
  "/root/repo/tests/rootstore_test.cpp" "tests/CMakeFiles/anchor_tests.dir/rootstore_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/rootstore_test.cpp.o.d"
  "/root/repo/tests/rsf_client_test.cpp" "tests/CMakeFiles/anchor_tests.dir/rsf_client_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/rsf_client_test.cpp.o.d"
  "/root/repo/tests/rsf_delta_test.cpp" "tests/CMakeFiles/anchor_tests.dir/rsf_delta_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/rsf_delta_test.cpp.o.d"
  "/root/repo/tests/rsf_feed_test.cpp" "tests/CMakeFiles/anchor_tests.dir/rsf_feed_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/rsf_feed_test.cpp.o.d"
  "/root/repo/tests/rsf_merge_test.cpp" "tests/CMakeFiles/anchor_tests.dir/rsf_merge_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/rsf_merge_test.cpp.o.d"
  "/root/repo/tests/rsf_simulator_test.cpp" "tests/CMakeFiles/anchor_tests.dir/rsf_simulator_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/rsf_simulator_test.cpp.o.d"
  "/root/repo/tests/util_base64_test.cpp" "tests/CMakeFiles/anchor_tests.dir/util_base64_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/util_base64_test.cpp.o.d"
  "/root/repo/tests/util_bytes_test.cpp" "tests/CMakeFiles/anchor_tests.dir/util_bytes_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/util_bytes_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/anchor_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_sha256_test.cpp" "tests/CMakeFiles/anchor_tests.dir/util_sha256_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/util_sha256_test.cpp.o.d"
  "/root/repo/tests/util_simsig_test.cpp" "tests/CMakeFiles/anchor_tests.dir/util_simsig_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/util_simsig_test.cpp.o.d"
  "/root/repo/tests/util_strings_test.cpp" "tests/CMakeFiles/anchor_tests.dir/util_strings_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/util_strings_test.cpp.o.d"
  "/root/repo/tests/util_time_test.cpp" "tests/CMakeFiles/anchor_tests.dir/util_time_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/util_time_test.cpp.o.d"
  "/root/repo/tests/x509_certificate_test.cpp" "tests/CMakeFiles/anchor_tests.dir/x509_certificate_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/x509_certificate_test.cpp.o.d"
  "/root/repo/tests/x509_extensions_test.cpp" "tests/CMakeFiles/anchor_tests.dir/x509_extensions_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/x509_extensions_test.cpp.o.d"
  "/root/repo/tests/x509_name_test.cpp" "tests/CMakeFiles/anchor_tests.dir/x509_name_test.cpp.o" "gcc" "tests/CMakeFiles/anchor_tests.dir/x509_name_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/anchor_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ctlog/CMakeFiles/anchor_ctlog.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/anchor_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/revocation/CMakeFiles/anchor_revocation.dir/DependInfo.cmake"
  "/root/repo/build/src/incidents/CMakeFiles/anchor_incidents.dir/DependInfo.cmake"
  "/root/repo/build/src/preemptive/CMakeFiles/anchor_preemptive.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/anchor_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/rsf/CMakeFiles/anchor_rsf.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/anchor_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/rootstore/CMakeFiles/anchor_rootstore.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anchor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/anchor_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/anchor_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/anchor_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anchor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
