# Empty dependencies file for anchor_revocation.
# This may be replaced when dependencies are built.
