file(REMOVE_RECURSE
  "libanchor_revocation.a"
)
