file(REMOVE_RECURSE
  "CMakeFiles/anchor_revocation.dir/revocation.cpp.o"
  "CMakeFiles/anchor_revocation.dir/revocation.cpp.o.d"
  "libanchor_revocation.a"
  "libanchor_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
