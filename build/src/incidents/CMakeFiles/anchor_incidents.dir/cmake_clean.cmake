file(REMOVE_RECURSE
  "CMakeFiles/anchor_incidents.dir/incidents.cpp.o"
  "CMakeFiles/anchor_incidents.dir/incidents.cpp.o.d"
  "CMakeFiles/anchor_incidents.dir/listings.cpp.o"
  "CMakeFiles/anchor_incidents.dir/listings.cpp.o.d"
  "libanchor_incidents.a"
  "libanchor_incidents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_incidents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
