# Empty compiler generated dependencies file for anchor_incidents.
# This may be replaced when dependencies are built.
