# Empty dependencies file for anchor_incidents.
# This may be replaced when dependencies are built.
