file(REMOVE_RECURSE
  "libanchor_incidents.a"
)
