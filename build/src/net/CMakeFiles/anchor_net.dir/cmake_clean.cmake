file(REMOVE_RECURSE
  "CMakeFiles/anchor_net.dir/handshake.cpp.o"
  "CMakeFiles/anchor_net.dir/handshake.cpp.o.d"
  "CMakeFiles/anchor_net.dir/transport.cpp.o"
  "CMakeFiles/anchor_net.dir/transport.cpp.o.d"
  "libanchor_net.a"
  "libanchor_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
