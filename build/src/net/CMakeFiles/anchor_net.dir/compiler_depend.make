# Empty compiler generated dependencies file for anchor_net.
# This may be replaced when dependencies are built.
