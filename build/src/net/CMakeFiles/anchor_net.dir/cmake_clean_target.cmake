file(REMOVE_RECURSE
  "libanchor_net.a"
)
