# Empty dependencies file for anchor_rootstore.
# This may be replaced when dependencies are built.
