file(REMOVE_RECURSE
  "libanchor_rootstore.a"
)
