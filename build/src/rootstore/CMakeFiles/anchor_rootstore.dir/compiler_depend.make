# Empty compiler generated dependencies file for anchor_rootstore.
# This may be replaced when dependencies are built.
