file(REMOVE_RECURSE
  "CMakeFiles/anchor_rootstore.dir/store.cpp.o"
  "CMakeFiles/anchor_rootstore.dir/store.cpp.o.d"
  "libanchor_rootstore.a"
  "libanchor_rootstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_rootstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
