# CMake generated Testfile for 
# Source directory: /root/repo/src/rootstore
# Build directory: /root/repo/build/src/rootstore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
