file(REMOVE_RECURSE
  "libanchor_chain.a"
)
