file(REMOVE_RECURSE
  "CMakeFiles/anchor_chain.dir/daemon.cpp.o"
  "CMakeFiles/anchor_chain.dir/daemon.cpp.o.d"
  "CMakeFiles/anchor_chain.dir/pool.cpp.o"
  "CMakeFiles/anchor_chain.dir/pool.cpp.o.d"
  "CMakeFiles/anchor_chain.dir/verifier.cpp.o"
  "CMakeFiles/anchor_chain.dir/verifier.cpp.o.d"
  "libanchor_chain.a"
  "libanchor_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
