# Empty dependencies file for anchor_chain.
# This may be replaced when dependencies are built.
