# Empty dependencies file for anchor_asn1.
# This may be replaced when dependencies are built.
