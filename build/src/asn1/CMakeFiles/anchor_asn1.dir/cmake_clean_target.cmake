file(REMOVE_RECURSE
  "libanchor_asn1.a"
)
