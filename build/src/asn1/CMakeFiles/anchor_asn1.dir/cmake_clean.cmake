file(REMOVE_RECURSE
  "CMakeFiles/anchor_asn1.dir/der.cpp.o"
  "CMakeFiles/anchor_asn1.dir/der.cpp.o.d"
  "CMakeFiles/anchor_asn1.dir/oid.cpp.o"
  "CMakeFiles/anchor_asn1.dir/oid.cpp.o.d"
  "libanchor_asn1.a"
  "libanchor_asn1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
