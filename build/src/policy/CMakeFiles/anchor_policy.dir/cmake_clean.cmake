file(REMOVE_RECURSE
  "CMakeFiles/anchor_policy.dir/policy.cpp.o"
  "CMakeFiles/anchor_policy.dir/policy.cpp.o.d"
  "libanchor_policy.a"
  "libanchor_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
