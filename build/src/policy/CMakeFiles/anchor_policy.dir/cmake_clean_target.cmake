file(REMOVE_RECURSE
  "libanchor_policy.a"
)
