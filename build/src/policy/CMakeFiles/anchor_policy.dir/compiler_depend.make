# Empty compiler generated dependencies file for anchor_policy.
# This may be replaced when dependencies are built.
