file(REMOVE_RECURSE
  "libanchor_preemptive.a"
)
