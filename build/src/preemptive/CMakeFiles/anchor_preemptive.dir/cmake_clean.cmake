file(REMOVE_RECURSE
  "CMakeFiles/anchor_preemptive.dir/scope.cpp.o"
  "CMakeFiles/anchor_preemptive.dir/scope.cpp.o.d"
  "CMakeFiles/anchor_preemptive.dir/synthesis.cpp.o"
  "CMakeFiles/anchor_preemptive.dir/synthesis.cpp.o.d"
  "libanchor_preemptive.a"
  "libanchor_preemptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_preemptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
