# Empty dependencies file for anchor_preemptive.
# This may be replaced when dependencies are built.
