file(REMOVE_RECURSE
  "CMakeFiles/anchor_x509.dir/builder.cpp.o"
  "CMakeFiles/anchor_x509.dir/builder.cpp.o.d"
  "CMakeFiles/anchor_x509.dir/certificate.cpp.o"
  "CMakeFiles/anchor_x509.dir/certificate.cpp.o.d"
  "CMakeFiles/anchor_x509.dir/extensions.cpp.o"
  "CMakeFiles/anchor_x509.dir/extensions.cpp.o.d"
  "CMakeFiles/anchor_x509.dir/name.cpp.o"
  "CMakeFiles/anchor_x509.dir/name.cpp.o.d"
  "CMakeFiles/anchor_x509.dir/oids.cpp.o"
  "CMakeFiles/anchor_x509.dir/oids.cpp.o.d"
  "libanchor_x509.a"
  "libanchor_x509.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_x509.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
