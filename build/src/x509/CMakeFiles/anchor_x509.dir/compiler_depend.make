# Empty compiler generated dependencies file for anchor_x509.
# This may be replaced when dependencies are built.
