file(REMOVE_RECURSE
  "libanchor_x509.a"
)
