# Empty dependencies file for anchor_rsf.
# This may be replaced when dependencies are built.
