file(REMOVE_RECURSE
  "CMakeFiles/anchor_rsf.dir/client.cpp.o"
  "CMakeFiles/anchor_rsf.dir/client.cpp.o.d"
  "CMakeFiles/anchor_rsf.dir/delta.cpp.o"
  "CMakeFiles/anchor_rsf.dir/delta.cpp.o.d"
  "CMakeFiles/anchor_rsf.dir/feed.cpp.o"
  "CMakeFiles/anchor_rsf.dir/feed.cpp.o.d"
  "CMakeFiles/anchor_rsf.dir/merge.cpp.o"
  "CMakeFiles/anchor_rsf.dir/merge.cpp.o.d"
  "CMakeFiles/anchor_rsf.dir/simulator.cpp.o"
  "CMakeFiles/anchor_rsf.dir/simulator.cpp.o.d"
  "libanchor_rsf.a"
  "libanchor_rsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_rsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
