file(REMOVE_RECURSE
  "libanchor_rsf.a"
)
