# Empty dependencies file for anchor_corpus.
# This may be replaced when dependencies are built.
