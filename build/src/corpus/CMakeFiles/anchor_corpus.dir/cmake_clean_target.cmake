file(REMOVE_RECURSE
  "libanchor_corpus.a"
)
