file(REMOVE_RECURSE
  "CMakeFiles/anchor_corpus.dir/census.cpp.o"
  "CMakeFiles/anchor_corpus.dir/census.cpp.o.d"
  "CMakeFiles/anchor_corpus.dir/corpus.cpp.o"
  "CMakeFiles/anchor_corpus.dir/corpus.cpp.o.d"
  "libanchor_corpus.a"
  "libanchor_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
