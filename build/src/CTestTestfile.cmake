# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("asn1")
subdirs("x509")
subdirs("datalog")
subdirs("core")
subdirs("rootstore")
subdirs("revocation")
subdirs("chain")
subdirs("policy")
subdirs("net")
subdirs("rsf")
subdirs("corpus")
subdirs("preemptive")
subdirs("ctlog")
subdirs("incidents")
