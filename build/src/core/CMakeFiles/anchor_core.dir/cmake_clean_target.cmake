file(REMOVE_RECURSE
  "libanchor_core.a"
)
