# Empty dependencies file for anchor_core.
# This may be replaced when dependencies are built.
