file(REMOVE_RECURSE
  "CMakeFiles/anchor_core.dir/executor.cpp.o"
  "CMakeFiles/anchor_core.dir/executor.cpp.o.d"
  "CMakeFiles/anchor_core.dir/facts.cpp.o"
  "CMakeFiles/anchor_core.dir/facts.cpp.o.d"
  "CMakeFiles/anchor_core.dir/gcc.cpp.o"
  "CMakeFiles/anchor_core.dir/gcc.cpp.o.d"
  "libanchor_core.a"
  "libanchor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
