# Empty compiler generated dependencies file for anchor_datalog.
# This may be replaced when dependencies are built.
