file(REMOVE_RECURSE
  "CMakeFiles/anchor_datalog.dir/ast.cpp.o"
  "CMakeFiles/anchor_datalog.dir/ast.cpp.o.d"
  "CMakeFiles/anchor_datalog.dir/database.cpp.o"
  "CMakeFiles/anchor_datalog.dir/database.cpp.o.d"
  "CMakeFiles/anchor_datalog.dir/engine.cpp.o"
  "CMakeFiles/anchor_datalog.dir/engine.cpp.o.d"
  "CMakeFiles/anchor_datalog.dir/eval.cpp.o"
  "CMakeFiles/anchor_datalog.dir/eval.cpp.o.d"
  "CMakeFiles/anchor_datalog.dir/lexer.cpp.o"
  "CMakeFiles/anchor_datalog.dir/lexer.cpp.o.d"
  "CMakeFiles/anchor_datalog.dir/parser.cpp.o"
  "CMakeFiles/anchor_datalog.dir/parser.cpp.o.d"
  "CMakeFiles/anchor_datalog.dir/stratify.cpp.o"
  "CMakeFiles/anchor_datalog.dir/stratify.cpp.o.d"
  "CMakeFiles/anchor_datalog.dir/value.cpp.o"
  "CMakeFiles/anchor_datalog.dir/value.cpp.o.d"
  "libanchor_datalog.a"
  "libanchor_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
