file(REMOVE_RECURSE
  "libanchor_datalog.a"
)
