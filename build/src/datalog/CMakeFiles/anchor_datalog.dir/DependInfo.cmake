
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/ast.cpp" "src/datalog/CMakeFiles/anchor_datalog.dir/ast.cpp.o" "gcc" "src/datalog/CMakeFiles/anchor_datalog.dir/ast.cpp.o.d"
  "/root/repo/src/datalog/database.cpp" "src/datalog/CMakeFiles/anchor_datalog.dir/database.cpp.o" "gcc" "src/datalog/CMakeFiles/anchor_datalog.dir/database.cpp.o.d"
  "/root/repo/src/datalog/engine.cpp" "src/datalog/CMakeFiles/anchor_datalog.dir/engine.cpp.o" "gcc" "src/datalog/CMakeFiles/anchor_datalog.dir/engine.cpp.o.d"
  "/root/repo/src/datalog/eval.cpp" "src/datalog/CMakeFiles/anchor_datalog.dir/eval.cpp.o" "gcc" "src/datalog/CMakeFiles/anchor_datalog.dir/eval.cpp.o.d"
  "/root/repo/src/datalog/lexer.cpp" "src/datalog/CMakeFiles/anchor_datalog.dir/lexer.cpp.o" "gcc" "src/datalog/CMakeFiles/anchor_datalog.dir/lexer.cpp.o.d"
  "/root/repo/src/datalog/parser.cpp" "src/datalog/CMakeFiles/anchor_datalog.dir/parser.cpp.o" "gcc" "src/datalog/CMakeFiles/anchor_datalog.dir/parser.cpp.o.d"
  "/root/repo/src/datalog/stratify.cpp" "src/datalog/CMakeFiles/anchor_datalog.dir/stratify.cpp.o" "gcc" "src/datalog/CMakeFiles/anchor_datalog.dir/stratify.cpp.o.d"
  "/root/repo/src/datalog/value.cpp" "src/datalog/CMakeFiles/anchor_datalog.dir/value.cpp.o" "gcc" "src/datalog/CMakeFiles/anchor_datalog.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anchor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
