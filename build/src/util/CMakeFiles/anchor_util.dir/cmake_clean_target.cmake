file(REMOVE_RECURSE
  "libanchor_util.a"
)
