file(REMOVE_RECURSE
  "CMakeFiles/anchor_util.dir/base64.cpp.o"
  "CMakeFiles/anchor_util.dir/base64.cpp.o.d"
  "CMakeFiles/anchor_util.dir/bytes.cpp.o"
  "CMakeFiles/anchor_util.dir/bytes.cpp.o.d"
  "CMakeFiles/anchor_util.dir/rng.cpp.o"
  "CMakeFiles/anchor_util.dir/rng.cpp.o.d"
  "CMakeFiles/anchor_util.dir/sha256.cpp.o"
  "CMakeFiles/anchor_util.dir/sha256.cpp.o.d"
  "CMakeFiles/anchor_util.dir/simsig.cpp.o"
  "CMakeFiles/anchor_util.dir/simsig.cpp.o.d"
  "CMakeFiles/anchor_util.dir/strings.cpp.o"
  "CMakeFiles/anchor_util.dir/strings.cpp.o.d"
  "CMakeFiles/anchor_util.dir/time.cpp.o"
  "CMakeFiles/anchor_util.dir/time.cpp.o.d"
  "libanchor_util.a"
  "libanchor_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
