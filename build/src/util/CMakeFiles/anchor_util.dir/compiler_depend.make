# Empty compiler generated dependencies file for anchor_util.
# This may be replaced when dependencies are built.
