# Empty dependencies file for anchor_util.
# This may be replaced when dependencies are built.
