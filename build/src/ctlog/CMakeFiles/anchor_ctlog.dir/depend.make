# Empty dependencies file for anchor_ctlog.
# This may be replaced when dependencies are built.
