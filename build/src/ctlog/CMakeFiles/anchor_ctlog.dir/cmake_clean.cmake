file(REMOVE_RECURSE
  "CMakeFiles/anchor_ctlog.dir/log.cpp.o"
  "CMakeFiles/anchor_ctlog.dir/log.cpp.o.d"
  "CMakeFiles/anchor_ctlog.dir/merkle.cpp.o"
  "CMakeFiles/anchor_ctlog.dir/merkle.cpp.o.d"
  "libanchor_ctlog.a"
  "libanchor_ctlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_ctlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
