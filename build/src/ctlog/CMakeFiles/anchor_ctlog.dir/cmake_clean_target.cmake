file(REMOVE_RECURSE
  "libanchor_ctlog.a"
)
