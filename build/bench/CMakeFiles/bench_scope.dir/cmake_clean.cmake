file(REMOVE_RECURSE
  "CMakeFiles/bench_scope.dir/bench_scope.cpp.o"
  "CMakeFiles/bench_scope.dir/bench_scope.cpp.o.d"
  "bench_scope"
  "bench_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
