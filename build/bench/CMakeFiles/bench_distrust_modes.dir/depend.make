# Empty dependencies file for bench_distrust_modes.
# This may be replaced when dependencies are built.
