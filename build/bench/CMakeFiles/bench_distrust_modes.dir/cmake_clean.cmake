file(REMOVE_RECURSE
  "CMakeFiles/bench_distrust_modes.dir/bench_distrust_modes.cpp.o"
  "CMakeFiles/bench_distrust_modes.dir/bench_distrust_modes.cpp.o.d"
  "bench_distrust_modes"
  "bench_distrust_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distrust_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
