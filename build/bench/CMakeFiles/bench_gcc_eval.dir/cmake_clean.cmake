file(REMOVE_RECURSE
  "CMakeFiles/bench_gcc_eval.dir/bench_gcc_eval.cpp.o"
  "CMakeFiles/bench_gcc_eval.dir/bench_gcc_eval.cpp.o.d"
  "bench_gcc_eval"
  "bench_gcc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gcc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
