# Empty dependencies file for bench_gcc_eval.
# This may be replaced when dependencies are built.
