file(REMOVE_RECURSE
  "CMakeFiles/bench_ctlog.dir/bench_ctlog.cpp.o"
  "CMakeFiles/bench_ctlog.dir/bench_ctlog.cpp.o.d"
  "bench_ctlog"
  "bench_ctlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ctlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
