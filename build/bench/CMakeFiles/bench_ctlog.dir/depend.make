# Empty dependencies file for bench_ctlog.
# This may be replaced when dependencies are built.
