file(REMOVE_RECURSE
  "CMakeFiles/bench_rsf_merge.dir/bench_rsf_merge.cpp.o"
  "CMakeFiles/bench_rsf_merge.dir/bench_rsf_merge.cpp.o.d"
  "bench_rsf_merge"
  "bench_rsf_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rsf_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
