# Empty compiler generated dependencies file for bench_rsf_merge.
# This may be replaced when dependencies are built.
