# Empty dependencies file for bench_preemptive.
# This may be replaced when dependencies are built.
