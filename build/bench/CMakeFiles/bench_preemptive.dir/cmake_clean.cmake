file(REMOVE_RECURSE
  "CMakeFiles/bench_preemptive.dir/bench_preemptive.cpp.o"
  "CMakeFiles/bench_preemptive.dir/bench_preemptive.cpp.o.d"
  "bench_preemptive"
  "bench_preemptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preemptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
