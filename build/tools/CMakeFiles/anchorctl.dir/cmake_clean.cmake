file(REMOVE_RECURSE
  "CMakeFiles/anchorctl.dir/anchorctl.cpp.o"
  "CMakeFiles/anchorctl.dir/anchorctl.cpp.o.d"
  "anchorctl"
  "anchorctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchorctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
