# Empty compiler generated dependencies file for anchorctl.
# This may be replaced when dependencies are built.
